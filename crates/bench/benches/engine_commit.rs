//! Criterion microbenches behind the EXPERIMENTS.md E2 group-commit table.
//!
//! Two views of commit durability cost over a log device with realistic
//! sync latency (`SlowLogStore`, 250µs per sync — an in-memory store syncs
//! in nanoseconds, which would hide the effect group commit exists for):
//!
//! 1. `save_*`: single-committer `Database::save` per commit mode. Group
//!    commit cannot help a lone committer; only no-force dodges the sync.
//! 2. `committers_*`: 8 threads sharing one `LogManager`, force-at-commit
//!    (`flush`) vs `commit_group`. The group leader amortizes one device
//!    sync across every concurrent committer; the printed summary reports
//!    commits/s, flushes per commit, and the force→group speedup.

use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_doc, rng};
use domino_core::{Database, DbConfig};
use domino_storage::{CommitMode, EngineConfig, MemDisk};
use domino_types::{LogicalClock, ReplicaId, Result};
use domino_wal::{LogManager, LogRecord, LogStore, Lsn, MemLogStore, TxId};

const SYNC_DELAY: Duration = Duration::from_micros(250);

/// In-memory log store with a realistic per-`sync` device latency.
struct SlowLogStore {
    inner: MemLogStore,
}

impl SlowLogStore {
    fn new() -> SlowLogStore {
        SlowLogStore {
            inner: MemLogStore::new(),
        }
    }
}

impl LogStore for SlowLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.inner.append(bytes)
    }
    fn sync(&self) -> Result<()> {
        thread::sleep(SYNC_DELAY);
        self.inner.sync()
    }
    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        self.inner.read_from(from)
    }
    fn len(&self) -> Result<u64> {
        self.inner.len()
    }
    fn start(&self) -> Result<u64> {
        self.inner.start()
    }
    fn set_master(&self, lsn: Lsn) -> Result<()> {
        self.inner.set_master(lsn)
    }
    fn get_master(&self) -> Result<Lsn> {
        self.inner.get_master()
    }
    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        self.inner.truncate_prefix(upto)
    }
    fn truncate_all(&self) -> Result<()> {
        self.inner.truncate_all()
    }
}

fn bench_single_committer(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_commit");
    for (label, mode) in [
        ("save_force", CommitMode::Force),
        // Zero door wait: a lone committer must not be taxed waiting for
        // followers that cannot exist (the Database is single-writer);
        // batching then comes only from commits racing an in-flight sync.
        (
            "save_group_commit",
            CommitMode::GroupCommit {
                max_wait: Duration::ZERO,
                max_batch: 8,
            },
        ),
        ("save_noforce", CommitMode::NoForce),
    ] {
        group.bench_function(label, |b| {
            let engine = EngineConfig {
                commit_mode: mode,
                ..EngineConfig::default()
            };
            let db = Database::open(
                Box::new(MemDisk::new()),
                Some(Box::new(SlowLogStore::new())),
                DbConfig::new("b", ReplicaId(1), ReplicaId(1)).with_engine(engine),
                LogicalClock::new(),
            )
            .unwrap();
            let mut r = rng(7);
            b.iter(|| {
                let mut d = make_doc(&mut r, 4, 32, 0);
                db.save(&mut d).unwrap();
            });
        });
    }
    group.finish();
}

/// `threads` concurrent committers, each appending and making `per_thread`
/// commit records durable. Returns (commits/s, device flushes, commits).
fn run_committers(threads: usize, per_thread: usize, group_commit: bool) -> (f64, u64, u64) {
    let mgr = LogManager::open(SlowLogStore::new()).unwrap();
    let t0 = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let mgr = &mgr;
            s.spawn(move || {
                for i in 0..per_thread {
                    let tx = TxId((t * 1_000_000 + i) as u64);
                    let lsn = mgr.append(&LogRecord::Commit { tx }).unwrap();
                    if group_commit {
                        // A short door wait (≪ sync latency) lets committers
                        // woken by the previous flush re-enqueue, filling the
                        // batch without taxing the leader when traffic stops.
                        mgr.commit_group(lsn, Duration::from_micros(50), threads)
                            .unwrap();
                    } else {
                        mgr.flush(lsn).unwrap();
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = mgr.stats();
    let commits = (threads * per_thread) as u64;
    (
        commits as f64 / elapsed.as_secs_f64(),
        stats.flushes,
        commits,
    )
}

fn bench_concurrent_committers(_c: &mut Criterion) {
    let threads = 8;
    let per_thread = if criterion::quick_mode() { 50 } else { 2_000 };

    let (force_rate, force_flushes, commits) = run_committers(threads, per_thread, false);
    let (group_rate, group_flushes, _) = run_committers(threads, per_thread, true);

    println!(
        "engine_commit/committers_force                   {:>10.0} commits/s   {} flushes / {} commits ({:.2} flushes per commit)",
        force_rate,
        force_flushes,
        commits,
        force_flushes as f64 / commits as f64
    );
    println!(
        "engine_commit/committers_group                   {:>10.0} commits/s   {} flushes / {} commits ({:.2} flushes per commit)",
        group_rate,
        group_flushes,
        commits,
        group_flushes as f64 / commits as f64
    );
    println!(
        "engine_commit/committers_speedup                 {:.1}x (group commit vs force-at-commit, {} threads)",
        group_rate / force_rate,
        threads
    );
}

criterion_group!(benches, bench_single_committer, bench_concurrent_committers);
criterion_main!(benches);
