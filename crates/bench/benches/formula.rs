//! Criterion microbenches behind E10: formula compile and eval.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_doc, rng};
use domino_formula::{EvalEnv, Formula};

fn bench_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("formula");
    let mut r = rng(1);
    let doc = make_doc(&mut r, 10, 60, 0);
    let env = EvalEnv::default();

    group.bench_function("compile_select", |b| {
        b.iter(|| {
            Formula::compile(r#"SELECT Form = "Doc" & Priority >= 2 & Category != "cat9""#).unwrap()
        });
    });

    let select =
        Formula::compile(r#"SELECT Form = "Doc" & Priority >= 2 & Category != "cat9""#).unwrap();
    group.bench_function("eval_select", |b| {
        b.iter(|| select.selects(&doc, &env).unwrap());
    });

    let column = Formula::compile(r#"@Uppercase(@Left(F0; 10)) + "-" + @Text(Priority)"#).unwrap();
    group.bench_function("eval_column", |b| {
        b.iter(|| column.eval(&doc, &env).unwrap());
    });

    let pipeline = Formula::compile(r#"@Implode(@Sort(@Unique(@Explode(F0; " "))); ",")"#).unwrap();
    group.bench_function("eval_list_pipeline", |b| {
        b.iter(|| pipeline.eval(&doc, &env).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_formula);
criterion_main!(benches);
