//! Criterion microbenches behind E9: full-text indexing and queries.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_db, make_doc, populate, rng};
use domino_ftindex::FtIndex;

fn bench_ftindex(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftindex");

    let db = make_db("bench", 9, 1);
    populate(&db, &mut rng(1), 10_000, 3, 200, 0);
    let ft = FtIndex::detached();
    ft.rebuild(&db).unwrap();

    group.bench_function("word_query", |b| {
        b.iter(|| ft.search("storage").unwrap().len());
    });

    group.bench_function("and_query", |b| {
        b.iter(|| ft.search("storage AND network").unwrap().len());
    });

    group.bench_function("phrase_query", |b| {
        b.iter(|| ft.search("\"project review\"").unwrap().len());
    });

    group.bench_function("index_one_doc", |b| {
        let mut r = rng(2);
        let doc = make_doc(&mut r, 3, 400, 0);
        b.iter(|| ft.index_note(&doc));
    });

    group.finish();
}

criterion_group!(benches, bench_ftindex);
criterion_main!(benches);
