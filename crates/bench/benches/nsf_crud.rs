//! Criterion microbenches behind E1: note-store CRUD primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use domino_bench::workload::{make_db, make_doc, populate, rng};
use domino_types::Value;

fn bench_crud(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsf_crud");

    group.bench_function("create", |b| {
        let db = make_db("bench", 1, 1);
        let mut r = rng(1);
        b.iter_batched(
            || make_doc(&mut r, 8, 48, 0),
            |mut doc| db.save(&mut doc).unwrap(),
            BatchSize::SmallInput,
        );
    });

    let db = make_db("bench", 1, 2);
    let ids = populate(&db, &mut rng(2), 10_000, 8, 48, 4096);
    let mut i = 0usize;

    group.bench_function("read_full", |b| {
        b.iter(|| {
            i = (i + 7919) % ids.len();
            db.open_note(ids[i]).unwrap()
        });
    });

    group.bench_function("read_summary_only", |b| {
        b.iter(|| {
            i = (i + 7919) % ids.len();
            db.open_summary(ids[i]).unwrap()
        });
    });

    group.bench_function("update_one_field", |b| {
        b.iter(|| {
            i = (i + 7919) % ids.len();
            let mut d = db.open_note(ids[i]).unwrap();
            d.set("F0", Value::text("tick"));
            db.save(&mut d).unwrap();
        });
    });

    group.bench_function("lookup_by_unid", |b| {
        let unid = db.open_note(ids[0]).unwrap().unid();
        b.iter(|| db.open_by_unid(unid).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_crud);
criterion_main!(benches);
