//! Criterion microbenches for the telemetry hot path (`domino-obs`).
//!
//! The registry's contract is that *recording* a metric costs no lock —
//! handles are interned once and recording is relaxed-atomic RMWs only.
//! These benches put a number on that: a counter bump is one fetch_add, a
//! histogram sample is four (bucket, count, sum, max), and a span enter/
//! exit adds a thread-local stack push/pop plus one Instant read. All
//! should land well under 50ns/sample on anything modern; the wiring in
//! the engine hot paths (commit, pool hit, view place) rests on that.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_obs as obs;

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");

    let counter = obs::counter("Bench.Obs.Counter");
    group.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });

    let gauge = obs::gauge("Bench.Obs.Gauge");
    group.bench_function("gauge_set", |b| {
        b.iter(|| gauge.set(42));
    });

    let hist = obs::histogram("Bench.Obs.Hist");
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(4096));
    });

    // Varying values walk different buckets (and the max CAS); the PRNG
    // itself is ~2ns of the measured loop.
    let mut v = 0u64;
    group.bench_function("histogram_record_varied", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(v >> 32);
        });
    });

    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            let _g = obs::span!("Bench.Obs.Span");
        });
    });

    group.bench_function("span_timed", |b| {
        b.iter(|| {
            let _g = obs::enter_timed("Bench.Obs.SpanTimed", hist);
        });
    });

    // The cold path for contrast: interning a handle takes the registry
    // mutex. Callers do this once per process, not per sample.
    group.bench_function("registry_lookup", |b| {
        b.iter(|| obs::counter("Bench.Obs.Counter"));
    });

    group.finish();

    // The criterion shim times each call individually, so sub-50ns ops
    // drown in the two clock reads per sample. This calibrated pass times
    // a tight loop instead and reports true ns/op — the number the
    // "recording costs no lock" contract is judged by.
    let per_op = |n: u64, f: &dyn Fn()| {
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            f();
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    };
    eprintln!("\ncalibrated ns/op (tight loop, clock overhead excluded):");
    eprintln!(
        "  counter.inc           {:6.1} ns/op",
        per_op(16_000_000, &|| counter.inc())
    );
    eprintln!(
        "  gauge.set             {:6.1} ns/op",
        per_op(16_000_000, &|| gauge.set(7))
    );
    eprintln!(
        "  histogram.record      {:6.1} ns/op",
        per_op(16_000_000, &|| hist.record(4096))
    );
    eprintln!(
        "  span enter/exit       {:6.1} ns/op",
        per_op(4_000_000, &|| {
            let _g = obs::span!("Bench.Obs.Span");
        })
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
