//! Buffer-pool replacement policy: clock sweep vs the seed's BTreeMap LRU.
//!
//! The seed engine kept `HashMap<PageId, Frame>` plus a `BTreeMap<u64,
//! PageId>` recency index; every page *hit* paid two BTreeMap updates
//! (remove old stamp, insert new) and every eviction allocated a fresh
//! 4 KiB frame. The clock-sweep pool replaces the recency index with a
//! reference bit and reuses the victim's buffer in place. On a 90%-hit
//! workload the hit path dominates, which is exactly where clock wins.

use std::collections::{BTreeMap, HashMap};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use domino_bench::workload::rng;
use domino_storage::{BufferPool, PageBuf, PageId};
use rand::Rng;

const CAPACITY: usize = 1024;
const HOT_PAGES: u32 = 768;
const COLD_PAGES: u32 = 100_000;
const TRACE_LEN: usize = 200_000;

/// 90% of accesses land in a hot set smaller than the pool (always
/// resident after warmup); 10% scatter over a cold range and miss.
fn make_trace() -> Vec<PageId> {
    let mut r = rng(0x90);
    (0..TRACE_LEN)
        .map(|_| {
            if r.random_bool(0.9) {
                r.random_range(0..HOT_PAGES)
            } else {
                HOT_PAGES + r.random_range(0..COLD_PAGES)
            }
        })
        .collect()
}

/// Faithful miniature of the seed pool's bookkeeping: stamped frames in a
/// HashMap with a BTreeMap recency index, new allocation per miss.
struct SeedLruPool {
    frames: HashMap<PageId, (PageBuf, u64)>,
    lru: BTreeMap<u64, PageId>,
    stamp: u64,
    capacity: usize,
}

impl SeedLruPool {
    fn new(capacity: usize) -> SeedLruPool {
        SeedLruPool {
            frames: HashMap::with_capacity(capacity),
            lru: BTreeMap::new(),
            stamp: 0,
            capacity,
        }
    }

    fn access(&mut self, id: PageId) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some((_, old)) = self.frames.get_mut(&id) {
            let prev = std::mem::replace(old, stamp);
            self.lru.remove(&prev);
            self.lru.insert(stamp, id);
            return true;
        }
        if self.frames.len() >= self.capacity {
            let (_, victim) = self.lru.pop_first().expect("full pool has entries");
            self.frames.remove(&victim);
        }
        self.frames.insert(id, (PageBuf::zeroed(id), stamp));
        self.lru.insert(stamp, id);
        false
    }
}

fn clock_access(pool: &mut BufferPool, id: PageId) -> bool {
    if pool.lookup(id).is_some() {
        return true;
    }
    if pool.is_full() {
        let victim = pool.pick_victim();
        pool.rebind(victim, id);
    } else {
        pool.push(PageBuf::zeroed(id));
    }
    false
}

fn bench_pool(c: &mut Criterion) {
    let trace = make_trace();
    let mut group = c.benchmark_group("pool_sweep");
    group.sample_size(10);

    group.bench_function("clock_90pct_hit", |b| {
        let mut pool = BufferPool::new(CAPACITY);
        for &id in &trace[..CAPACITY] {
            clock_access(&mut pool, id);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for &id in &trace {
                if clock_access(&mut pool, black_box(id)) {
                    hits += 1;
                }
            }
            hits
        });
    });

    group.bench_function("seed_btreemap_lru_90pct_hit", |b| {
        let mut pool = SeedLruPool::new(CAPACITY);
        for &id in &trace[..CAPACITY] {
            pool.access(id);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for &id in &trace {
                if pool.access(black_box(id)) {
                    hits += 1;
                }
            }
            hits
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
