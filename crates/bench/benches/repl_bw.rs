//! Criterion microbenches behind E5/E6: replication passes.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_db, populate, rng};
use domino_replica::{ReplicationOptions, Replicator};
use domino_types::Value;

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    group.sample_size(20);

    group.bench_function("noop_sync_1k_docs", |b| {
        let a = make_db("bench", 5, 1);
        let bb = make_db("bench", 5, 2);
        populate(&a, &mut rng(1), 1_000, 8, 64, 0);
        let mut r = Replicator::new(ReplicationOptions::default());
        r.sync(&a, &bb).unwrap();
        b.iter(|| r.sync(&a, &bb).unwrap());
    });

    group.bench_function("incremental_sync_10_changes", |b| {
        let a = make_db("bench", 5, 1);
        let bb = make_db("bench", 5, 2);
        let ids = populate(&a, &mut rng(2), 1_000, 8, 64, 0);
        let mut r = Replicator::new(ReplicationOptions::default());
        r.sync(&a, &bb).unwrap();
        let mut tick = 0usize;
        b.iter(|| {
            for i in 0..10 {
                let mut d = a.open_note(ids[(tick + i * 97) % ids.len()]).unwrap();
                d.set("F0", Value::text(format!("t{tick}")));
                a.save(&mut d).unwrap();
            }
            tick += 1;
            r.sync(&a, &bb).unwrap()
        });
    });

    group.bench_function("full_compare_sync_1k_docs", |b| {
        let a = make_db("bench", 5, 1);
        let bb = make_db("bench", 5, 2);
        populate(&a, &mut rng(3), 1_000, 8, 64, 0);
        let mut r = Replicator::new(ReplicationOptions {
            use_history: false,
            ..ReplicationOptions::default()
        });
        r.sync(&a, &bb).unwrap();
        b.iter(|| r.sync(&a, &bb).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
