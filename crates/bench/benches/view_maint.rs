//! Criterion microbenches behind E3: incremental view maintenance.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_db, populate, rng};
use domino_types::Value;
use domino_views::{ColumnSpec, SortDir, View, ViewDesign};

fn design() -> ViewDesign {
    ViewDesign::new("v", r#"SELECT Form = "Doc""#)
        .unwrap()
        .column(
            ColumnSpec::new("Category", "Category")
                .unwrap()
                .categorized(),
        )
        .column(
            ColumnSpec::new("F0", "F0")
                .unwrap()
                .sorted(SortDir::Ascending),
        )
}

fn bench_view_maint(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maint");

    let db = make_db("bench", 1, 1);
    let ids = populate(&db, &mut rng(1), 10_000, 4, 32, 0);
    let _view = View::attach(&db, design()).unwrap();

    let mut i = 0usize;
    group.bench_function("save_with_attached_view", |b| {
        b.iter(|| {
            i = (i + 7919) % ids.len();
            let mut d = db.open_note(ids[i]).unwrap();
            d.set("F0", Value::text(format!("edit{i}")));
            db.save(&mut d).unwrap();
        });
    });

    group.bench_function("full_rebuild_10k", |b| {
        let fresh = View::detached(&db, design()).unwrap();
        b.iter(|| fresh.rebuild().unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_view_maint);
criterion_main!(benches);
