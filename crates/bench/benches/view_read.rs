//! Criterion microbenches behind E4: view navigation and rollups.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_db, populate, rng};
use domino_types::Value;
use domino_views::{ColumnSpec, SortDir, View, ViewDesign};

fn bench_view_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_read");

    let db = make_db("bench", 1, 1);
    populate(&db, &mut rng(1), 10_000, 4, 32, 0);
    let view = View::attach(
        &db,
        ViewDesign::new("v", r#"SELECT Form = "Doc""#)
            .unwrap()
            .column(
                ColumnSpec::new("Category", "Category")
                    .unwrap()
                    .categorized(),
            )
            .column(
                ColumnSpec::new("Priority", "Priority")
                    .unwrap()
                    .sorted(SortDir::Ascending)
                    .totaled(),
            ),
    )
    .unwrap();

    group.bench_function("rows_full_scan", |b| {
        b.iter(|| view.rows().len());
    });

    group.bench_function("category_prefix_range", |b| {
        b.iter(|| view.rows_by_prefix(0, &[Value::text("cat3")]).len());
    });

    group.bench_function("category_rollup", |b| {
        b.iter(|| view.categories().len());
    });

    group.bench_function("column_total", |b| {
        b.iter(|| view.column_total(1));
    });

    group.finish();
}

criterion_group!(benches, bench_view_read);
criterion_main!(benches);
