//! E3 companion: parallel vs sequential full view rebuild.
//!
//! Benchmarks `ViewIndex::rebuild` (parallel evaluate + bulk-loaded
//! orders) against `ViewIndex::rebuild_sequential` (the single-threaded
//! reference) at 1k/10k/100k documents. Numbers land in EXPERIMENTS.md
//! under E3.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_db, populate, rng};
use domino_core::Note;
use domino_formula::EvalEnv;
use domino_types::NoteClass;
use domino_views::index::{NoSource, ViewIndex};
use domino_views::{ColumnSpec, SortDir, ViewDesign};

fn design() -> ViewDesign {
    ViewDesign::new("v", r#"SELECT Form = "Doc""#)
        .unwrap()
        .column(
            ColumnSpec::new("Category", "Category")
                .unwrap()
                .categorized(),
        )
        .column(
            ColumnSpec::new("Priority", "Priority")
                .unwrap()
                .sorted(SortDir::Descending),
        )
        .column(
            ColumnSpec::new("F0", "F0")
                .unwrap()
                .sorted(SortDir::Ascending),
        )
}

fn bench_rebuild_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_rebuild_par");

    // One 100k corpus; smaller sizes are prefixes of it.
    let db = make_db("bench", 1, 1);
    populate(&db, &mut rng(3), 100_000, 4, 32, 0);
    let ids = db.note_ids(Some(NoteClass::Document)).unwrap();
    let docs: Vec<Note> = ids.iter().map(|id| db.open_summary(*id).unwrap()).collect();

    for &n in &[1_000usize, 10_000, 100_000] {
        let samples = match n {
            100_000 => 5,
            10_000 => 10,
            _ => 20,
        };
        group.sample_size(samples);
        let slice = &docs[..n];

        let mut seq = ViewIndex::new(design(), EvalEnv::default()).unwrap();
        group.bench_function(&format!("sequential_{n}"), |b| {
            b.iter(|| seq.rebuild_sequential(slice.iter(), &NoSource).unwrap());
        });

        let mut par = ViewIndex::new(design(), EvalEnv::default()).unwrap();
        group.bench_function(&format!("parallel_{n}"), |b| {
            b.iter(|| par.rebuild(slice.iter(), &NoSource).unwrap());
        });

        assert_eq!(seq.len(), par.len(), "both paths index the same rows");
    }

    group.finish();
}

criterion_group!(benches, bench_rebuild_par);
criterion_main!(benches);
