//! Criterion microbenches behind E2: log append/flush and commit modes.

use criterion::{criterion_group, criterion_main, Criterion};

use domino_bench::workload::{make_doc, rng};
use domino_core::{Database, DbConfig};
use domino_storage::{CommitMode, EngineConfig, MemDisk};
use domino_types::{LogicalClock, ReplicaId};
use domino_wal::{LogManager, LogRecord, Lsn, MemLogStore, TxId};

fn bench_log(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");

    group.bench_function("append_update_record", |b| {
        let log = LogManager::open(MemLogStore::new()).unwrap();
        let rec = LogRecord::Update {
            tx: TxId(1),
            prev: Lsn::NIL,
            page: 7,
            offset: 128,
            before: vec![0u8; 64],
            after: vec![1u8; 64],
        };
        b.iter(|| log.append(&rec).unwrap());
    });

    group.bench_function("append_and_force", |b| {
        let log = LogManager::open(MemLogStore::new()).unwrap();
        b.iter(|| {
            let lsn = log.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
            log.flush(lsn).unwrap();
        });
    });

    for (label, logging, mode) in [
        ("commit_durable", true, CommitMode::Force),
        ("commit_noforce", true, CommitMode::NoForce),
        ("commit_nolog", false, CommitMode::NoForce),
    ] {
        group.bench_function(label, |b| {
            let engine = EngineConfig {
                logging,
                commit_mode: mode,
                ..EngineConfig::default()
            };
            let log: Option<Box<dyn domino_wal::LogStore>> = if logging {
                Some(Box::new(MemLogStore::new()))
            } else {
                None
            };
            let db = Database::open(
                Box::new(MemDisk::new()),
                log,
                DbConfig::new("b", ReplicaId(1), ReplicaId(1)).with_engine(engine),
                LogicalClock::new(),
            )
            .unwrap();
            let mut r = rng(3);
            b.iter(|| {
                let mut d = make_doc(&mut r, 4, 32, 0);
                db.save(&mut d).unwrap();
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_log);
criterion_main!(benches);
