//! Regenerate the experiment tables/figures (E1–E13).
//!
//! ```text
//! report all            # every experiment, full scale
//! report e3 e5          # selected experiments
//! report all --quick    # small datasets (seconds, for CI)
//! report all --json experiments_results.json
//! ```
//!
//! The JSON output pairs each experiment's table with the delta of the
//! process-wide telemetry registry (`domino-obs`) across its run, so a
//! result row can be correlated with what the engine actually did —
//! pool hits, WAL flushes, notes pushed — not just what it measured.

use std::io::Write;

use domino_bench::{all_experiments, Scale, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| json_path.as_deref() != Some(a.as_str()))
        .map(|a| a.to_lowercase())
        .collect();
    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");

    let mut results: Vec<(Table, domino_obs::Snapshot)> = Vec::new();
    for (id, f) in all_experiments(scale) {
        if !run_all && !wanted.iter().any(|w| w == id) {
            continue;
        }
        eprintln!("running {id} ({:?})...", scale);
        let before = domino_obs::snapshot();
        let t0 = std::time::Instant::now();
        let table = f(scale);
        eprintln!("  {id} done in {:.2}s", t0.elapsed().as_secs_f64());
        println!("{}", table.to_markdown());
        let delta = domino_obs::snapshot().diff(&before);
        results.push((table, delta));
    }

    if let Some(path) = json_path {
        let items: Vec<String> = results
            .iter()
            .map(|(t, metrics)| {
                format!(
                    "  {{\"experiment\": {}, \"metrics\": {}}}",
                    t.to_json(),
                    metrics.to_json()
                )
            })
            .collect();
        let json = format!("[\n{}\n]\n", items.join(",\n"));
        let mut f = std::fs::File::create(&path).expect("create json file");
        f.write_all(json.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }
}
