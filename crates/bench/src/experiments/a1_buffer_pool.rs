//! A1 (ablation) — buffer pool capacity vs read performance.
//!
//! Design choice being ablated: the steal/no-force buffer pool with LRU
//! eviction and the summary/body page segregation. Shrinking the pool
//! below the working set shows the cliff; summary reads degrade far more
//! gently because their working set (1 page/note) is 4-5× smaller.

use std::time::Instant;

use rand::Rng;

use crate::table::{fmt, micros_per, Table};
use crate::workload::rng;
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "a1",
        "Ablation 1",
        "Buffer pool capacity: hit rate and read cost vs working set",
        "Design choice: a page-granular LRU buffer pool + summary/body \
         segregation; views stay fast even when bodies no longer fit",
    )
    .columns(&[
        "pool pages",
        "full-read µs",
        "summary-read µs",
        "hit rate",
        "evictions",
    ]);

    let n = scale.pick(1_000, 4_000);
    let probes = scale.pick(2_000, 8_000);
    for capacity in [64usize, 256, 1024, 4096, 16384] {
        let db = make_db_with_capacity(n, capacity);
        let mut r = rng(0xA1);
        let ids = db
            .note_ids(Some(domino_types::NoteClass::Document))
            .expect("ids");
        let before = db.engine_stats();

        let t0 = Instant::now();
        for _ in 0..probes {
            let id = ids[r.random_range(0..ids.len())];
            db.open_note(id).expect("read");
        }
        let full = t0.elapsed();

        let t0 = Instant::now();
        for _ in 0..probes {
            let id = ids[r.random_range(0..ids.len())];
            db.open_summary(id).expect("read");
        }
        let summary = t0.elapsed();

        let after = db.engine_stats();
        let hits = after.pool_hits - before.pool_hits;
        let misses = after.pool_misses - before.pool_misses;
        table.row(vec![
            fmt(capacity as f64),
            micros_per(probes, full),
            micros_per(probes, summary),
            format!(
                "{:.1}%",
                100.0 * hits as f64 / (hits + misses).max(1) as f64
            ),
            fmt((after.evictions - before.evictions) as f64),
        ]);
    }
    table.takeaway(
        "below the working set the hit rate collapses and reads pay disk+eviction \
         per page; summary reads stay usable at pool sizes where full reads thrash \
         — the access-path segregation is what keeps view refresh cheap",
    );
    table
}

fn make_db_with_capacity(n: usize, capacity: usize) -> std::sync::Arc<domino_core::Database> {
    use domino_core::{Database, DbConfig};
    use domino_storage::EngineConfig;
    use domino_types::{LogicalClock, ReplicaId};
    let db = std::sync::Arc::new(
        Database::open_in_memory(
            DbConfig::new("a1", ReplicaId(1), ReplicaId(1)).with_engine(EngineConfig {
                buffer_capacity: capacity,
                ..EngineConfig::default()
            }),
            LogicalClock::new(),
        )
        .expect("open"),
    );
    let mut r = crate::workload::rng(0xA1A1);
    crate::workload::populate(&db, &mut r, n, 6, 48, 12_288);
    db
}
