//! A2 (ablation) — revision-lineage depth vs spurious conflicts.
//!
//! Design choice being ablated: conflict detection via the bounded
//! `$Revisions` fingerprint lineage (32 entries). A replica that falls
//! more than 32 revisions behind can no longer *prove* the newer copy
//! descends from its own, so replication conservatively treats the pair
//! as a conflict — a false positive that preserves data at the cost of a
//! spurious `$Conflict` document. This table finds that boundary.

use domino_core::{Note, MAX_REVISIONS};
use domino_replica::{ReplicationOptions, Replicator};
use domino_types::{NoteClass, Value};

use crate::table::{fmt, Table};
use crate::workload::make_db;
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "a2",
        "Ablation 2",
        "Bounded revision lineage: clean updates vs spurious conflicts",
        "Design choice: ancestry is proven from a bounded fingerprint list \
         (like Notes' $Revisions); beyond its depth, replication falls back \
         to conflict handling rather than risk a lost update",
    )
    .columns(&[
        "updates between syncs",
        "lineage depth",
        "clean updates",
        "conflicts (spurious)",
        "data preserved",
    ]);
    let _ = scale;

    for k in [
        4usize,
        16,
        MAX_REVISIONS - 1,
        MAX_REVISIONS,
        MAX_REVISIONS + 4,
        64,
    ] {
        let a = make_db("a2", 2, 1);
        let b = make_db("a2", 2, 2);
        let mut repl = Replicator::new(ReplicationOptions::default());
        let mut doc = Note::document("Doc");
        doc.set("Payload", Value::text("v0"));
        a.save(&mut doc).expect("save");
        repl.sync(&a, &b).expect("sync");

        // `k` successive edits on a alone.
        for i in 0..k {
            let mut d = a.open_by_unid(doc.unid()).expect("open");
            d.set("Payload", Value::text(format!("v{}", i + 1)));
            a.save(&mut d).expect("save");
        }
        let (_, into_b) = repl.sync(&a, &b).expect("sync");
        // Settle conflict docs if any.
        repl.sync(&a, &b).expect("sync");

        let preserved = b
            .note_ids(Some(NoteClass::Document))
            .expect("ids")
            .iter()
            .any(|id| {
                b.open_note(*id)
                    .map(|n| n.get_text("Payload").as_deref() == Some(&format!("v{k}")))
                    .unwrap_or(false)
            });
        table.row(vec![
            fmt(k as f64),
            fmt(MAX_REVISIONS as f64),
            fmt(into_b.updated as f64),
            fmt(into_b.conflicts as f64),
            if preserved { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(preserved, "latest payload must survive regardless");
    }
    table.takeaway(
        "up to lineage-depth updates between syncs apply cleanly; past it, the \
         same schedule produces a spurious conflict document — but never a lost \
         update. Deeper lineage trades bytes-per-note for sync tolerance",
    );
    table
}
