//! A2 (ablation) — revision-lineage depth vs spurious conflicts.
//!
//! Design choice being ablated: how ancestry is proven between two copies
//! of a note. The original bounded `$Revisions` fingerprint list (32
//! entries, like Notes) could not prove descent once a replica fell more
//! than 32 revisions behind, so replication conservatively manufactured a
//! `$Conflict` document — a false positive. The content-addressed
//! revision chain (`$RevisionHashes`) is unbounded: every copy carries
//! its full hash lineage, so descent is provable at *any* edit depth.
//! This table re-runs the old sweep (and deeper) and verifies the
//! anomaly is gone: zero spurious conflicts at every depth.

use domino_core::{Note, MAX_REVISIONS};
use domino_replica::{ReplicationOptions, Replicator};
use domino_types::{NoteClass, Value};

use crate::table::{fmt, Table};
use crate::workload::make_db;
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "a2",
        "Ablation 2",
        "Unbounded revision chains: spurious conflicts eliminated at every depth",
        "Design choice: ancestry is proven from the content-addressed hash \
         chain ($RevisionHashes) instead of the bounded $Revisions \
         fingerprint list; the chain carries the full lineage, so an \
         arbitrarily stale replica can still prove the newer copy descends \
         from its own",
    )
    .columns(&[
        "updates between syncs",
        "fingerprint depth (old oracle)",
        "clean updates",
        "conflicts (spurious)",
        "data preserved",
    ]);
    let _ = scale;

    for k in [
        4usize,
        16,
        MAX_REVISIONS - 1,
        MAX_REVISIONS,
        MAX_REVISIONS + 4,
        64,
        256,
    ] {
        let a = make_db("a2", 2, 1);
        let b = make_db("a2", 2, 2);
        let mut repl = Replicator::new(ReplicationOptions::default());
        let mut doc = Note::document("Doc");
        doc.set("Payload", Value::text("v0"));
        a.save(&mut doc).expect("save");
        repl.sync(&a, &b).expect("sync");

        // `k` successive edits on a alone.
        for i in 0..k {
            let mut d = a.open_by_unid(doc.unid()).expect("open");
            d.set("Payload", Value::text(format!("v{}", i + 1)));
            a.save(&mut d).expect("save");
        }
        let (_, into_b) = repl.sync(&a, &b).expect("sync");
        // A second sync would settle conflict docs — there must be none.
        repl.sync(&a, &b).expect("sync");

        let preserved = b
            .note_ids(Some(NoteClass::Document))
            .expect("ids")
            .iter()
            .any(|id| {
                b.open_note(*id)
                    .map(|n| n.get_text("Payload").as_deref() == Some(&format!("v{k}")))
                    .unwrap_or(false)
            });
        table.row(vec![
            fmt(k as f64),
            fmt(MAX_REVISIONS as f64),
            fmt(into_b.updated as f64),
            fmt(into_b.conflicts as f64),
            if preserved { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(preserved, "latest payload must survive regardless");
        assert_eq!(
            into_b.conflicts, 0,
            "hash-chain ancestry must prove descent at depth {k}"
        );
    }
    table.takeaway(
        "spurious conflicts: 0 at every depth — the unbounded hash chain \
         proves ancestry even when a replica falls hundreds of revisions \
         behind, where the bounded fingerprint list used to manufacture a \
         conflict document past its 32-entry depth",
    );
    table
}
