//! A3 (ablation) — checkpoint interval: runtime overhead vs recovery time.
//!
//! Design choice being ablated: sharp checkpoints (flush + master record).
//! Frequent checkpoints bound restart recovery tightly but pay page flushes
//! during normal running; rare checkpoints are cheap until the crash.

use std::sync::Arc;
use std::time::Instant;

use domino_core::{Database, DbConfig, Note};
use domino_storage::MemDisk;
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_wal::MemLogStore;

use crate::table::{fmt, micros_per, Table};
use crate::Scale;

fn open(disk: MemDisk, log: MemLogStore, clock: LogicalClock) -> Arc<Database> {
    Arc::new(
        Database::open(
            Box::new(disk),
            Some(Box::new(log)),
            DbConfig::new("a3", ReplicaId(1), ReplicaId(1)),
            clock,
        )
        .expect("open"),
    )
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "a3",
        "Ablation 3",
        "Checkpoint interval: run-time cost vs restart-recovery cost",
        "Design choice: sharp checkpoints; the interval is the knob trading \
         steady-state flush work against crash-recovery work",
    )
    .columns(&[
        "checkpoint every",
        "workload ms",
        "recovery µs",
        "records replayed",
        "page flushes",
    ]);

    let total_ops = scale.pick(2_000, 10_000);
    let intervals = [total_ops / 20, total_ops / 5, total_ops / 2, total_ops + 1];
    for interval in intervals {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let clock = LogicalClock::new();
        let (elapsed, flushes) = {
            let db = open(disk.clone(), log.clone(), clock.clone());
            let t0 = Instant::now();
            for i in 0..total_ops {
                let mut n = Note::document("Doc");
                n.set("I", Value::Number(i as f64));
                db.save(&mut n).expect("save");
                if i % interval == interval - 1 {
                    db.checkpoint().expect("checkpoint");
                }
            }
            let elapsed = t0.elapsed();
            // The crash lands mid-interval: half an interval of work since
            // the last checkpoint is the expected recovery tail.
            let tail = (interval.min(total_ops) / 2).max(1);
            for i in 0..tail {
                let mut n = Note::document("Doc");
                n.set("I", Value::Number((total_ops + i) as f64));
                db.save(&mut n).expect("save");
            }
            log.crash();
            (elapsed, db.engine_stats().page_writes)
        };
        let t0 = Instant::now();
        let db = open(disk, log, clock);
        let recovery = t0.elapsed();
        let stats = db.recovery_stats().expect("recovery ran");
        let tail = (interval.min(total_ops) / 2).max(1);
        assert_eq!(db.document_count().expect("count"), total_ops + tail);
        table.row(vec![
            if interval > total_ops {
                "never".to_string()
            } else {
                format!("{interval} ops")
            },
            fmt(elapsed.as_secs_f64() * 1e3),
            micros_per(1, recovery),
            fmt(stats.analyzed as f64),
            fmt(flushes as f64),
        ]);
    }
    table.takeaway(
        "recovery work is exactly the post-checkpoint tail (records replayed ∝ \
         interval); the steady-state price is page flushes ∝ ops/interval — the \
         administrator picks the crossover, as with Domino's checkpoint settings",
    );
    table
}
