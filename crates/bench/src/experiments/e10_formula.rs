//! E10 (Table 6) — formula evaluation throughput by complexity class.

use std::time::Instant;

use domino_formula::{EvalEnv, Formula};

use crate::table::{micros_per, rate, Table};
use crate::workload::{make_doc, rng};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e10",
        "Table 6",
        "Formula evaluation throughput",
        "Formula evaluation is cheap enough to run per-document during view \
         refresh and selective replication",
    )
    .columns(&["formula class", "evals/s", "µs/eval"]);

    let mut r = rng(0xE10);
    let doc = make_doc(&mut r, 10, 60, 0);
    let reps = scale.pick(20_000, 200_000);

    let formulas: Vec<(&str, &str)> = vec![
        ("field reference", "F0"),
        ("simple select", r#"SELECT Form = "Doc""#),
        (
            "conjunctive select",
            r#"SELECT Form = "Doc" & Priority >= 2 & Category != "cat9""#,
        ),
        (
            "text manipulation",
            r#"@Uppercase(@Left(F0; 10)) + "-" + @Text(Priority)"#,
        ),
        (
            "list pipeline",
            r#"@Implode(@Sort(@Unique(@Explode(F0; " "))); ",")"#,
        ),
        (
            "conditional + arithmetic",
            r#"@If(Priority > 3; "hot"; Priority > 1; "warm"; "cold") + @Text(@Sum(Priority; 1; 2; 3) * 2)"#,
        ),
    ];

    for (label, src) in formulas {
        let f = Formula::compile(src).expect("compile");
        let env = EvalEnv::default();
        let t0 = Instant::now();
        for _ in 0..reps {
            f.eval(&doc, &env).expect("eval");
        }
        let elapsed = t0.elapsed();
        table.row(vec![
            label.to_string(),
            rate(reps, elapsed),
            micros_per(reps, elapsed),
        ]);
    }
    table.takeaway(
        "even the heaviest formula classes evaluate in single-digit microseconds, \
         which is what makes per-document selection during view refresh viable",
    );
    table
}
