//! E11 (Table 7) — reader-field enforcement overhead on reads.

use std::sync::Arc;
use std::time::Instant;

use domino_core::Session;
use domino_formula::Formula;
use domino_security::{AccessLevel, Acl, AclEntry, Directory};
use domino_types::{ItemFlags, Value};

use crate::table::{fmt, micros_per, Table};
use crate::workload::{make_db, populate, rng};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e11",
        "Table 7",
        "Reader-field security: enforcement overhead and filtering",
        "Per-document reader lists are enforced at read time at modest cost, \
         scaling with the fraction of protected documents",
    )
    .columns(&[
        "protected fraction",
        "visible docs",
        "unsecured search µs",
        "session search µs",
        "overhead",
    ]);

    let n = scale.pick(500, 5_000);
    for protected_pct in [0usize, 25, 75, 100] {
        let db = make_db("e11", 11, 1);
        let mut r = rng(0xE11);
        let ids = populate(&db, &mut r, n, 4, 32, 0);
        // Protect a fraction of documents with a role-based reader field.
        for (i, id) in ids.iter().enumerate() {
            if i % 100 < protected_pct {
                let mut d = db.open_note(*id).expect("open");
                d.set_with_flags(
                    "$Readers",
                    Value::text_list(["[Vault]"]),
                    ItemFlags::SUMMARY | ItemFlags::READERS,
                );
                db.save(&mut d).expect("save");
            }
        }
        let mut acl = Acl::new(AccessLevel::NoAccess);
        acl.set("worker", AclEntry::new(AccessLevel::Editor));
        db.set_acl(&acl).expect("acl");

        let f = Formula::compile(r#"SELECT Form = "Doc""#).expect("f");
        let reps = 5;

        let t0 = Instant::now();
        let mut raw_count = 0;
        for _ in 0..reps {
            raw_count = db.search(&f, &Default::default()).expect("search").len();
        }
        let raw = t0.elapsed();

        let session = Session::new(Arc::clone(&db), "worker", Directory::new());
        let t0 = Instant::now();
        let mut visible = 0;
        for _ in 0..reps {
            visible = session.search(&f).expect("search").len();
        }
        let secured = t0.elapsed();

        assert_eq!(raw_count, n);
        assert_eq!(visible, n - n * protected_pct / 100);

        table.row(vec![
            format!("{protected_pct}%"),
            fmt(visible as f64),
            micros_per(reps, raw),
            micros_per(reps, secured),
            format!(
                "{}x",
                fmt(secured.as_secs_f64() / raw.as_secs_f64().max(1e-9))
            ),
        ]);
    }
    table.takeaway(
        "enforcement filters exactly the protected fraction; the per-read check \
         adds a small constant factor over the unsecured scan (ACL resolution + \
         list matching), independent of how many documents end up hidden",
    );
    table
}
