//! E12 (Figure 5) — failover staleness: cluster (event-driven) replication
//! vs scheduled replication.
//!
//! A stream of updates hits the primary. At random instants we "fail over"
//! and count how many committed documents the backup is missing. The
//! cluster mate receives pushes per commit; the scheduled replica syncs
//! every `interval` ticks.

use domino_replica::{Cluster, ReplicationOptions};
use domino_types::{Clock, LogicalClock, Value};
use rand::Rng;

use domino_net::{LinkSpec, Network, Topology};

use crate::table::{fmt, Table};
use crate::workload::rng;
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e12",
        "Figure 5",
        "Failover staleness: cluster push vs scheduled replication",
        "Event-driven cluster replication keeps failover replicas current to the \
         last committed change; scheduled replication lags by up to its interval",
    )
    .columns(&[
        "updates between syncs",
        "sched interval (ticks)",
        "missing @ failover (sched)",
        "missing @ failover (cluster)",
        "sched max lag (docs)",
    ]);

    let trials = scale.pick(5, 10);
    for (update_every, interval) in [(10u64, 200u64), (10, 1000), (50, 1000), (5, 2000)] {
        let clock = LogicalClock::new();
        let mut net = Network::new(3, Topology::Mesh, LinkSpec::default(), clock.clone());
        net.create_replica_set("app").expect("replicas");
        // Server 1 is the cluster mate; server 2 the scheduled replica.
        let primary = net.db(0, "app").expect("db");
        let mate = net.db(1, "app").expect("db");
        let _cluster = Cluster::join(&[primary.clone(), mate.clone()]).expect("cluster");
        net.schedule_replication("app", interval, ReplicationOptions::default());

        let mut r = rng(update_every + interval);
        let mut committed = 0u64;
        let mut sched_missing_total = 0u64;
        let mut cluster_missing_total = 0u64;
        let mut sched_max = 0u64;
        let horizon = interval * trials as u64;
        let mut next_update = update_every;
        let mut failover_points: Vec<u64> =
            (0..trials).map(|_| r.random_range(1..horizon)).collect();
        failover_points.sort_unstable();
        let mut fp = 0usize;

        while clock.peek().0 < horizon {
            net.step(update_every.min(17)).expect("step");
            let now = clock.peek().0;
            if now >= next_update {
                let mut d = domino_core::Note::document("Doc");
                d.set("Seq", Value::Number(committed as f64));
                net.db(0, "app").expect("db").save(&mut d).expect("save");
                committed += 1;
                next_update += update_every;
            }
            while fp < failover_points.len() && failover_points[fp] <= now {
                let sched = net.db(2, "app").expect("db").document_count().expect("n") as u64;
                let clus = net.db(1, "app").expect("db").document_count().expect("n") as u64;
                let sm = committed.saturating_sub(sched);
                sched_missing_total += sm;
                sched_max = sched_max.max(sm);
                cluster_missing_total += committed.saturating_sub(clus);
                fp += 1;
            }
        }
        table.row(vec![
            fmt(update_every as f64),
            fmt(interval as f64),
            fmt(sched_missing_total as f64 / trials as f64),
            fmt(cluster_missing_total as f64 / trials as f64),
            fmt(sched_max as f64),
        ]);
    }
    table.takeaway(
        "the cluster mate misses ~0 documents at any failover instant; the \
         scheduled replica misses up to interval/update-rate documents — \
         staleness scales with the schedule, not the workload",
    );
    table
}
