//! E13 (Table 8) — mail routing throughput and latency by topology.

use domino_net::{LinkSpec, MailRouter, MailUser, Network, Topology};
use domino_types::LogicalClock;
use rand::Rng;

use crate::table::{fmt, Table};
use crate::workload::rng;
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e13",
        "Table 8",
        "Mail routing: delivery latency and hops by topology",
        "Mail is 'just documents plus routing': delivery cost is the hop count \
         times link latency, so topology choice dominates mail latency",
    )
    .columns(&[
        "topology",
        "servers",
        "messages",
        "hops total",
        "mean latency",
        "max latency",
        "bytes moved",
    ]);

    let servers = 6;
    let messages = scale.pick(60, 300);
    for topology in Topology::ALL {
        let mut net = Network::new(
            servers,
            topology,
            LinkSpec {
                latency: 3,
                bytes_per_tick: 512,
                ..LinkSpec::default()
            },
            LogicalClock::new(),
        );
        let users: Vec<MailUser> = (0..servers)
            .map(|i| MailUser {
                name: format!("u{i}"),
                home_server: i,
            })
            .collect();
        let mut router = MailRouter::setup(&mut net, &users).expect("mail setup");
        let mut r = rng(0xE13);
        for m in 0..messages {
            let from = r.random_range(0..servers);
            let mut to = r.random_range(0..servers);
            if to == from {
                to = (to + 1) % servers;
            }
            router
                .send(
                    &net,
                    from,
                    &format!("u{from}"),
                    &format!("u{to}"),
                    &format!("msg {m}"),
                    "body body body body body body body",
                )
                .expect("send");
        }
        router
            .run_until_delivered(&mut net, 100_000)
            .expect("deliver all");
        let s = router.stats();
        assert_eq!(s.delivered as usize, messages);
        table.row(vec![
            topology.name().to_string(),
            fmt(servers as f64),
            fmt(messages as f64),
            fmt(s.forwarded as f64),
            fmt(s.total_latency as f64 / s.delivered as f64),
            fmt(s.max_latency as f64),
            fmt(net.total_traffic().bytes as f64),
        ]);
    }
    table.takeaway(
        "mesh delivers in ~1 hop; hub-spoke doubles hops (and concentrates bytes \
         on hub links); chain latency grows with the path length — routing cost \
         is purely topological",
    );
    table
}
