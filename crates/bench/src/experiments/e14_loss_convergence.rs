//! E14 — convergence under message loss: rounds and bytes as a function
//! of per-message drop rate, with and without retry, across the E6
//! topologies.
//!
//! The paper's operational claim is that epidemic replication tolerates
//! unreliable links. This experiment injects seeded per-message drops
//! (0–30%) and measures rounds-to-convergence and shipped bytes for a
//! retry-with-backoff policy vs a no-retry baseline. Resume cursors mean
//! even the baseline eventually converges — it just pays for every
//! aborted pass in extra rounds.

use domino_net::{LinkSpec, Network, Topology};
use domino_replica::RetryPolicy;
use domino_types::{LogicalClock, Value};

use crate::table::{fmt, Table};
use crate::workload::rng;
use crate::Scale;

/// Rounds allowed before a configuration is declared non-convergent.
const ROUND_CAP: usize = 300;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e14",
        "Figure 8",
        "Convergence under message loss: rounds/bytes vs drop rate",
        "Retry with backoff plus resumable passes keeps rounds near the \
         lossless baseline even at 30% message loss; without retry every \
         dropped message costs a full scheduling round",
    )
    .columns(&[
        "topology", "drop_pct", "retry", "rounds", "bytes", "dropped", "aborted",
    ]);

    let n = scale.pick(4, 8);
    let updates = scale.pick(20, 40);
    let drop_rates = [0.0, 0.10, 0.20, 0.30];

    for topology in Topology::ALL {
        for &drop in &drop_rates {
            for (label, policy) in [
                ("backoff", RetryPolicy::standard()),
                ("none", RetryPolicy::none()),
            ] {
                let mut net = Network::new(
                    n,
                    topology,
                    LinkSpec::default().with_drop_rate(drop),
                    LogicalClock::new(),
                );
                net.set_fault_seed(0xE14 ^ (drop * 100.0) as u64);
                net.set_retry_policy(policy);
                net.create_replica_set("d").expect("replica set");
                let mut r = rng(0xE14 + n as u64);
                use rand::Rng;
                for u in 0..updates {
                    let server = r.random_range(0..n);
                    let db = net.db(server, "d").expect("db");
                    let mut note = domino_core::Note::document("Doc");
                    note.set("Payload", Value::text(format!("u{u}")));
                    db.save(&mut note).expect("save");
                }
                let rounds = net
                    .run_until_converged("d", ROUND_CAP)
                    .map(|r| fmt(r as f64))
                    .unwrap_or_else(|_| "dnf".to_string());
                let traffic = net.total_traffic();
                let faults = net.total_faults();
                table.row(vec![
                    topology.name().to_string(),
                    fmt(drop * 100.0),
                    label.to_string(),
                    rounds,
                    fmt(traffic.bytes as f64),
                    fmt(faults.dropped as f64),
                    fmt(faults.aborted_passes as f64),
                ]);
            }
        }
    }
    table.takeaway(
        "convergence survives every drop rate up to 30%: backoff retries ship \
         a few extra messages but hold rounds near the clean figure, while the \
         no-retry baseline leans on resume cursors and pays roughly one extra \
         round per aborted pass — the dial-up trade-off the tutorial's \
         administrators tuned by hand",
    );
    table
}
