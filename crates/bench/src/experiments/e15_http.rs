//! E15 — HTTP task throughput: requests/second as a function of worker
//! count with the command cache on vs off, under a 90%-read skewed URL
//! command mix, plus the hot-path latency of a repeated `?OpenView`.
//!
//! The Domino web story rests on two mechanisms: a pool of HTTP worker
//! threads in front of the note store, and the command cache that serves
//! a hot view page without re-reading the view index. This experiment
//! storms a discussion database through [`domino_server::DominoServer`]
//! — 90% `?OpenView` reads concentrated on three hot windows, 10%
//! `?CreateDocument` writes (each of which expires every cached page) —
//! and measures end-to-end requests/second, cache hit rate, and p95
//! request latency per configuration. The `hot_us` column times the
//! fully-warmed repeated `?OpenView` alone: cache-on vs cache-off on
//! that path is the ≥5× claim recorded in EXPERIMENTS.md.

use std::sync::Arc;

use domino_core::{Database, DbConfig, Note};
use domino_security::{AccessLevel, Acl, AclEntry};
use domino_server::{DominoServer, Request, ServerConfig};
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_views::{ColumnSpec, SortDir, ViewDesign};

use crate::table::{fmt, Table};
use crate::Scale;

/// Client threads driving the storm (more than the largest worker count,
/// so the pool — not the drivers — is the bottleneck).
const CLIENTS: usize = 8;

fn site(docs: usize, config: ServerConfig) -> DominoServer {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("E15", ReplicaId(0xE15), ReplicaId(1)),
            LogicalClock::new(),
        )
        .expect("open db"),
    );
    let mut acl = Acl::new(AccessLevel::NoAccess);
    acl.set("alice", AclEntry::new(AccessLevel::Editor));
    db.set_acl(&acl).expect("acl");
    for i in 0..docs {
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text(format!("topic {i:04}")));
        n.set("From", Value::text("seed"));
        db.save(&mut n).expect("save");
    }
    let server = DominoServer::new(config);
    server.register_database("disc", &db).expect("register");
    let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#).expect("design");
    design.columns = vec![
        ColumnSpec::new("Subject", "Subject")
            .expect("col")
            .sorted(SortDir::Ascending),
        ColumnSpec::new("From", "From").expect("col"),
    ];
    server.add_view("disc", design).expect("view");
    server.register_user("alice", "pw");
    server
}

/// One request of the 90/10 skewed mix, by sequence number.
fn request_for(n: usize) -> Request {
    if n % 10 == 9 {
        Request::post(
            "/disc.nsf/Topic?CreateDocument",
            &format!("Subject=storm+{n}&From=storm"),
        )
        .as_user("alice", "pw")
    } else {
        let start = 1 + (n % 3) * 10; // three hot windows
        Request::get(&format!("/disc.nsf/topics?OpenView&Start={start}&Count=10"))
            .as_user("alice", "pw")
    }
}

/// Mean microseconds for `reps` repeated identical `?OpenView` requests
/// on a warmed server (the first call primes the cache and is excluded).
fn hot_read_us(server: &DominoServer, reps: usize) -> f64 {
    // A default-size window (Count=30), the page a browser actually asks for.
    let req = Request::get("/disc.nsf/topics?OpenView").as_user("alice", "pw");
    assert_eq!(server.handle(&req).status.code(), 200);
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        assert_eq!(server.handle(&req).status.code(), 200);
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e15",
        "Table 9",
        "HTTP task: req/s vs workers x command cache, 90% read skew",
        "A fixed worker pool carries the skewed storm at thousands of req/s; \
         the command cache absorbs the hot windows (~75-85% hit rate) and \
         serves a repeated ?OpenView at least 5x faster than re-rendering",
    )
    .columns(&[
        "workers",
        "cache",
        "reqs",
        "req_per_s",
        "hit_pct",
        "p95_us",
        "hot_us",
    ]);

    let docs = scale.pick(40, 120);
    let reqs = scale.pick(2_000, 20_000);
    let hot_reps = scale.pick(200, 1_000);

    for workers in [1usize, 2, 4, 8] {
        for (cache_label, capacity) in [("on", 256usize), ("off", 0usize)] {
            let server = site(
                docs,
                ServerConfig {
                    workers,
                    // Clients block on serve(), so the queue never sheds;
                    // the bound just has to exceed the client count.
                    queue_bound: CLIENTS * 4,
                    cache_capacity: capacity,
                },
            );
            let before = domino_obs::snapshot();
            let t0 = std::time::Instant::now();
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let server = server.clone();
                    let per_client = reqs / CLIENTS;
                    std::thread::spawn(move || {
                        for i in 0..per_client {
                            let resp = server.serve(request_for(c * per_client + i));
                            assert_eq!(resp.status.code(), 200, "{}", resp.body);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
            let elapsed = t0.elapsed();
            let delta = domino_obs::snapshot().diff(&before);
            let hits = delta.counter("Http.Cache.Hits");
            let misses = delta.counter("Http.Cache.Misses");
            let hit_pct = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
            let p95 = delta.histogram("Http.Request.Micros").p95();
            let served = (reqs / CLIENTS) * CLIENTS;
            table.row(vec![
                workers.to_string(),
                cache_label.to_string(),
                fmt(served as f64),
                fmt(served as f64 / elapsed.as_secs_f64()),
                fmt(hit_pct),
                fmt(p95 as f64),
                fmt(hot_read_us(&server, hot_reps)),
            ]);
        }
    }
    table.takeaway(
        "end-to-end req/s moves only modestly with workers and cache because \
         the 10% writes both serialize on the note store and expire every \
         cached page; the hot windows still hit ~75-85% of the time. The \
         hot_us column isolates what the cache buys: a repeated ?OpenView is \
         served an order of magnitude faster (14-23x here) from the command \
         cache than by re-rendering the page from the view index",
    );
    table
}
