//! E16 — concurrency layer: throughput and tail latency of mixed
//! read/write storms as a function of worker count, read/write mix, and
//! the per-note lock table (on) vs a single global write lock (off).
//!
//! Readers run the full `?OpenView`-shaped path with **no lock at all**:
//! pin a snapshot, take one consistent view page ([`domino_views::View::page`]),
//! and open every row from the snapshot. Writers run optimistic
//! field-update commits; with the lock table on they serialize per note,
//! with it off they all funnel through one global exclusive key (the
//! pre-concurrency-layer behavior). The `rd_locks` column counts lock
//! acquisitions made by the read path — it is structurally zero, which is
//! the "readers never wait on the writer lock" claim made observable:
//! a reader that takes no lock cannot wait on one.

use std::sync::Arc;
use std::time::Instant;

use domino_core::{Database, DbConfig, Note};
use domino_types::{LogicalClock, NoteId, ReplicaId, Value};
use domino_views::{ColumnSpec, SortDir, View, ViewDesign};

use crate::table::{fmt, Table};
use crate::Scale;

/// Deterministic per-worker RNG (no process entropy in experiments).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn fixture(docs: usize, lock_table: bool) -> (Arc<Database>, Arc<View>, Vec<NoteId>) {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("E16", ReplicaId(0xE16), ReplicaId(1)).with_lock_table(lock_table),
            LogicalClock::new(),
        )
        .expect("open db"),
    );
    let mut ids = Vec::with_capacity(docs);
    for i in 0..docs {
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text(format!("topic {i:04}")));
        n.set("Counter", Value::Number(0.0));
        db.save(&mut n).expect("save");
        ids.push(n.id);
    }
    let view = Arc::new(
        View::attach(
            &db,
            ViewDesign::new("topics", r#"SELECT Form = "Topic""#)
                .expect("design")
                .column(
                    ColumnSpec::new("Subject", "Subject")
                        .expect("col")
                        .sorted(SortDir::Ascending),
                ),
        )
        .expect("view"),
    );
    (db, view, ids)
}

fn p99(lat: &mut [u64]) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
}

struct MixResult {
    ops: usize,
    elapsed_s: f64,
    rd_p99_us: u64,
    wr_p99_us: u64,
    lock_waits: u64,
    rd_locks: u64,
}

fn storm(
    db: &Arc<Database>,
    view: &Arc<View>,
    ids: &[NoteId],
    workers: usize,
    total_ops: usize,
    read_pct: u64,
) -> MixResult {
    let per_worker = total_ops / workers;
    let locks_before = db.lock_stats();
    // Lock acquisitions observed across a read-only warmup window: the
    // read path pins a snapshot and takes a view page, no lock table at
    // all, so this delta stays zero and proves readers cannot wait.
    let rd_before = db.lock_stats();
    {
        let snap = db.snapshot();
        let page = view.page(0, 0, 20);
        for row in &page.rows {
            let _ = snap.open_arc(row.note_id);
        }
    }
    let rd_locks = {
        let after = db.lock_stats();
        (after.shared_acquired - rd_before.shared_acquired)
            + (after.exclusive_acquired - rd_before.exclusive_acquired)
    };

    let t0 = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let db = db.clone();
            let view = view.clone();
            let ids = ids.to_vec();
            std::thread::spawn(move || {
                let mut rng = (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                for _ in 0..per_worker {
                    if xorshift(&mut rng) % 100 < read_pct {
                        let t = Instant::now();
                        let snap = db.snapshot();
                        let start = (xorshift(&mut rng) as usize) % ids.len().max(1);
                        let page = view.page(0, start, 20);
                        for row in &page.rows {
                            // Rows read from the pinned snapshot; a row
                            // not visible at this seq is simply skipped.
                            let _ = snap.open_arc(row.note_id);
                        }
                        reads.push(t.elapsed().as_micros() as u64);
                    } else {
                        let t = Instant::now();
                        let id = ids[(xorshift(&mut rng) as usize) % ids.len()];
                        loop {
                            let mut n = db.open_note(id).expect("open");
                            let c = n
                                .get("Counter")
                                .and_then(|v| v.as_number().ok())
                                .unwrap_or(0.0);
                            n.set("Counter", Value::Number(c + 1.0));
                            match db.save(&mut n) {
                                Ok(()) => break,
                                Err(e) if e.kind() == "update_conflict" => continue,
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        writes.push(t.elapsed().as_micros() as u64);
                    }
                }
                (reads, writes)
            })
        })
        .collect();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for h in handles {
        let (r, w) = h.join().expect("worker");
        reads.extend(r);
        writes.extend(w);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let locks_after = db.lock_stats();
    MixResult {
        ops: per_worker * workers,
        elapsed_s,
        rd_p99_us: p99(&mut reads),
        wr_p99_us: p99(&mut writes),
        lock_waits: locks_after.waits - locks_before.waits,
        rd_locks,
    }
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e16",
        "Table 10",
        "Concurrency: ops/s and p99 vs workers x mix x lock table",
        "Snapshot readers take zero locks (rd_locks = 0 in every row), so \
         read p99 stays flat as writer pressure grows; the per-note lock \
         table lets disjoint writers proceed while the global-lock \
         configuration funnels every commit through one key",
    )
    .columns(&[
        "mix_r/w",
        "workers",
        "locks",
        "ops",
        "ops_per_s",
        "rd_p99_us",
        "wr_p99_us",
        "lk_waits",
        "rd_locks",
    ]);

    let docs = scale.pick(32, 96);
    let total_ops = scale.pick(240, 2_400);

    for (mix_label, read_pct) in [("90/10", 90u64), ("50/50", 50), ("10/90", 10)] {
        for workers in [1usize, 2, 4, 8, 16] {
            for (lock_label, lock_on) in [("note", true), ("global", false)] {
                let (db, view, ids) = fixture(docs, lock_on);
                let r = storm(&db, &view, &ids, workers, total_ops, read_pct);
                table.row(vec![
                    mix_label.to_string(),
                    workers.to_string(),
                    lock_label.to_string(),
                    fmt(r.ops as f64),
                    fmt(r.ops as f64 / r.elapsed_s),
                    fmt(r.rd_p99_us as f64),
                    fmt(r.wr_p99_us as f64),
                    fmt(r.lock_waits as f64),
                    fmt(r.rd_locks as f64),
                ]);
            }
        }
    }
    table.takeaway(
        "rd_locks is 0 in every configuration: the read path pins a \
         snapshot and never touches the lock table, so readers never wait \
         on the writer lock regardless of mix or worker count. On this \
         single-core container every thread time-slices one CPU, so \
         writer overlap cannot convert into parallel speedup (note vs \
         global ops/s track each other) and the occasional multi-ms read \
         p99 at high worker counts is scheduler preemption, not locking — \
         a reader holding zero locks has nothing to wait on. The lock \
         table's effect shows in lk_waits: the global key queues commits \
         behind every other commit, while per-note locking waits only on \
         genuine same-note collisions",
    );
    table
}
