//! E17 — Merkle digest negotiation vs full-enumeration replication.
//!
//! A pull with no usable history (cold start, cleared history, or the
//! simulator's full-compare ad-hoc passes) used to enumerate *every*
//! candidate on the source and re-ship a header per note just to discover
//! almost all of them already converged. Digest negotiation diffs the two
//! replicas' Merkle summaries first — root (16 B), then bucket digests,
//! then entries of differing buckets — so the source enumerates only
//! notes whose head hashes actually differ. This experiment converges a
//! network, touches a handful of documents, and measures what the next
//! convergence costs in bytes and candidates, negotiated vs full
//! enumeration, across topologies and drop rates.

use domino_core::Note;
use domino_net::{LinkSpec, Network, Topology};
use domino_replica::{ReplicationOptions, RetryPolicy};
use domino_types::{LogicalClock, Result, Unid, Value};

use crate::table::{fmt, Table};
use crate::Scale;

/// Rounds allowed before a configuration is declared non-convergent.
const ROUND_CAP: usize = 300;

/// What one incremental convergence cost.
struct Arm {
    rounds: usize,
    bytes: u64,
    candidates: u64,
    negotiation_bytes: u64,
}

/// Seed `docs` documents on server 0, converge, touch `touched` of them,
/// then measure the traffic and candidate volume of converging again.
fn measure(
    topology: Topology,
    drop: f64,
    negotiate: bool,
    n: usize,
    docs: usize,
    touched: usize,
) -> Result<Arm> {
    let mut net = Network::new(
        n,
        topology,
        LinkSpec::default().with_drop_rate(drop),
        LogicalClock::new(),
    );
    net.set_fault_seed(0xE17 ^ (drop * 100.0) as u64);
    net.set_retry_policy(RetryPolicy::standard());
    net.create_replica_set("d")?;
    net.set_adhoc_options(ReplicationOptions {
        use_history: false,
        negotiate,
        ..ReplicationOptions::default()
    });

    let mut unids: Vec<Unid> = Vec::new();
    {
        let db = net.db(0, "d")?;
        for i in 0..docs {
            let mut note = Note::document("Doc");
            note.set("Payload", Value::text(format!("v0 doc {i}")));
            db.save(&mut note)?;
            unids.push(note.unid());
        }
    }
    net.run_until_converged("d", ROUND_CAP)?;

    // Steady state reached; touch a sliver of the corpus.
    {
        let db = net.db(0, "d")?;
        for unid in unids.iter().take(touched) {
            let mut note = db.open_by_unid(*unid)?;
            note.set("Payload", Value::text("touched"));
            db.save(&mut note)?;
        }
    }

    let base_bytes = net.total_traffic().bytes;
    let mut arm = Arm {
        rounds: 0,
        bytes: 0,
        candidates: 0,
        negotiation_bytes: 0,
    };
    while !net.converged("d")? {
        assert!(
            arm.rounds < ROUND_CAP,
            "{} drop {drop} negotiate {negotiate} did not converge",
            topology.name()
        );
        for report in net.replicate_all_links("d")? {
            arm.candidates += report.candidates;
            arm.negotiation_bytes += report.negotiation_bytes;
        }
        arm.rounds += 1;
    }
    arm.bytes = net.total_traffic().bytes - base_bytes;
    Ok(arm)
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e17",
        "Figure 10",
        "Digest negotiation: incremental convergence cost vs full enumeration",
        "Replicas exchange Merkle root/bucket digests before enumerating, so \
         a steady-state pass examines O(changed) notes instead of the whole \
         database — the win the paper's incremental replication history \
         provides, without needing any per-peer history at all",
    )
    .columns(&[
        "topology",
        "drop_pct",
        "mode",
        "rounds",
        "bytes",
        "candidates",
        "negotiation bytes",
    ]);

    let n = scale.pick(4, 6);
    let docs = scale.pick(60, 160);
    let touched = scale.pick(3, 6);

    for topology in [Topology::Mesh, Topology::HubSpoke, Topology::Chain] {
        for drop in [0.0, 0.10] {
            let digest = measure(topology, drop, true, n, docs, touched).expect("negotiated arm");
            let full = measure(topology, drop, false, n, docs, touched).expect("baseline arm");
            for (label, arm) in [("digest", &digest), ("full-enum", &full)] {
                table.row(vec![
                    topology.name().to_string(),
                    fmt(drop * 100.0),
                    label.to_string(),
                    fmt(arm.rounds as f64),
                    fmt(arm.bytes as f64),
                    fmt(arm.candidates as f64),
                    fmt(arm.negotiation_bytes as f64),
                ]);
            }
            // The acceptance bar: negotiation must ship strictly fewer
            // bytes and examine strictly fewer candidates than full
            // enumeration on mesh and hub-spoke, and never regress on
            // chain.
            if matches!(topology, Topology::Mesh | Topology::HubSpoke) {
                assert!(
                    digest.bytes < full.bytes,
                    "{}: negotiated bytes {} !< full {}",
                    topology.name(),
                    digest.bytes,
                    full.bytes
                );
                assert!(
                    digest.candidates < full.candidates,
                    "{}: negotiated candidates {} !< full {}",
                    topology.name(),
                    digest.candidates,
                    full.candidates
                );
            } else {
                assert!(
                    digest.bytes <= full.bytes && digest.candidates <= full.candidates,
                    "{}: negotiation regressed ({} vs {} bytes, {} vs {} candidates)",
                    topology.name(),
                    digest.bytes,
                    full.bytes,
                    digest.candidates,
                    full.candidates
                );
            }
        }
    }
    table.takeaway(
        "bytes saved scale with the converged fraction of the database: a \
         steady-state link settles for a 16-byte root exchange where full \
         enumeration re-examines every note every round, and under loss the \
         frozen negotiated set lets resumed passes skip re-negotiation — \
         O(changed) replication with no reliance on per-peer history",
    );
    table
}
