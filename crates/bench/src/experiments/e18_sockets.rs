//! E18 — real sockets: requests/second and tail latency as keep-alive
//! connection count grows from tens to thousands on loopback, the
//! per-request overhead a TCP round-trip adds over the in-process front
//! door, and the wire cost of one replication `Deliver`/`Ack` exchange.
//!
//! The listener is thread-per-connection with a fixed in-flight degree
//! (8 driver threads multiplex the open connections round-robin), so
//! what this sweep isolates is the cost of *open but mostly idle*
//! keep-alive connections — the population a Domino server carries all
//! day — not raw parallelism. The `inproc` row calls
//! `DominoServer::serve` directly from the same 8 drivers; the
//! difference against the socket rows is the full network-stack tax:
//! syscalls, HTTP parse, response serialization, and loopback TCP.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use domino_core::{Database, DbConfig, Note};
use domino_netio::{base64_encode, HttpConfig, HttpListener, ReplicaListener, SocketTransport};
use domino_replica::{CleanTransport, Transport};
use domino_security::{AccessLevel, Acl, AclEntry};
use domino_server::{DominoServer, Request, ServerConfig};
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_views::{ColumnSpec, SortDir, ViewDesign};

use crate::table::{fmt, Table};
use crate::Scale;

/// Driver threads (the in-flight request degree, every mode).
const DRIVERS: usize = 8;

fn site(docs: usize) -> DominoServer {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("E18", ReplicaId(0xE18), ReplicaId(1)),
            LogicalClock::new(),
        )
        .expect("open db"),
    );
    let mut acl = Acl::new(AccessLevel::NoAccess);
    acl.set("alice", AclEntry::new(AccessLevel::Editor));
    db.set_acl(&acl).expect("acl");
    for i in 0..docs {
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text(format!("topic {i:04}")));
        db.save(&mut n).expect("save");
    }
    let server = DominoServer::new(ServerConfig {
        workers: 4,
        queue_bound: 64,
        cache_capacity: 256,
    });
    server.register_database("disc", &db).expect("register");
    let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#).expect("design");
    design.columns = vec![ColumnSpec::new("Subject", "Subject")
        .expect("col")
        .sorted(SortDir::Ascending)];
    server.add_view("disc", design).expect("view");
    server.register_user("alice", "pw");
    server
}

/// Read one HTTP response (head + `Content-Length` body) off `conn`.
fn read_response(conn: &mut TcpStream, scratch: &mut Vec<u8>) {
    scratch.clear();
    let mut buf = [0u8; 4096];
    let (head_end, body_len) = loop {
        let n = conn.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed mid-response");
        scratch.extend_from_slice(&buf[..n]);
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&scratch[..pos]).expect("head utf8");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            let len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse::<usize>().ok())
                .expect("Content-Length");
            break (pos + 4, len);
        }
    };
    while scratch.len() < head_end + body_len {
        let n = conn.read(&mut buf).expect("read body");
        assert!(n > 0, "server closed mid-body");
        scratch.extend_from_slice(&buf[..n]);
    }
}

/// Merge per-driver latency samples and report (mean, p50, p99) in µs.
fn stats(mut micros: Vec<u64>) -> (f64, u64, u64) {
    micros.sort_unstable();
    let mean = micros.iter().sum::<u64>() as f64 / micros.len().max(1) as f64;
    let p = |q: f64| micros[((micros.len() - 1) as f64 * q) as usize];
    (mean, p(0.50), p(0.99))
}

/// Drive `reqs` requests through `conns` keep-alive sockets (round-robin
/// from [`DRIVERS`] threads) and return client-side latency samples plus
/// the elapsed wall time.
fn socket_storm(addr: &str, auth: &str, conns: usize, reqs: usize) -> (Vec<u64>, f64) {
    let request = format!(
        "GET /disc.nsf/topics?OpenView&Count=5 HTTP/1.1\r\nAuthorization: Basic {auth}\r\n\r\n"
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let addr = addr.to_string();
            let request = request.clone();
            let own = conns / DRIVERS + usize::from(d < conns % DRIVERS);
            let per_driver = reqs / DRIVERS;
            std::thread::spawn(move || {
                let mut sockets: Vec<TcpStream> = (0..own.max(1))
                    .map(|_| {
                        let s = TcpStream::connect(&addr).expect("connect");
                        s.set_nodelay(true).expect("nodelay");
                        s
                    })
                    .collect();
                let mut scratch = Vec::new();
                let mut samples = Vec::with_capacity(per_driver);
                for i in 0..per_driver {
                    let slot = i % sockets.len();
                    let conn = &mut sockets[slot];
                    let t = Instant::now();
                    conn.write_all(request.as_bytes()).expect("write");
                    read_response(conn, &mut scratch);
                    samples.push(t.elapsed().as_micros() as u64);
                }
                samples
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("driver"));
    }
    (all, t0.elapsed().as_secs_f64())
}

/// The same storm through the in-process front door (no sockets).
fn inproc_storm(server: &DominoServer, reqs: usize) -> (Vec<u64>, f64) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..DRIVERS)
        .map(|_| {
            let server = server.clone();
            let per_driver = reqs / DRIVERS;
            std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(per_driver);
                for _ in 0..per_driver {
                    let req =
                        Request::get("/disc.nsf/topics?OpenView&Count=5").as_user("alice", "pw");
                    let t = Instant::now();
                    let resp = server.serve(req);
                    assert_eq!(resp.status.code(), 200, "{}", resp.body);
                    samples.push(t.elapsed().as_micros() as u64);
                }
                samples
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("driver"));
    }
    (all, t0.elapsed().as_secs_f64())
}

/// Mean µs per `Transport::deliver` round-trip over `n` deliveries.
fn deliver_us(transport: &mut dyn Transport, n: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..n {
        transport.deliver(16).expect("deliver");
    }
    t0.elapsed().as_secs_f64() * 1e6 / n as f64
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e18",
        "Table 12",
        "Real sockets: req/s and tail latency vs keep-alive connections",
        "Per-request latency stays bounded as keep-alive connections grow \
         ~100x, but aggregate req/s collapses once thousands of idle \
         connection threads share the core — the measured cost of \
         thread-per-connection at scale; a TCP round-trip adds a bounded \
         per-request tax over the in-process front door, and one \
         replication Deliver/Ack wire exchange costs single-digit \
         microseconds",
    )
    .columns(&[
        "mode",
        "conns",
        "reqs",
        "req_per_s",
        "mean_us",
        "p50_us",
        "p99_us",
    ]);

    let docs = scale.pick(40, 80);
    let reqs = scale.pick(1_600, 8_000);
    let server = site(docs);

    // Baseline: the same storm with no socket in the path.
    let (samples, elapsed) = inproc_storm(&server, reqs);
    let (mean, p50, p99) = stats(samples);
    table.row(vec![
        "inproc".into(),
        "-".into(),
        fmt(reqs as f64),
        fmt(reqs as f64 / elapsed),
        fmt(mean),
        fmt(p50 as f64),
        fmt(p99 as f64),
    ]);

    // Socket sweep: tens → thousands of keep-alive connections.
    let auth = base64_encode(b"alice:pw");
    let conn_counts: &[usize] = match scale {
        Scale::Quick => &[8, 64],
        Scale::Full => &[16, 128, 1024, 2048],
    };
    for &conns in conn_counts {
        let listener = HttpListener::start(
            server.clone(),
            HttpConfig {
                max_connections: conns + DRIVERS,
                idle_timeout: std::time::Duration::from_secs(60),
                ..HttpConfig::default()
            },
        )
        .expect("listener");
        let (samples, elapsed) = socket_storm(&listener.addr(), &auth, conns, reqs);
        let (mean, p50, p99) = stats(samples);
        table.row(vec![
            "socket".into(),
            conns.to_string(),
            fmt(reqs as f64),
            fmt(reqs as f64 / elapsed),
            fmt(mean),
            fmt(p50 as f64),
            fmt(p99 as f64),
        ]);
        let report = listener.drain(std::time::Duration::from_secs(30));
        assert_eq!(report.remaining, 0, "drain left connections behind");
    }

    // The replication wire: Deliver/Ack round-trips, socket vs in-process.
    let deliveries = scale.pick(400, 4_000);
    let wire = ReplicaListener::bind("127.0.0.1:0").expect("bind wire");
    let mut socket_t = SocketTransport::connect(&wire.addr());
    let socket_us = deliver_us(&mut socket_t, deliveries);
    let mut clean = CleanTransport;
    let clean_us = deliver_us(&mut clean, deliveries);
    for (mode, us) in [("wire-socket", socket_us), ("wire-inproc", clean_us)] {
        // An in-process deliver is a function call; round-trips/s only
        // means something when there was a round trip.
        let rate = if us < 0.01 {
            "-".to_string()
        } else {
            fmt(1e6 / us)
        };
        table.row(vec![
            mode.into(),
            "1".into(),
            fmt(deliveries as f64),
            rate,
            fmt(us),
            "-".into(),
            "-".into(),
        ]);
    }

    table.takeaway(
        "At tens-to-hundreds of connections req/s is set by the 8-driver \
         in-flight degree; at thousands, aggregate throughput collapses \
         while per-request latency stays flat — the poll-tick wakeups of \
         idle connection threads starve the drivers of the core, which is \
         exactly the argument for a reactor over thread-per-connection at \
         that population. The socket path adds a per-request tax over the \
         in-process front door (syscalls + parse + serialize + loopback \
         TCP), and one replication Deliver/Ack wire round-trip costs \
         single-digit microseconds where the in-process transport is a \
         function call",
    );
    table
}
