//! E1 (Table 1) — note-store CRUD throughput and the summary/non-summary
//! access-path distinction.

use std::time::Instant;

use rand::Rng;

use domino_types::Value;

use crate::table::{fmt, rate, Table};
use crate::workload::{make_db, populate, rng};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e1",
        "Table 1",
        "NSF note store: CRUD ops/s and summary vs full reads",
        "The note store supports efficient CRUD on semi-structured documents; \
         summary items give views cheap access without reading full notes",
    )
    .columns(&[
        "notes",
        "create/s",
        "read/s",
        "summary-read/s",
        "update/s",
        "delete/s",
        "pages(summary)",
        "pages(full)",
    ]);

    let sizes = match scale {
        Scale::Quick => vec![1_000, 5_000],
        Scale::Full => vec![1_000, 10_000, 100_000],
    };
    for n in sizes {
        let db = make_db("e1", 1, 1);
        let mut r = rng(0xE1);

        let t0 = Instant::now();
        let ids = populate(&db, &mut r, n, 8, 48, 8_192);
        let create = t0.elapsed();

        // Random-order full reads.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, r.random_range(0..=i));
        }
        let probe = n.min(2_000);
        let t0 = Instant::now();
        for i in order.iter().take(probe) {
            db.open_note(ids[*i]).expect("read");
        }
        let read = t0.elapsed();

        let t0 = Instant::now();
        for i in order.iter().take(probe) {
            db.open_summary(ids[*i]).expect("summary read");
        }
        let summary_read = t0.elapsed();

        let t0 = Instant::now();
        for i in order.iter().take(probe) {
            let mut doc = db.open_note(ids[*i]).expect("open");
            doc.set("F0", Value::text("updated"));
            db.save(&mut doc).expect("update");
        }
        let update = t0.elapsed();

        // Page accounting on one representative note.
        let pages_summary = db.pages_touched(ids[0], true).expect("pages");
        let pages_full = db.pages_touched(ids[0], false).expect("pages");

        let t0 = Instant::now();
        for i in order.iter().take(probe) {
            db.delete(ids[*i]).expect("delete");
        }
        let delete = t0.elapsed();

        table.row(vec![
            fmt(n as f64),
            rate(n, create),
            rate(probe, read),
            rate(probe, summary_read),
            rate(probe, update),
            rate(probe, delete),
            fmt(pages_summary as f64),
            fmt(pages_full as f64),
        ]);
    }
    table.takeaway(
        "summary reads touch ~1-2 pages regardless of body size and run several times \
         faster than full reads; throughput degrades gently (B-tree depth) as N grows",
    );
    table
}
