//! E2 (Table 2) — R5 transactional logging: commit-durability cost and
//! restart recovery vs the pre-R5 "fixup" full-database scan.

use std::sync::Arc;
use std::time::Instant;

use domino_core::{Database, DbConfig};
use domino_storage::{CommitMode, EngineConfig, MemDisk};
use domino_types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino_wal::MemLogStore;

use crate::table::{fmt, micros_per, rate, Table};
use crate::workload::{make_doc, rng};
use crate::Scale;

fn open_db(
    disk: MemDisk,
    log: Option<MemLogStore>,
    clock: LogicalClock,
    force: bool,
) -> Arc<Database> {
    let engine = EngineConfig {
        logging: log.is_some(),
        commit_mode: if force {
            CommitMode::Force
        } else {
            CommitMode::NoForce
        },
        ..EngineConfig::default()
    };
    let log_store: Option<Box<dyn domino_wal::LogStore>> = log.map(|l| {
        let b: Box<dyn domino_wal::LogStore> = Box::new(l);
        b
    });
    Arc::new(
        Database::open(
            Box::new(disk),
            log_store,
            DbConfig::new("e2", ReplicaId(1), ReplicaId(1)).with_engine(engine),
            clock,
        )
        .expect("open"),
    )
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e2",
        "Table 2",
        "Transactional logging: commit cost and restart recovery vs fixup",
        "R5's write-ahead log makes commits durable at modest cost and restart \
         recovery proportional to the log tail, replacing the R4 'fixup' scan of \
         the whole database",
    )
    .columns(&[
        "mode / db size",
        "commit ops/s",
        "recovery µs",
        "recovery records",
        "fixup µs (full scan)",
        "fixup/recovery",
    ]);

    // --- commit throughput by durability mode -------------------------
    let n_commit = scale.pick(2_000, 10_000);
    for (label, log, flush) in [
        ("log+force (durable)", Some(MemLogStore::new()), true),
        ("log, no force", Some(MemLogStore::new()), false),
        ("no log (pre-R5)", None, false),
    ] {
        let db = open_db(MemDisk::new(), log, LogicalClock::new(), flush);
        let mut r = rng(0xE2);
        let t0 = Instant::now();
        for _ in 0..n_commit {
            let mut d = make_doc(&mut r, 4, 32, 0);
            db.save(&mut d).expect("save");
        }
        let elapsed = t0.elapsed();
        table.row(vec![
            label.to_string(),
            rate(n_commit, elapsed),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }

    // --- recovery time vs database size (fixed update tail) -----------
    let sizes = match scale {
        Scale::Quick => vec![500, 2_000],
        Scale::Full => vec![1_000, 10_000, 50_000],
    };
    for n in sizes {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let clock = LogicalClock::new();
        let tail_updates = 200.min(n);
        {
            let db = open_db(disk.clone(), Some(log.clone()), clock.clone(), true);
            let mut r = rng(0xE2E2);
            let mut ids = Vec::new();
            for i in 0..n {
                let mut d = make_doc(&mut r, 6, 48, 0);
                db.save(&mut d).expect("save");
                ids.push(d.id);
                if i % 5000 == 4999 {
                    db.checkpoint().expect("checkpoint");
                }
            }
            // Checkpoint bounds restart work to the tail that follows.
            db.checkpoint().expect("checkpoint");
            for id in ids.iter().take(tail_updates) {
                let mut d = db.open_note(*id).expect("open");
                d.set("F0", Value::text("tail"));
                db.save(&mut d).expect("save");
            }
            log.crash(); // power cut
        }
        let t0 = Instant::now();
        let db = open_db(disk, Some(log), clock, true);
        let recovery = t0.elapsed();
        let stats = db.recovery_stats().expect("recovery ran");

        // Fixup: what a log-less server must do — scan and verify every
        // note in the file.
        let t0 = Instant::now();
        let ids = db.note_ids(Some(NoteClass::Document)).expect("ids");
        for id in &ids {
            db.open_note(*id).expect("fixup scan");
        }
        let fixup = t0.elapsed();

        let ratio = fixup.as_secs_f64() / recovery.as_secs_f64().max(1e-9);
        table.row(vec![
            format!("recovery @ {n} notes"),
            "-".into(),
            micros_per(1, recovery),
            fmt(stats.analyzed as f64),
            micros_per(1, fixup),
            fmt(ratio),
        ]);
    }
    table.takeaway(
        "durable commits cost a constant log-force; recovery time tracks the log tail \
         (flat in database size) while fixup grows linearly with the database — the \
         fixup/recovery ratio widens with N",
    );
    table
}
