//! E3 (Figure 1) — incremental view maintenance vs full rebuild.

use std::time::Instant;

use domino_core::ChangeEvent;
use domino_types::Value;
use domino_views::{ColumnSpec, SortDir, View, ViewDesign};

use crate::table::{fmt, micros_per, Table};
use crate::workload::{make_db, populate, rng};
use crate::Scale;

fn design() -> ViewDesign {
    ViewDesign::new("by-cat", r#"SELECT Form = "Doc""#)
        .expect("design")
        .column(
            ColumnSpec::new("Category", "Category")
                .expect("col")
                .categorized(),
        )
        .column(
            ColumnSpec::new("Priority", "Priority")
                .expect("col")
                .sorted(SortDir::Descending),
        )
        .column(
            ColumnSpec::new("F0", "F0")
                .expect("col")
                .sorted(SortDir::Ascending),
        )
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e3",
        "Figure 1",
        "View refresh cost: incremental vs full rebuild",
        "Views are maintained incrementally — refresh cost scales with the number \
         of changed documents, not database size",
    )
    .columns(&[
        "changed docs (of N)",
        "incremental ms",
        "rebuild ms",
        "speedup",
        "µs/changed-doc",
    ]);

    let n = scale.pick(3_000, 30_000);
    let db = make_db("e3", 1, 1);
    let mut r = rng(0xE3);
    let ids = populate(&db, &mut r, n, 6, 48, 0);

    // A view we keep in sync manually so each batch is timed in isolation.
    let view = View::detached(&db, design()).expect("view");
    view.rebuild().expect("initial build");

    // Capture change events as the edits happen.
    use parking_lot::Mutex;
    use std::sync::Arc;
    let captured: Arc<Mutex<Vec<ChangeEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = captured.clone();
    db.subscribe(Arc::new(move |e: &ChangeEvent| sink.lock().push(e.clone())));

    for frac_millis in [1usize, 10, 100, 500, 1000] {
        let k = (n * frac_millis / 1000).max(1);
        captured.lock().clear();
        for i in 0..k {
            let mut d = db.open_note(ids[i * (n / k).max(1) % n]).expect("open");
            d.set("F0", Value::text(format!("edit-{frac_millis}-{i}")));
            d.set("Priority", Value::Number((i % 5) as f64 + 1.0));
            db.save(&mut d).expect("save");
        }
        let events: Vec<ChangeEvent> = captured.lock().drain(..).collect();

        let t0 = Instant::now();
        for e in &events {
            view.apply(e).expect("apply");
        }
        let incremental = t0.elapsed();

        let fresh = View::detached(&db, design()).expect("view");
        let t0 = Instant::now();
        fresh.rebuild().expect("rebuild");
        let rebuild = t0.elapsed();

        assert_eq!(view.rows().len(), fresh.rows().len(), "index parity");

        table.row(vec![
            format!("{k} of {n} ({:.1}%)", frac_millis as f64 / 10.0),
            fmt(incremental.as_secs_f64() * 1e3),
            fmt(rebuild.as_secs_f64() * 1e3),
            fmt(rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9)),
            micros_per(k, incremental),
        ]);
    }
    table.takeaway(
        "incremental cost is linear in changed documents with a flat per-document \
         price; the rebuild costs the same regardless of change volume, so the \
         speedup is ~N/k until the change fraction approaches the whole database",
    );
    table
}
