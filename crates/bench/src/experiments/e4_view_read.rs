//! E4 (Figure 2) — categorized view navigation and rollups vs raw scans.

use std::time::Instant;

use domino_types::Value;
use domino_views::{ColumnSpec, SortDir, View, ViewDesign};

use crate::table::{fmt, micros_per, Table};
use crate::workload::{make_db, populate, rng};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e4",
        "Figure 2",
        "View reads: category navigation and totals vs document scans",
        "Categorized views give positioned (logarithmic) navigation and cheap \
         category totals, vs re-scanning documents per query",
    )
    .columns(&[
        "N docs",
        "doc-scan µs",
        "view-scan µs",
        "category-range µs",
        "rollup µs",
        "scan/range ratio",
    ]);

    let sizes = match scale {
        Scale::Quick => vec![1_000, 5_000],
        Scale::Full => vec![2_000, 10_000, 50_000],
    };
    for n in sizes {
        let db = make_db("e4", 1, 1);
        let mut r = rng(0xE4);
        populate(&db, &mut r, n, 4, 32, 0);
        let view = View::attach(
            &db,
            ViewDesign::new("v", r#"SELECT Form = "Doc""#)
                .expect("design")
                .column(
                    ColumnSpec::new("Category", "Category")
                        .expect("c")
                        .categorized(),
                )
                .column(
                    ColumnSpec::new("Priority", "Priority")
                        .expect("c")
                        .sorted(SortDir::Ascending)
                        .totaled(),
                ),
        )
        .expect("view");

        // Query: "all docs in cat3" answered three ways.
        let reps = 20;

        // 1. Scan every document, evaluating the predicate per doc.
        let f = domino_formula::Formula::compile(r#"SELECT Category = "cat3""#).expect("f");
        let t0 = Instant::now();
        let mut scan_hits = 0;
        for _ in 0..reps {
            scan_hits = db.search(&f, &Default::default()).expect("search").len();
        }
        let doc_scan = t0.elapsed();

        // 2. Scan the view's entries (summary data already computed).
        let t0 = Instant::now();
        let mut view_hits = 0;
        for _ in 0..reps {
            view_hits = view
                .rows()
                .iter()
                .filter(|e| e.values[0].to_text() == "cat3")
                .count();
        }
        let view_scan = t0.elapsed();

        // 3. Positioned range read on the collation prefix.
        let t0 = Instant::now();
        let mut range_hits = 0;
        for _ in 0..reps {
            range_hits = view.rows_by_prefix(0, &[Value::text("cat3")]).len();
        }
        let range = t0.elapsed();
        assert_eq!(scan_hits, view_hits);
        assert_eq!(scan_hits, range_hits);

        // 4. Full category rollup with totals (one ordered pass).
        let t0 = Instant::now();
        let mut cats = 0;
        for _ in 0..reps {
            cats = view.categories().len();
        }
        let rollup = t0.elapsed();
        assert!(cats > 0);

        table.row(vec![
            fmt(n as f64),
            micros_per(reps, doc_scan),
            micros_per(reps, view_scan),
            micros_per(reps, range),
            micros_per(reps, rollup),
            fmt(doc_scan.as_secs_f64() / range.as_secs_f64().max(1e-9)),
        ]);
    }
    table.takeaway(
        "the positioned category range is orders of magnitude cheaper than \
         re-scanning documents and cheaper than scanning the whole view; rollups \
         cost one ordered pass over the index with no document fetches",
    );
    table
}
