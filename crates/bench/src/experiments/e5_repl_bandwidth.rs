//! E5 (Table 3) — document-level (R3) vs field-level (R4) replication
//! bandwidth.
//!
//! Two destination replicas are brought to the same pre-change state; the
//! same change set is then pulled into one with field-level accounting and
//! into the other whole-document, so the byte counts are directly
//! comparable.

use domino_replica::{ReplicationOptions, Replicator};
use domino_types::Value;

use crate::table::{fmt, Table};
use crate::workload::{make_db, populate, rng};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e5",
        "Table 3",
        "Replication bandwidth: whole documents (R3) vs changed fields (R4)",
        "Field-level replication cuts transfer volume roughly in proportion to \
         the fraction of fields changed",
    )
    .columns(&[
        "fields changed",
        "doc-level bytes",
        "field-level bytes",
        "ratio",
        "items shipped (field)",
        "items shipped (doc)",
    ]);

    let n = scale.pick(300, 2_000);
    let fields = 20;
    let changed_docs_frac = 5; // one in five documents touched

    for changed_fields in [1usize, 5, 10, 20] {
        let a = make_db("e5", 5, 1);
        let b_field = make_db("e5", 5, 2);
        let b_doc = make_db("e5", 5, 3);
        let mut r = rng(0xE5);
        let ids = populate(&a, &mut r, n, fields, 120, 0);

        let mut repl_field = Replicator::new(ReplicationOptions {
            field_level: true,
            ..Default::default()
        });
        let mut repl_doc = Replicator::new(ReplicationOptions {
            field_level: false,
            ..Default::default()
        });
        repl_field.pull(&b_field, &a).expect("pre-sync field");
        repl_doc.pull(&b_doc, &a).expect("pre-sync doc");

        // Touch `changed_fields` fields of every 5th document.
        for (i, id) in ids.iter().enumerate() {
            if i % changed_docs_frac != 0 {
                continue;
            }
            let mut d = a.open_note(*id).expect("open");
            for f in 0..changed_fields {
                d.set(&format!("F{f}"), Value::text(format!("v2-{i}-{f}")));
            }
            a.save(&mut d).expect("save");
        }

        let field_rep = repl_field.pull(&b_field, &a).expect("field pull");
        let doc_rep = repl_doc.pull(&b_doc, &a).expect("doc pull");
        assert_eq!(field_rep.updated, doc_rep.updated, "same change set");

        table.row(vec![
            format!("{changed_fields} of {fields}"),
            fmt(doc_rep.bytes_shipped as f64),
            fmt(field_rep.bytes_shipped as f64),
            fmt(doc_rep.bytes_shipped as f64 / field_rep.bytes_shipped.max(1) as f64),
            fmt(field_rep.items_shipped as f64),
            fmt(doc_rep.items_shipped as f64),
        ]);
    }
    table.takeaway(
        "field-level transfer approaches doc-level as the changed fraction \
         approaches all fields; at 1-of-20 fields it ships a small fraction of \
         the bytes (plus a fixed per-item digest overhead)",
    );
    table
}
