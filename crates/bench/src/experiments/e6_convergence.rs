//! E6 (Figure 3) — replication convergence: rounds, transfers, and bytes
//! by topology and replica count.

use domino_net::{LinkSpec, Network, Topology};
use domino_types::{LogicalClock, Value};

use crate::table::{fmt, Table};
use crate::workload::rng;
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e6",
        "Figure 3",
        "Epidemic convergence: rounds/messages/bytes by topology",
        "Pairwise scheduled replication converges everywhere; the topology sets \
         the trade-off between rounds-to-converge (diameter) and per-round \
         bandwidth (link count)",
    )
    .columns(&[
        "topology",
        "replicas",
        "diameter",
        "rounds",
        "transfers",
        "bytes",
    ]);

    let replica_counts = match scale {
        Scale::Quick => vec![4, 8],
        Scale::Full => vec![4, 8, 16],
    };
    let updates = scale.pick(20, 60);

    for &n in &replica_counts {
        for topology in Topology::ALL {
            let mut net = Network::new(n, topology, LinkSpec::default(), LogicalClock::new());
            net.create_replica_set("d").expect("replica set");
            let mut r = rng(0xE6 + n as u64);
            use rand::Rng;
            // Seed updates on random replicas (worst-case-ish spread).
            for u in 0..updates {
                let server = r.random_range(0..n);
                let db = net.db(server, "d").expect("db");
                let mut note = domino_core::Note::document("Doc");
                note.set("Payload", Value::text(format!("u{u}")));
                db.save(&mut note).expect("save");
            }
            let rounds = net
                .run_until_converged("d", 4 * n + 8)
                .expect("convergence");
            let traffic = net.total_traffic();
            table.row(vec![
                topology.name().to_string(),
                fmt(n as f64),
                fmt(topology.diameter(n) as f64),
                fmt(rounds as f64),
                fmt(traffic.transfers as f64),
                fmt(traffic.bytes as f64),
            ]);
        }
    }
    table.takeaway(
        "mesh converges in ~1 round but pays O(n²) transfers; hub-spoke takes ~2 \
         rounds at O(n) transfers; ring/chain rounds grow with the diameter — \
         exactly the administrator trade-off the tutorial describes",
    );
    table
}
