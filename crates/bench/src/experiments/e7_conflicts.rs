//! E7 (Table 4) — update conflicts: detection rate and zero lost updates.

use domino_replica::{ReplicationOptions, Replicator};
use domino_types::{NoteClass, Value};
use rand::Rng;

use crate::table::{fmt, Table};
use crate::workload::{make_db, populate, rng};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e7",
        "Table 4",
        "Concurrent updates become $Conflict documents; none are lost",
        "Replication never silently discards an update: concurrent edits of the \
         same document surface as conflict documents (or merge field-wise when \
         edits touch disjoint fields)",
    )
    .columns(&[
        "p(both edit)",
        "merge option",
        "docs",
        "conflict docs",
        "merged",
        "updates preserved",
        "lost",
    ]);

    let n = scale.pick(200, 1_000);
    for p_conflict in [0.0f64, 0.1, 0.3, 0.6] {
        for merge in [false, true] {
            let a = make_db("e7", 7, 1);
            let b = make_db("e7", 7, 2);
            let mut r = rng((p_conflict * 100.0) as u64 + merge as u64);
            let ids = populate(&a, &mut r, n, 6, 40, 0);
            let mut repl = Replicator::new(ReplicationOptions {
                merge_conflicts: merge,
                ..Default::default()
            });
            repl.sync(&a, &b).expect("pre-sync");

            // Each doc: edited on a; with probability p also edited on b.
            // With merge on, the b-side edit touches a DIFFERENT field half
            // the time (mergeable) and the same field otherwise.
            let mut expect_payloads: Vec<String> = Vec::new();
            let mut both_edited = 0u64;
            for (i, id) in ids.iter().enumerate() {
                let mut da = a.open_note(*id).expect("open a");
                let pa = format!("a-{i}");
                da.set("F0", Value::text(pa.clone()));
                a.save(&mut da).expect("save a");
                expect_payloads.push(pa);
                if r.random_bool(p_conflict) {
                    both_edited += 1;
                    let unid = da.unid();
                    let mut dbn = b.open_by_unid(unid).expect("open b");
                    let pb = format!("b-{i}");
                    if merge && r.random_bool(0.5) {
                        dbn.set("F1", Value::text(pb.clone()));
                    } else {
                        dbn.set("F0", Value::text(pb.clone()));
                    }
                    b.save(&mut dbn).expect("save b");
                    expect_payloads.push(pb);
                }
            }
            // Replicate until quiescent.
            for _ in 0..4 {
                let (x, y) = repl.sync(&a, &b).expect("sync");
                if !x.changed_anything() && !y.changed_anything() {
                    break;
                }
            }

            // Collect every payload string present anywhere on replica a.
            let mut present: Vec<String> = Vec::new();
            let mut conflict_docs = 0u64;
            for id in a.note_ids(Some(NoteClass::Document)).expect("ids") {
                let note = a.open_note(id).expect("open");
                if note.is_conflict() {
                    conflict_docs += 1;
                }
                for field in ["F0", "F1"] {
                    if let Some(v) = note.get(field) {
                        present.push(v.to_text());
                    }
                }
            }
            let lost = expect_payloads
                .iter()
                .filter(|p| !present.contains(p))
                .count();
            let merged_docs = a.document_count().expect("count") as u64 - n as u64 - conflict_docs; // extra docs are all conflicts; merged add none
            let _ = merged_docs;
            table.row(vec![
                fmt(p_conflict),
                if merge { "merge" } else { "conflict-doc" }.to_string(),
                fmt(n as f64),
                fmt(conflict_docs as f64),
                fmt((both_edited - conflict_docs) as f64),
                format!("{}/{}", expect_payloads.len() - lost, expect_payloads.len()),
                fmt(lost as f64),
            ]);
            assert_eq!(lost, 0, "an update was silently lost");
        }
    }
    table.takeaway(
        "conflict documents appear in proportion to the concurrent-edit rate; with \
         merging enabled, disjoint-field edits merge instead; the 'lost' column is \
         zero everywhere — the no-lost-updates guarantee",
    );
    table
}
