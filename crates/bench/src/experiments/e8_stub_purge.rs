//! E8 (Table 5) — deletion stubs, the purge interval, and the resurrection
//! anomaly.
//!
//! Scenario per trial: replica A deletes a document. Replica C last
//! replicated *before* the deletion and comes back online only after
//! `offline_ticks`. If A purges its stubs before C returns, A can no
//! longer refute C's live copy and the deleted document resurrects.

use std::sync::Arc;

use domino_core::{Database, DbConfig, Note};
use domino_replica::{ReplicationOptions, Replicator};
use domino_types::{LogicalClock, ReplicaId, Value};

use crate::table::{fmt, Table};
use crate::Scale;

fn trial(purge_interval: u64, offline_ticks: u64) -> (bool, usize) {
    let clock = LogicalClock::new();
    let a = Arc::new(
        Database::open_in_memory(
            DbConfig::new("e8", ReplicaId(8), ReplicaId(1)).with_purge_interval(purge_interval),
            clock.clone(),
        )
        .expect("open"),
    );
    let c = Arc::new(
        Database::open_in_memory(
            DbConfig::new("e8", ReplicaId(8), ReplicaId(2)).with_purge_interval(purge_interval),
            clock.clone(),
        )
        .expect("open"),
    );
    let mut repl = Replicator::new(ReplicationOptions::default());

    let mut doc = Note::document("Doc");
    doc.set("Subject", Value::text("to be deleted"));
    a.save(&mut doc).expect("save");
    repl.sync(&a, &c).expect("sync"); // C holds a live copy

    a.delete(a.id_of_unid(doc.unid()).expect("id").expect("bound"))
        .expect("delete");

    // C is offline for `offline_ticks`; A purges on its schedule.
    clock.advance(offline_ticks);
    let purged = a.purge_stubs().expect("purge");

    // C returns and replicates.
    repl.sync(&a, &c).expect("sync");
    repl.sync(&a, &c).expect("sync");
    let resurrected = a.open_by_unid(doc.unid()).is_ok();
    (resurrected, purged)
}

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e8",
        "Table 5",
        "Deletion stubs and the purge-interval anomaly",
        "Deletions propagate via stubs; purging stubs sooner than the slowest \
         replica replicates resurrects deleted documents — the administrator \
         trap the tutorial warns about",
    )
    .columns(&[
        "purge interval (ticks)",
        "replica offline (ticks)",
        "stub purged before return",
        "document resurrected",
    ]);
    let _ = scale;

    for (purge, offline) in [
        (10_000u64, 1_000u64), // healthy: purge ≫ replication gap
        (10_000, 5_000),
        (10_000, 20_000), // straggler outlives the stub
        (2_000, 5_000),
        (50_000, 20_000),
    ] {
        let (resurrected, purged) = trial(purge, offline);
        let expected_anomaly = offline > purge;
        assert_eq!(
            resurrected, expected_anomaly,
            "anomaly occurs exactly when the replica outlives the purge interval"
        );
        table.row(vec![
            fmt(purge as f64),
            fmt(offline as f64),
            if purged > 0 { "yes" } else { "no" }.to_string(),
            if resurrected { "YES (anomaly)" } else { "no" }.to_string(),
        ]);
    }
    table.takeaway(
        "resurrection happens exactly when the offline window exceeds the purge \
         interval; with purge ≫ replication interval, deletions stay deleted",
    );
    table
}
