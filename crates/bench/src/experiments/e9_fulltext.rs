//! E9 (Figure 4) — full-text index: build throughput, query latency by
//! class, incremental maintenance.

use std::time::Instant;

use domino_ftindex::FtIndex;
use domino_types::Value;

use crate::table::{fmt, micros_per, rate, Table};
use crate::workload::{make_db, populate, rng, text};
use crate::Scale;

pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "e9",
        "Figure 4",
        "Full-text index: build rate, query latency, incremental updates",
        "A per-database inverted index gives interactive word/boolean/phrase \
         search and updates incrementally as documents change",
    )
    .columns(&[
        "corpus docs",
        "build docs/s",
        "word µs",
        "AND µs",
        "OR µs",
        "phrase µs",
        "reindex-1-doc µs",
        "terms",
    ]);

    let sizes = match scale {
        Scale::Quick => vec![500, 2_000],
        Scale::Full => vec![1_000, 10_000, 50_000],
    };
    for n in sizes {
        let db = make_db("e9", 9, 1);
        let mut r = rng(0xE9);
        let ids = populate(&db, &mut r, n, 3, 200, 0);

        let ft = FtIndex::detached();
        let t0 = Instant::now();
        ft.rebuild(&db).expect("build");
        let build = t0.elapsed();

        let reps = 200;
        let time_query = |q: &str| {
            let t0 = Instant::now();
            let mut hits = 0;
            for _ in 0..reps {
                hits = ft.search(q).expect("search").len();
            }
            (t0.elapsed(), hits)
        };
        let (word, wh) = time_query("storage");
        let (and, ah) = time_query("storage AND network");
        let (or, oh) = time_query("storage OR network");
        let (phrase, _ph) = time_query("\"project review\"");
        assert!(wh > 0 && ah <= oh, "sane result sizes");

        // Incremental: re-index one changed document.
        let t0 = Instant::now();
        let reindex_reps = 50;
        for i in 0..reindex_reps {
            let mut d = db.open_note(ids[i % ids.len()]).expect("open");
            d.set("F0", Value::text(text(&mut r, 20)));
            ft.index_note(&d);
        }
        let reindex = t0.elapsed();

        table.row(vec![
            fmt(n as f64),
            rate(n, build),
            micros_per(reps, word),
            micros_per(reps, and),
            micros_per(reps, or),
            micros_per(reps, phrase),
            micros_per(reindex_reps, reindex),
            fmt(ft.stats().terms as f64),
        ]);
    }
    table.takeaway(
        "query latency grows with posting-list length (sublinearly vs corpus \
         size thanks to intersection ordering); incremental re-index of one \
         document is microseconds — independent of corpus size",
    );
    table
}
