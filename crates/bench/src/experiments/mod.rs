//! One module per experiment. Each exposes `run(scale) -> Table`.

pub mod a1_buffer_pool;
pub mod a2_lineage;
pub mod a3_checkpoint;
pub mod e10_formula;
pub mod e11_security;
pub mod e12_cluster;
pub mod e13_mail;
pub mod e14_loss_convergence;
pub mod e15_http;
pub mod e16_concurrency;
pub mod e17_negotiation;
pub mod e18_sockets;
pub mod e1_nsf_crud;
pub mod e2_wal_recovery;
pub mod e3_view_maintenance;
pub mod e4_view_read;
pub mod e5_repl_bandwidth;
pub mod e6_convergence;
pub mod e7_conflicts;
pub mod e8_stub_purge;
pub mod e9_fulltext;
