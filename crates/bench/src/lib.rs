//! The experiment harness: workload generators, measurement helpers, and
//! one module per experiment (E1–E13) regenerating the tables and figures
//! catalogued in DESIGN.md §4 and recorded in EXPERIMENTS.md.
//!
//! The `report` binary drives everything:
//!
//! ```text
//! cargo run -p domino-bench --release --bin report -- all
//! cargo run -p domino-bench --release --bin report -- e3 e5 --quick
//! ```

pub mod experiments;
pub mod table;
pub mod workload;

pub use table::Table;

/// One registered experiment: id + entry point.
pub type Experiment = (&'static str, fn(Scale) -> Table);

/// Experiment scale: `--quick` shrinks datasets so the whole suite runs in
/// seconds; full scale is what EXPERIMENTS.md records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    /// Pick a size by scale.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Every experiment, in id order.
pub fn all_experiments(scale: Scale) -> Vec<Experiment> {
    let _ = scale;
    vec![
        ("e1", experiments::e1_nsf_crud::run as fn(Scale) -> Table),
        ("e2", experiments::e2_wal_recovery::run),
        ("e3", experiments::e3_view_maintenance::run),
        ("e4", experiments::e4_view_read::run),
        ("e5", experiments::e5_repl_bandwidth::run),
        ("e6", experiments::e6_convergence::run),
        ("e7", experiments::e7_conflicts::run),
        ("e8", experiments::e8_stub_purge::run),
        ("e9", experiments::e9_fulltext::run),
        ("e10", experiments::e10_formula::run),
        ("e11", experiments::e11_security::run),
        ("e12", experiments::e12_cluster::run),
        ("e13", experiments::e13_mail::run),
        ("e14", experiments::e14_loss_convergence::run),
        ("e15", experiments::e15_http::run),
        ("e16", experiments::e16_concurrency::run),
        ("e17", experiments::e17_negotiation::run),
        ("e18", experiments::e18_sockets::run),
        ("a1", experiments::a1_buffer_pool::run),
        ("a2", experiments::a2_lineage::run),
        ("a3", experiments::a3_checkpoint::run),
    ]
}
