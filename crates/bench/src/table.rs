//! Result tables: what each experiment prints and what EXPERIMENTS.md
//! records.

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id ("e1"...).
    pub id: String,
    /// "Table 1" / "Figure 3" designation from DESIGN.md.
    pub kind: String,
    pub title: String,
    /// The paper claim this quantifies.
    pub claim: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// One-line reading of the measured shape.
    pub takeaway: String,
}

impl Table {
    pub fn new(id: &str, kind: &str, title: &str, claim: &str) -> Table {
        Table {
            id: id.to_string(),
            kind: kind.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
            takeaway: String::new(),
        }
    }

    pub fn columns(mut self, cols: &[&str]) -> Table {
        self.columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn takeaway(&mut self, s: impl Into<String>) {
        self.takeaway = s.into();
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## {} ({}) — {}\n\n*Claim:* {}\n\n",
            self.id.to_uppercase(),
            self.kind,
            self.title,
            self.claim
        ));
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([c.len()])
                    .max()
                    .unwrap_or(4)
            })
            .collect();
        let line = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&line(&self.columns));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&line(&dashes));
        for row in &self.rows {
            out.push_str(&line(row));
        }
        if !self.takeaway.is_empty() {
            out.push_str(&format!("\n*Measured shape:* {}\n", self.takeaway));
        }
        out
    }

    /// Render as a JSON object (serde is not available offline).
    pub fn to_json(&self) -> String {
        let cols: Vec<String> = self.columns.iter().map(|c| json_str(c)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| json_str(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            concat!(
                "{{\"id\":{},\"kind\":{},\"title\":{},\"claim\":{},",
                "\"columns\":[{}],\"rows\":[{}],\"takeaway\":{}}}"
            ),
            json_str(&self.id),
            json_str(&self.kind),
            json_str(&self.title),
            json_str(&self.claim),
            cols.join(","),
            rows.join(","),
            json_str(&self.takeaway)
        )
    }
}

/// JSON string literal with the escapes RFC 8259 requires.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float tersely.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Ops/second from a count and elapsed duration.
pub fn rate(ops: usize, elapsed: std::time::Duration) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    fmt(ops as f64 / secs)
}

/// Microseconds per op.
pub fn micros_per(ops: usize, elapsed: std::time::Duration) -> String {
    let us = elapsed.as_secs_f64() * 1e6 / ops.max(1) as f64;
    fmt(us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders() {
        let mut t = Table::new("e0", "Table 0", "demo", "things hold").columns(&["n", "ops/s"]);
        t.row(vec!["10".into(), "123".into()]);
        t.takeaway("flat");
        let md = t.to_markdown();
        assert!(md.contains("## E0"));
        assert!(md.contains("| n "));
        assert!(md.contains("| 10"));
        assert!(md.contains("*Measured shape:* flat"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", "t", "t", "c").columns(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_escapes_and_shape() {
        let mut t = Table::new("e0", "Table 0", "quote \" and \\ back", "c").columns(&["n"]);
        t.row(vec!["line\nbreak".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\":\"quote \\\" and \\\\ back\""));
        assert!(j.contains("\"rows\":[[\"line\\nbreak\"]]"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.0), "42.0");
        assert_eq!(fmt(1.5), "1.500");
        assert_eq!(rate(100, std::time::Duration::from_secs(1)), "100.0");
    }
}
