//! Synthetic workload generators (the substitution for production
//! groupware traces — DESIGN.md §2). Everything is seeded, so runs are
//! reproducible.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use domino_core::{Database, DbConfig, Note};
use domino_types::{LogicalClock, ReplicaId, Timestamp, Value};

/// Deterministic RNG for a named workload.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A fresh in-memory database.
pub fn make_db(title: &str, lineage: u64, instance: u64) -> Arc<Database> {
    Arc::new(
        Database::open_in_memory(
            DbConfig::new(title, ReplicaId(lineage), ReplicaId(instance)),
            LogicalClock::starting_at(Timestamp(instance * 1000)),
        )
        .expect("open database"),
    )
}

/// A vocabulary of plausible words for text generation.
const WORDS: &[&str] = &[
    "project",
    "review",
    "quarterly",
    "budget",
    "deploy",
    "replica",
    "server",
    "meeting",
    "agenda",
    "status",
    "release",
    "storage",
    "index",
    "network",
    "client",
    "update",
    "launch",
    "report",
    "metric",
    "design",
    "schema",
    "latency",
    "backup",
    "restore",
    "mailbox",
    "thread",
    "topic",
    "response",
];

/// `n` words of pseudo-text: common vocabulary words most of the time,
/// with a Zipf-ish tail of rare terms (`termNNNN`) so inverted-index
/// vocabularies grow realistically with corpus size.
pub fn text(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| {
            if rng.random_bool(0.8) {
                WORDS[rng.random_range(0..WORDS.len())].to_string()
            } else {
                // Quadratic skew: low ids are much more common.
                let r: f64 = rng.random();
                let id = (r * r * 5000.0) as u32;
                format!("term{id:04}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Build one synthetic document: `fields` summary items of ~`field_len`
/// chars plus an optional non-summary body of `body_len` bytes.
pub fn make_doc(rng: &mut StdRng, fields: usize, field_len: usize, body_len: usize) -> Note {
    let mut n = Note::document("Doc");
    for f in 0..fields {
        n.set(
            &format!("F{f}"),
            Value::text(text(rng, (field_len / 8).max(1))),
        );
    }
    n.set(
        "Category",
        Value::text(format!("cat{}", rng.random_range(0..8))),
    );
    n.set("Priority", Value::Number(rng.random_range(1..=5) as f64));
    if body_len > 0 {
        let body: Vec<u8> = (0..body_len)
            .map(|_| rng.random_range(32..127) as u8)
            .collect();
        n.set_body("Body", Value::RichText(body));
    }
    n
}

/// Populate a database with `n` documents; returns their note ids.
pub fn populate(
    db: &Database,
    rng: &mut StdRng,
    n: usize,
    fields: usize,
    field_len: usize,
    body_len: usize,
) -> Vec<domino_types::NoteId> {
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let mut doc = make_doc(rng, fields, field_len, body_len);
        db.save(&mut doc).expect("save");
        ids.push(doc.id);
        // Bound log growth during large loads, like a production server.
        if i % 5000 == 4999 {
            db.checkpoint().expect("checkpoint");
        }
    }
    ids
}

/// Discussion-thread workload: `topics` top-level topics, each with a
/// geometric number of responses (mean ~`mean_responses`).
pub fn populate_threads(
    db: &Database,
    rng: &mut StdRng,
    topics: usize,
    mean_responses: usize,
) -> usize {
    let mut total = 0;
    for t in 0..topics {
        let mut topic = Note::document("Topic");
        topic.set(
            "Subject",
            Value::text(format!("topic {t}: {}", text(rng, 4))),
        );
        topic.set("Category", Value::text(format!("cat{}", t % 5)));
        db.save(&mut topic).expect("save topic");
        total += 1;
        let mut parent = topic.unid();
        let replies = rng.random_range(0..=mean_responses * 2);
        for _ in 0..replies {
            let mut resp = Note::document("Response");
            resp.set("Subject", Value::text(format!("re: {}", text(rng, 3))));
            resp.set("Category", Value::text(format!("cat{}", t % 5)));
            resp.set_parent(parent);
            db.save(&mut resp).expect("save response");
            total += 1;
            // Half the time, chain deeper.
            if rng.random_bool(0.5) {
                parent = resp.unid();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        assert_eq!(text(&mut r1, 6), text(&mut r2, 6));
    }

    #[test]
    fn populate_creates_n_docs() {
        let db = make_db("w", 1, 2);
        let ids = populate(&db, &mut rng(1), 50, 4, 32, 0);
        assert_eq!(ids.len(), 50);
        assert_eq!(db.document_count().unwrap(), 50);
    }

    #[test]
    fn threads_have_responses() {
        let db = make_db("w", 1, 2);
        let total = populate_threads(&db, &mut rng(2), 10, 3);
        assert_eq!(db.document_count().unwrap(), total);
        assert!(total > 10);
    }
}
