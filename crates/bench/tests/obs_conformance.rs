//! Metric-name conformance: after a mixed workload touching every
//! subsystem, every name in the live registry must follow the DESIGN.md
//! convention — `Subsystem.Object.Event`, dotted UpperCamelCase segments,
//! subsystem prefix from the known set, and histograms named for their
//! unit. New metrics that break the convention fail here, not in code
//! review.
//!
//! This test runs in its own binary so the registry holds exactly what
//! the workload below (plus the obs crate itself) registers.

use std::sync::Arc;

use domino_core::{Database, DbConfig, Note};
use domino_net::{MailRouter, MailUser, Network, Topology};
use domino_obs as obs;
use domino_replica::{CleanTransport, Cluster, ReplicationOptions, Replicator};
use domino_security::AccessLevel;
use domino_server::{DominoServer, LoggerConfig, Request, ServerConfig, ServerLog};
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_views::{ColumnSpec, ViewDesign};

/// Subsystem prefixes DESIGN.md allots. `Test` is for metrics test code
/// registers; `Example` for the runnable examples.
const SUBSYSTEMS: &[&str] = &[
    "Bench", "Cluster", "Database", "Db", "Ddm", "Example", "Formula", "Ft", "Http", "Log",
    "Logger", "Mail", "Net", "Nsf", "Obs", "Recovery", "Replica", "Server", "Test", "View",
];

/// A histogram's last segment names what it measures.
const HISTOGRAM_UNITS: &[&str] = &[
    "Nanos",
    "Micros",
    "Millis",
    "Ticks",
    "Size",
    "GroupSize",
    "Candidates",
];

fn is_upper_camel(segment: &str) -> bool {
    let mut chars = segment.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_uppercase())
        && chars.all(|c| c.is_ascii_alphanumeric())
}

/// Drive every subsystem far enough to register its metrics.
fn mixed_workload() {
    // Core + storage + WAL: saves, deletes, batches.
    let clock = LogicalClock::new();
    let a = Arc::new(
        Database::open_in_memory(
            DbConfig::new("a", ReplicaId(1), ReplicaId(2)),
            clock.clone(),
        )
        .unwrap(),
    );
    let b = Arc::new(
        Database::open_in_memory(
            DbConfig::new("b", ReplicaId(1), ReplicaId(3)),
            clock.clone(),
        )
        .unwrap(),
    );
    {
        let _batch = a.begin_batch();
        for i in 0..20 {
            let mut doc = Note::document("Topic");
            doc.set("Subject", Value::text(format!("topic {i}")));
            doc.set("Body", Value::text("searchable text welcome"));
            a.save(&mut doc).unwrap();
        }
    }
    a.checkpoint().unwrap();

    // The file device: a real on-disk NSF registers `Nsf.File.*`.
    let dir = std::env::temp_dir().join(format!("domino-obs-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    {
        let disk = Database::open_path(
            &dir.join("data.nsf"),
            DbConfig::new("d", ReplicaId(1), ReplicaId(4)),
            clock.clone(),
        )
        .unwrap();
        let mut doc = Note::document("Topic");
        doc.set("Subject", Value::text("on disk"));
        disk.save(&mut doc).unwrap();
        disk.shutdown().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Replication (clean pass) and clustering.
    let mut repl = Replicator::new(ReplicationOptions::default());
    repl.pull_via(&b, &a, &mut CleanTransport).unwrap();
    let cluster = Cluster::join(&[a.clone(), b.clone()]).unwrap();
    let mut doc = Note::document("Topic");
    doc.set("Subject", Value::text("pushed"));
    a.save(&mut doc).unwrap();
    drop(cluster);

    // Views, full-text, HTTP (including a denial), worker pool.
    let server = DominoServer::new(ServerConfig::default());
    server.register_database("a", &a).unwrap();
    let design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#)
        .unwrap()
        .column(ColumnSpec::new("Subject", "Subject").unwrap());
    server.add_view("a", design).unwrap();
    server.register_user("ada", "pw");
    server.handle(&Request::get("/a.nsf/topics?OpenView").as_user("ada", "pw"));
    server.handle(&Request::get("/a.nsf/topics?SearchView&Query=welcome").as_user("ada", "pw"));
    server
        .submit(Request::get("/a.nsf/topics?OpenView"))
        .recv()
        .unwrap();

    // The logger + DDM stack over the events all of the above emitted.
    let log = ServerLog::with_config(LoggerConfig::default()).unwrap();
    log.grant("ada", AccessLevel::Reader).unwrap();
    log.drain();
    log.rotate();

    // Real sockets: one keep-alive HTTP request through the TCP listener
    // and one wire-protocol round-trip through a loopback replica
    // listener, so `Http.Conn.*` and `Net.Conn.*` register.
    {
        use std::io::{Read, Write};
        let listener =
            domino_netio::HttpListener::start(server.clone(), domino_netio::HttpConfig::default())
                .unwrap();
        let mut conn = std::net::TcpStream::connect(listener.addr()).unwrap();
        conn.write_all(b"GET /a.nsf/topics?OpenView HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        conn.read_to_end(&mut out).unwrap();
        assert!(out.starts_with(b"HTTP/1.1 200"), "socket request failed");
        listener.drain(std::time::Duration::from_secs(5));

        let wire = domino_netio::ReplicaListener::bind("127.0.0.1:0").unwrap();
        let mut transport = domino_netio::SocketTransport::connect(&wire.addr());
        let c = Arc::new(
            Database::open_in_memory(
                DbConfig::new("a", ReplicaId(1), ReplicaId(5)),
                clock.clone(),
            )
            .unwrap(),
        );
        let mut socket_pull = Replicator::new(ReplicationOptions::default());
        socket_pull.pull_via(&c, &a, &mut transport).unwrap();
    }

    // Mail routing across a small network.
    let mut net = Network::new(
        2,
        Topology::Mesh,
        domino_net::LinkSpec::default(),
        LogicalClock::new(),
    );
    let users = vec![
        MailUser {
            name: "ada".into(),
            home_server: 0,
        },
        MailUser {
            name: "grace".into(),
            home_server: 1,
        },
    ];
    let mut router = MailRouter::setup(&mut net, &users).unwrap();
    router
        .send(&net, 0, "ada", "grace", "hello", "body")
        .unwrap();
    router.run_until_delivered(&mut net, 64).unwrap();

    // Statistics rendering registers the server gauges.
    obs::show_statistics();
}

#[test]
fn every_registered_metric_name_conforms() {
    mixed_workload();

    let snap = obs::snapshot();
    assert!(
        snap.len() >= 40,
        "workload registered too few metrics ({}) to make conformance meaningful",
        snap.len()
    );
    let mut violations = Vec::new();
    for (name, value) in snap.iter() {
        let segments: Vec<&str> = name.split('.').collect();
        if !(2..=4).contains(&segments.len()) {
            violations.push(format!("{name}: {} segments (want 2-4)", segments.len()));
            continue;
        }
        if !SUBSYSTEMS.contains(&segments[0]) {
            violations.push(format!("{name}: unknown subsystem {:?}", segments[0]));
        }
        for seg in &segments {
            if !is_upper_camel(seg) {
                violations.push(format!("{name}: segment {seg:?} is not UpperCamelCase"));
            }
        }
        if matches!(value, obs::MetricValue::Histogram(_))
            && !HISTOGRAM_UNITS.contains(segments.last().unwrap())
        {
            violations.push(format!(
                "{name}: histogram last segment {:?} is not a unit ({HISTOGRAM_UNITS:?})",
                segments.last().unwrap()
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "metric naming violations:\n  {}",
        violations.join("\n  ")
    );

    // Spot-check that the sweep really covered the subsystems.
    for expected in [
        "Database.Txn.Commits",
        "Replica.Passes",
        "Cluster.Events.Pushed",
        "Http.Request.Served",
        "Http.Conn.Accepted",
        "Net.Conn.Frames",
        "Ft.Queries",
        "View.Rebuilds",
        "Mail.Delivered",
        "Logger.Drains",
        "Nsf.File.Opens",
        "Obs.Event.Emitted",
        "Server.Uptime",
    ] {
        assert!(
            snap.iter().any(|(name, _)| name == expected),
            "expected metric {expected:?} missing after the mixed workload"
        );
    }
}
