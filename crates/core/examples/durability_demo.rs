//! Durability walkthrough: group commit, incremental fuzzy checkpointing,
//! the background checkpointer, log truncation, and crash recovery —
//! driven through the public `Database` surface over shareable in-memory
//! stores so the "machine" can be power-cycled.
//!
//! ```sh
//! cargo run --release -q -p domino-core --example durability_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use domino_core::{Database, DbConfig};
use domino_storage::{CommitMode, EngineConfig, MemDisk};
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_wal::{LogStore, MemLogStore};

fn open(disk: MemDisk, log: MemLogStore, clock: LogicalClock) -> Arc<Database> {
    let engine = EngineConfig {
        commit_mode: CommitMode::GroupCommit {
            max_wait: Duration::ZERO,
            max_batch: 8,
        },
        ..EngineConfig::default()
    };
    Arc::new(
        Database::open(
            Box::new(disk),
            Some(Box::new(log)),
            DbConfig::new("durability", ReplicaId(1), ReplicaId(1)).with_engine(engine),
            clock,
        )
        .expect("open"),
    )
}

fn durable_log_bytes(log: &MemLogStore) -> u64 {
    log.len().unwrap() - log.start().unwrap()
}

fn main() {
    let disk = MemDisk::new();
    let log = MemLogStore::new();
    let clock = LogicalClock::new();
    let db = open(disk.clone(), log.clone(), clock.clone());

    // --- commit a batch of documents under group-commit mode ----------
    let mut ids = Vec::new();
    for i in 0..200 {
        let mut d = domino_core::Note::document("Doc");
        d.set("Subject", Value::text(format!("note {i}")));
        db.save(&mut d).expect("save");
        ids.push(d.id);
    }
    let ls = db.log_stats().expect("logging on");
    println!(
        "after 200 saves: {} log records, {} device flushes ({} noop), durable log = {} bytes",
        ls.records,
        ls.flushes,
        ls.noop_flushes,
        durable_log_bytes(&log)
    );

    // --- incremental fuzzy checkpoint truncates the log ---------------
    let before = durable_log_bytes(&log);
    db.checkpoint_incremental(8).expect("checkpoint");
    let es = db.engine_stats();
    println!(
        "incremental checkpoint: {} pages written back in steps of 8; durable log {} -> {} bytes",
        es.checkpoint_pages,
        before,
        durable_log_bytes(&log)
    );
    assert!(durable_log_bytes(&log) < before, "checkpoint must truncate");

    // --- background checkpointer rides along with foreground saves ----
    let handle = db.start_checkpointer(Duration::from_millis(5), 4);
    for i in 0..200 {
        let mut d = domino_core::Note::document("Doc");
        d.set("Subject", Value::text(format!("bg note {i}")));
        db.save(&mut d).expect("save");
        ids.push(d.id);
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(6));
        }
    }
    handle.stop();
    let es = db.engine_stats();
    println!(
        "background checkpointer: {} checkpoints completed, {} pages written back total",
        es.checkpoints, es.checkpoint_pages
    );
    assert!(es.checkpoints >= 2, "background thread should have fired");

    // --- power cut: unsynced log tail and all cached frames vanish ----
    drop(db);
    log.crash();
    let db = open(disk, log.clone(), clock);
    let rs = db.recovery_stats();
    match rs {
        Some(rs) => println!(
            "after crash: recovery analyzed {} records, redid {}, undid {}",
            rs.analyzed, rs.redone, rs.undone
        ),
        None => println!("after crash: log tail empty past checkpoint — nothing to replay"),
    }
    for (i, id) in ids.iter().enumerate() {
        let d = db.open_note(*id).expect("every acknowledged save survives");
        let subject = d.get("Subject").expect("subject");
        let want = if i < 200 {
            format!("note {i}")
        } else {
            format!("bg note {}", i - 200)
        };
        assert_eq!(*subject, Value::text(want));
    }
    println!("all {} acknowledged documents recovered intact", ids.len());
}
