//! The on-disk NSF end to end: `Database::open_path` against a real
//! file, a simulated power cut (drop without shutdown), and a **second
//! process** reopening the same file and seeing every committed note.
//!
//! The parent process writes 75 documents (a checkpoint in the middle,
//! the last 25 never checkpointed or shut down cleanly — they exist only
//! in the `.txn` log), then re-executes itself as a child. The child's
//! `open_path` replays the on-disk log tail; it asserts all 75 notes and
//! the identical Merkle root, proving durability crosses a process
//! boundary, not just a reopen in the same address space.

use std::path::PathBuf;

use domino_core::{Database, DbConfig, Note, SeedMode};
use domino_types::{ContentHash, LogicalClock, ReplicaId, Value};

const DOCS: usize = 75;

fn config(mode: SeedMode) -> DbConfig {
    DbConfig::new("NsfDemo", ReplicaId(1), ReplicaId(7)).with_seed_mode(mode)
}

/// Child mode: open the file written by the parent, recover, verify.
fn child(path: PathBuf, want_root: ContentHash) {
    let db = Database::open_path(&path, config(SeedMode::Lazy), LogicalClock::new()).unwrap();
    let snap = db.snapshot();
    assert_eq!(snap.document_count(), DOCS, "child must see every commit");
    assert_eq!(db.merkle_root(), want_root, "replication digest must match");
    // Hydrate one lazily-seeded body to prove record chains survived.
    let docs = snap.documents();
    let with_body = docs
        .iter()
        .filter(|d| matches!(d.get("Body"), Some(Value::RichText(b)) if b.len() == 6000))
        .count();
    println!(
        "child pid {}: recovered {} notes, {} full bodies, root matches",
        std::process::id(),
        snap.document_count(),
        with_body
    );
    assert_eq!(with_body, DOCS / 3);
}

fn main() {
    let mut args = std::env::args().skip(1);
    if let (Some(flag), Some(path)) = (args.next(), args.next()) {
        if flag == "--child" {
            let root = args.next().expect("root arg");
            child(PathBuf::from(path), ContentHash(root.parse().unwrap()));
            return;
        }
    }

    let dir = std::env::temp_dir().join(format!("domino-nsf-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.nsf");

    let db = Database::open_path(&path, config(SeedMode::Eager), LogicalClock::new()).unwrap();
    for i in 0..DOCS {
        let mut n = Note::document("Memo");
        n.set("Seq", Value::Number(i as f64));
        if i % 3 == 0 {
            n.set_body("Body", Value::RichText(vec![i as u8; 6000]));
        }
        db.save(&mut n).unwrap();
        if i == 49 {
            // Checkpoint mid-stream: pages 0..=49 reach the file, the
            // log truncates, and the superblock records the redo point.
            db.checkpoint().unwrap();
        }
    }
    let root = db.merkle_root();
    println!(
        "parent pid {}: committed {DOCS} notes to {} (checkpoint at 50), root {:?}",
        std::process::id(),
        path.display(),
        root
    );
    // Power cut: drop without shutdown. The last 25 commits live only in
    // demo.txn — the data file was never synced past the checkpoint.
    drop(db);

    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("--child")
        .arg(&path)
        .arg(root.0.to_string())
        .status()
        .unwrap();
    assert!(status.success(), "child verification failed");
    println!("second process saw every committed note — demo complete");
    let _ = std::fs::remove_dir_all(&dir);
}
