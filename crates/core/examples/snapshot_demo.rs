//! Drive the concurrency layer end-to-end through the public API:
//! snapshot isolation, lock-free reads under a writer storm, per-note
//! exclusive locking with disjoint writers, and the lock/snapshot
//! statistics surfaces.
//!
//! ```sh
//! cargo run --release -q -p domino-core --example snapshot_demo
//! ```

use std::sync::Arc;
use std::thread;

use domino_core::{Database, DbConfig, Note};
use domino_types::{LogicalClock, ReplicaId, Value};

fn main() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Demo", ReplicaId(1), ReplicaId(9)).with_lock_table(true),
            LogicalClock::new(),
        )
        .expect("open"),
    );

    // Seed a handful of documents.
    let mut ids = Vec::new();
    for i in 0..4 {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(format!("memo {i}")));
        n.set("Counter", Value::Number(0.0));
        db.save(&mut n).expect("save");
        ids.push(n.id);
    }

    // 1. Snapshot isolation: a pinned snapshot keeps reading the state it
    //    was taken at, while later commits advance the live database.
    let before = db.snapshot();
    let mut n = db.open_note(ids[0]).expect("open");
    n.set("Counter", Value::Number(42.0));
    db.save(&mut n).expect("save");
    let old = before.open_note(ids[0]).expect("snapshot read");
    let live = db.open_note(ids[0]).expect("live read");
    println!(
        "snapshot at seq {} still sees Counter = {}, live (seq {}) sees {}",
        before.seq(),
        old.get("Counter").unwrap().as_number().unwrap(),
        db.change_seq(),
        live.get("Counter").unwrap().as_number().unwrap(),
    );
    assert_eq!(old.get("Counter"), Some(&Value::Number(0.0)));
    assert_eq!(live.get("Counter"), Some(&Value::Number(42.0)));
    drop(before);

    // 2. Disjoint writers in parallel (per-note exclusive locks) while
    //    readers pin snapshots and take no lock at all.
    let locks_before = db.lock_stats();
    let mut handles = Vec::new();
    for &id in &ids {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..25 {
                let mut n = db.open_note(id).expect("open");
                let c = n.get("Counter").unwrap().as_number().unwrap();
                n.set("Counter", Value::Number(c + 1.0));
                db.save(&mut n).expect("save");
            }
        }));
    }
    let reader_db = db.clone();
    handles.push(thread::spawn(move || {
        let mut last = 0;
        for _ in 0..100 {
            let snap = reader_db.snapshot();
            assert!(snap.seq() >= last, "sequence went backwards");
            last = snap.seq();
            // Every listed document reads consistently from the same pin.
            for doc in snap.documents() {
                assert_eq!(*doc, *snap.open_arc(doc.id).expect("open"));
            }
        }
    }));
    for h in handles {
        h.join().expect("thread");
    }
    let locks = db.lock_stats();
    println!(
        "writer storm done: {} exclusive locks, {} waits, {} timeouts",
        locks.exclusive_acquired - locks_before.exclusive_acquired,
        locks.waits - locks_before.waits,
        locks.timeouts - locks_before.timeouts,
    );
    assert_eq!(locks.timeouts - locks_before.timeouts, 0);

    // 3. Convergence: the final snapshot equals the live state, and every
    //    increment survived.
    let snap = db.snapshot();
    assert_eq!(snap.seq(), db.change_seq());
    let total: f64 = snap
        .documents()
        .iter()
        .map(|n| n.get("Counter").unwrap().as_number().unwrap())
        .sum();
    println!(
        "final snapshot seq {}: counters sum to {} (expected {})",
        snap.seq(),
        total,
        4 * 25 + 42
    );
    assert_eq!(total as usize, 4 * 25 + 42);

    let s = db.snapshot_stats();
    println!(
        "snapshot stats: {} pinned, {} reads served, {} versions retained, {} pruned",
        s.pinned_total, s.reads, s.retained_versions, s.pruned
    );
    println!("snapshot demo complete");
}
