//! Agents: stored formula programs run over the database.
//!
//! Notes agents automate workflow: a selection formula picks documents and
//! `FIELD` assignments mutate them (the tutorial's "workflow on top of the
//! document store" story). Agents are design notes, so they replicate with
//! the database and run wherever the documents are.

use domino_formula::{EvalEnv, Formula};
use domino_types::{Clock, DominoError, NoteClass, Result, Value};

use crate::db::Database;
use crate::note::Note;

/// When an agent is meant to run (informational for schedulers; `run`
/// executes regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentTrigger {
    Manual,
    /// Run on a schedule (every `ticks`).
    Scheduled(u64),
    /// Run after new/updated documents arrive (e.g. post-replication).
    OnUpdate,
}

/// A stored agent.
#[derive(Debug, Clone)]
pub struct AgentDesign {
    pub name: String,
    /// The program: `SELECT` chooses documents; `FIELD` writes modify them.
    pub formula: Formula,
    pub trigger: AgentTrigger,
}

/// What one agent run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentRunReport {
    pub examined: usize,
    pub selected: usize,
    pub modified: usize,
}

impl AgentDesign {
    pub fn new(name: &str, formula_src: &str) -> Result<AgentDesign> {
        Ok(AgentDesign {
            name: name.to_string(),
            formula: Formula::compile(formula_src)?,
            trigger: AgentTrigger::Manual,
        })
    }

    pub fn scheduled(mut self, every_ticks: u64) -> AgentDesign {
        self.trigger = AgentTrigger::Scheduled(every_ticks);
        self
    }

    pub fn on_update(mut self) -> AgentDesign {
        self.trigger = AgentTrigger::OnUpdate;
        self
    }

    /// Run over every document: selected documents receive the formula's
    /// `FIELD` writes and are saved (skipping documents the writes leave
    /// unchanged, so runs are idempotent).
    pub fn run(&self, db: &Database, user: &str) -> Result<AgentRunReport> {
        let env = EvalEnv {
            username: user.to_string(),
            now: db.clock().peek(),
            db_title: db.title(),
            ..EvalEnv::default()
        };
        let mut report = AgentRunReport::default();
        for id in db.note_ids(Some(NoteClass::Document))? {
            report.examined += 1;
            let note = db.open_note(id)?;
            let out = self.formula.eval_full(&note, &env)?;
            if !out.selected {
                continue;
            }
            report.selected += 1;
            if out.field_writes.is_empty() {
                continue;
            }
            let mut doc = note;
            let mut changed = false;
            for (field, value) in out.field_writes {
                if doc.get(&field) != Some(&value) {
                    doc.set(&field, value);
                    changed = true;
                }
            }
            if changed {
                db.save(&mut doc)?;
                report.modified += 1;
            }
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // persistence as an Agent design note
    // ------------------------------------------------------------------

    pub fn to_note(&self) -> Note {
        let mut n = Note::new(NoteClass::Agent);
        n.set("$TITLE", Value::text(self.name.clone()));
        n.set("Formula", Value::text(self.formula.source()));
        let (kind, arg) = match self.trigger {
            AgentTrigger::Manual => ("manual", 0),
            AgentTrigger::Scheduled(t) => ("scheduled", t),
            AgentTrigger::OnUpdate => ("onupdate", 0),
        };
        n.set("Trigger", Value::text(kind));
        n.set("TriggerArg", Value::Number(arg as f64));
        n
    }

    pub fn from_note(note: &Note) -> Result<AgentDesign> {
        if note.class != NoteClass::Agent {
            return Err(DominoError::InvalidArgument(format!(
                "{:?} note is not an agent design",
                note.class
            )));
        }
        let name = note
            .get_text("$TITLE")
            .ok_or_else(|| DominoError::Corrupt("agent design missing $TITLE".into()))?;
        let src = note
            .get_text("Formula")
            .ok_or_else(|| DominoError::Corrupt("agent design missing Formula".into()))?;
        let arg = note
            .get("TriggerArg")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0) as u64;
        let trigger = match note.get_text("Trigger").as_deref() {
            Some("scheduled") => AgentTrigger::Scheduled(arg),
            Some("onupdate") => AgentTrigger::OnUpdate,
            _ => AgentTrigger::Manual,
        };
        Ok(AgentDesign {
            name,
            formula: Formula::compile(&src)?,
            trigger,
        })
    }
}

/// Store an agent design (replacing any with the same name).
pub fn save_agent(db: &Database, agent: &AgentDesign) -> Result<()> {
    for id in db.note_ids(Some(NoteClass::Agent))? {
        let existing = db.open_note(id)?;
        if existing.get_text("$TITLE").as_deref() == Some(&agent.name) {
            let mut updated = agent.to_note();
            updated.id = existing.id;
            updated.oid = existing.oid;
            updated.created = existing.created;
            return db.save(&mut updated);
        }
    }
    db.save(&mut agent.to_note())
}

/// Load all stored agents.
pub fn stored_agents(db: &Database) -> Result<Vec<AgentDesign>> {
    let mut out = Vec::new();
    for id in db.note_ids(Some(NoteClass::Agent))? {
        out.push(AgentDesign::from_note(&db.open_note(id)?)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use domino_types::{LogicalClock, ReplicaId};

    fn db() -> Database {
        Database::open_in_memory(
            DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
            LogicalClock::new(),
        )
        .unwrap()
    }

    fn escalator() -> AgentDesign {
        AgentDesign::new(
            "escalate",
            r#"SELECT Status = "open" & Age > 30; FIELD Status := "overdue""#,
        )
        .unwrap()
    }

    #[test]
    fn agent_modifies_selected_documents_only() {
        let db = db();
        for (age, status) in [(10.0, "open"), (45.0, "open"), (50.0, "closed")] {
            let mut n = Note::document("Ticket");
            n.set("Age", Value::Number(age));
            n.set("Status", Value::text(status));
            db.save(&mut n).unwrap();
        }
        let report = escalator().run(&db, "scheduler").unwrap();
        assert_eq!(report.examined, 3);
        assert_eq!(report.selected, 1);
        assert_eq!(report.modified, 1);
        let f = Formula::compile(r#"SELECT Status = "overdue""#).unwrap();
        assert_eq!(db.search(&f, &EvalEnv::default()).unwrap().len(), 1);
    }

    #[test]
    fn agent_runs_are_idempotent() {
        let db = db();
        let mut n = Note::document("Ticket");
        n.set("Age", Value::Number(99.0));
        n.set("Status", Value::text("open"));
        db.save(&mut n).unwrap();
        escalator().run(&db, "s").unwrap();
        let seq_after_first = db.open_by_unid(n.unid()).unwrap().oid.seq;
        // Second run selects nothing new and writes nothing.
        let report = escalator().run(&db, "s").unwrap();
        assert_eq!(report.modified, 0);
        assert_eq!(db.open_by_unid(n.unid()).unwrap().oid.seq, seq_after_first);
    }

    #[test]
    fn design_note_roundtrip() {
        let agent = escalator().scheduled(500);
        let note = agent.to_note();
        let back = AgentDesign::from_note(&note).unwrap();
        assert_eq!(back.name, "escalate");
        assert_eq!(back.trigger, AgentTrigger::Scheduled(500));
        assert_eq!(back.formula.source(), agent.formula.source());
    }

    #[test]
    fn save_agent_replaces_by_name() {
        let db = db();
        save_agent(&db, &escalator()).unwrap();
        save_agent(&db, &escalator().on_update()).unwrap();
        let agents = stored_agents(&db).unwrap();
        assert_eq!(agents.len(), 1);
        assert_eq!(agents[0].trigger, AgentTrigger::OnUpdate);
    }

    #[test]
    fn agents_replicate_and_run_remotely() {
        let a = std::sync::Arc::new(db());
        let b = std::sync::Arc::new(
            Database::open_in_memory(
                DbConfig::new("T", ReplicaId(1), ReplicaId(3)),
                LogicalClock::starting_at(domino_types::Timestamp(99)),
            )
            .unwrap(),
        );
        save_agent(&a, &escalator()).unwrap();
        let mut n = Note::document("Ticket");
        n.set("Age", Value::Number(40.0));
        n.set("Status", Value::text("open"));
        a.save(&mut n).unwrap();
        // Agents are notes: they replicate like everything else. (Using the
        // low-level apply path to avoid a dev-dependency cycle on
        // domino-replica.)
        for c in a.changed_since(domino_types::Timestamp::ZERO).unwrap() {
            let note = a.open_note(c.id).unwrap();
            b.save_replicated(note).unwrap();
        }
        let agents = stored_agents(&b).unwrap();
        assert_eq!(agents.len(), 1);
        let report = agents[0].run(&b, "remote").unwrap();
        assert_eq!(report.modified, 1);
    }
}
