//! Agents: stored formula programs run over the database.
//!
//! Notes agents automate workflow: a selection formula picks documents and
//! `FIELD` assignments mutate them (the tutorial's "workflow on top of the
//! document store" story). Agents are design notes, so they replicate with
//! the database and run wherever the documents are.

use domino_formula::{EvalEnv, Formula};
use domino_types::{Clock, DominoError, NoteClass, Result, Value};

use crate::db::Database;
use crate::note::Note;

/// When an agent is meant to run (informational for schedulers; `run`
/// executes regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentTrigger {
    Manual,
    /// Run on a schedule (every `ticks`).
    Scheduled(u64),
    /// Run after new/updated documents arrive (e.g. post-replication).
    OnUpdate,
}

/// A stored agent.
#[derive(Debug, Clone)]
pub struct AgentDesign {
    pub name: String,
    /// The program: `SELECT` chooses documents; `FIELD` writes modify them.
    pub formula: Formula,
    pub trigger: AgentTrigger,
}

/// What one agent run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentRunReport {
    pub examined: usize,
    pub selected: usize,
    pub modified: usize,
}

impl AgentDesign {
    pub fn new(name: &str, formula_src: &str) -> Result<AgentDesign> {
        Ok(AgentDesign {
            name: name.to_string(),
            formula: Formula::compile(formula_src)?,
            trigger: AgentTrigger::Manual,
        })
    }

    pub fn scheduled(mut self, every_ticks: u64) -> AgentDesign {
        self.trigger = AgentTrigger::Scheduled(every_ticks);
        self
    }

    pub fn on_update(mut self) -> AgentDesign {
        self.trigger = AgentTrigger::OnUpdate;
        self
    }

    /// Run over every document: selected documents receive the formula's
    /// `FIELD` writes and are saved (skipping documents the writes leave
    /// unchanged, so runs are idempotent).
    ///
    /// The sweep iterates a pinned snapshot, so it sees one consistent
    /// state and never blocks concurrent writers. A document updated
    /// mid-run surfaces as an optimistic-concurrency conflict on save;
    /// the agent then re-evaluates the *current* copy once, which is the
    /// right answer under both outcomes (still selected → apply there;
    /// no longer selected → skip).
    pub fn run(&self, db: &Database, user: &str) -> Result<AgentRunReport> {
        let env = EvalEnv {
            username: user.to_string(),
            now: db.clock().peek(),
            db_title: db.title(),
            ..EvalEnv::default()
        };
        let mut report = AgentRunReport::default();
        let snap = db.snapshot();
        for note in snap.documents() {
            report.examined += 1;
            let out = self.formula.eval_full(note.as_ref(), &env)?;
            if !out.selected {
                continue;
            }
            report.selected += 1;
            if out.field_writes.is_empty() {
                continue;
            }
            let mut doc = (*note).clone();
            let mut changed = false;
            for (field, value) in out.field_writes {
                if doc.get(&field) != Some(&value) {
                    doc.set(&field, value);
                    changed = true;
                }
            }
            if !changed {
                continue;
            }
            match db.save(&mut doc) {
                Ok(()) => report.modified += 1,
                Err(e) if e.kind() == "update_conflict" => {
                    let Ok(current) = db.open_by_unid(note.unid()) else {
                        continue; // deleted mid-run
                    };
                    let out = self.formula.eval_full(&current, &env)?;
                    if !out.selected {
                        continue;
                    }
                    let mut doc = current;
                    let mut changed = false;
                    for (field, value) in out.field_writes {
                        if doc.get(&field) != Some(&value) {
                            doc.set(&field, value);
                            changed = true;
                        }
                    }
                    if changed {
                        db.save(&mut doc)?;
                        report.modified += 1;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // persistence as an Agent design note
    // ------------------------------------------------------------------

    pub fn to_note(&self) -> Note {
        let mut n = Note::new(NoteClass::Agent);
        n.set("$TITLE", Value::text(self.name.clone()));
        n.set("Formula", Value::text(self.formula.source()));
        let (kind, arg) = match self.trigger {
            AgentTrigger::Manual => ("manual", 0),
            AgentTrigger::Scheduled(t) => ("scheduled", t),
            AgentTrigger::OnUpdate => ("onupdate", 0),
        };
        n.set("Trigger", Value::text(kind));
        n.set("TriggerArg", Value::Number(arg as f64));
        n
    }

    pub fn from_note(note: &Note) -> Result<AgentDesign> {
        if note.class != NoteClass::Agent {
            return Err(DominoError::InvalidArgument(format!(
                "{:?} note is not an agent design",
                note.class
            )));
        }
        let name = note
            .get_text("$TITLE")
            .ok_or_else(|| DominoError::Corrupt("agent design missing $TITLE".into()))?;
        let src = note
            .get_text("Formula")
            .ok_or_else(|| DominoError::Corrupt("agent design missing Formula".into()))?;
        let arg = note
            .get("TriggerArg")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0) as u64;
        let trigger = match note.get_text("Trigger").as_deref() {
            Some("scheduled") => AgentTrigger::Scheduled(arg),
            Some("onupdate") => AgentTrigger::OnUpdate,
            _ => AgentTrigger::Manual,
        };
        Ok(AgentDesign {
            name,
            formula: Formula::compile(&src)?,
            trigger,
        })
    }
}

/// What one [`AgentScheduler::tick`] did: every agent that fired, with its
/// run report, in storage order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AgentTickReport {
    /// `(agent name, what the run did)` for each agent that ran this tick.
    pub runs: Vec<(String, AgentRunReport)>,
}

impl AgentTickReport {
    /// Whether any agent fired.
    pub fn fired(&self) -> bool {
        !self.runs.is_empty()
    }
}

/// The agent manager ("amgr" in Domino): decides *when* stored agents run.
///
/// [`AgentTrigger::Scheduled`] agents fire when their tick interval has
/// elapsed since their last run; [`AgentTrigger::OnUpdate`] agents fire
/// when the [database change sequence](Database::change_seq) has advanced
/// since the previous tick — i.e. after new or updated documents arrived
/// (saves, replication). `Manual` agents never fire from the scheduler.
///
/// The scheduler reloads [`stored_agents`] on every tick, so agents saved
/// (or replicated in) after construction are picked up automatically. The
/// change sequence is re-sampled *after* the tick's runs complete, so an
/// agent's own `FIELD` writes do not re-trigger `OnUpdate` agents on the
/// next tick (agent runs are idempotent, so even a pathological re-trigger
/// converges — it just wastes a pass).
pub struct AgentScheduler {
    db: std::sync::Arc<Database>,
    /// Identity agent formulas evaluate under (`@UserName`).
    runner: String,
    /// Tick at which each scheduled agent last ran, by name.
    last_run: std::collections::HashMap<String, u64>,
    /// Change sequence as of the end of the previous tick.
    seen_seq: u64,
}

impl AgentScheduler {
    /// A scheduler for `db`, running agents as `runner`. The current
    /// change sequence is captured now: pre-existing documents do not
    /// count as an "update" for `OnUpdate` agents.
    pub fn new(db: std::sync::Arc<Database>, runner: &str) -> AgentScheduler {
        let seen_seq = db.change_seq();
        AgentScheduler {
            db,
            runner: runner.to_string(),
            last_run: std::collections::HashMap::new(),
            seen_seq,
        }
    }

    /// Run every agent that is due at tick `now` and report what fired.
    ///
    /// A `Scheduled(every)` agent is due when `now` is at least `every`
    /// ticks past its last run (a never-run agent is due immediately —
    /// the catch-up semantics an operator expects after a restart).
    pub fn tick(&mut self, now: u64) -> Result<AgentTickReport> {
        let updated = self.db.change_seq() != self.seen_seq;
        let mut report = AgentTickReport::default();
        for agent in stored_agents(&self.db)? {
            let due = match agent.trigger {
                AgentTrigger::Manual => false,
                AgentTrigger::Scheduled(every) => {
                    if every == 0 {
                        false
                    } else {
                        match self.last_run.get(&agent.name) {
                            Some(&last) => now.saturating_sub(last) >= every,
                            None => true,
                        }
                    }
                }
                AgentTrigger::OnUpdate => updated,
            };
            if !due {
                continue;
            }
            let run = agent.run(&self.db, &self.runner)?;
            if let AgentTrigger::Scheduled(_) = agent.trigger {
                self.last_run.insert(agent.name.clone(), now);
            }
            domino_obs::emit(
                domino_obs::Event::new(
                    domino_obs::EventKind::Agent,
                    domino_obs::Severity::Info,
                    "Agent.Run",
                )
                .at(now)
                .with("agent", agent.name.clone())
                .with("db", self.db.title())
                .with("examined", run.examined)
                .with("selected", run.selected)
                .with("modified", run.modified),
            );
            report.runs.push((agent.name, run));
        }
        self.seen_seq = self.db.change_seq();
        Ok(report)
    }
}

/// Store an agent design (replacing any with the same name).
pub fn save_agent(db: &Database, agent: &AgentDesign) -> Result<()> {
    for id in db.note_ids(Some(NoteClass::Agent))? {
        let existing = db.open_note(id)?;
        if existing.get_text("$TITLE").as_deref() == Some(&agent.name) {
            let mut updated = agent.to_note();
            updated.id = existing.id;
            updated.oid = existing.oid;
            updated.created = existing.created;
            return db.save(&mut updated);
        }
    }
    db.save(&mut agent.to_note())
}

/// Load all stored agents.
pub fn stored_agents(db: &Database) -> Result<Vec<AgentDesign>> {
    let mut out = Vec::new();
    for id in db.note_ids(Some(NoteClass::Agent))? {
        out.push(AgentDesign::from_note(&db.open_note(id)?)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use domino_types::{LogicalClock, ReplicaId};

    fn db() -> Database {
        Database::open_in_memory(
            DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
            LogicalClock::new(),
        )
        .unwrap()
    }

    fn escalator() -> AgentDesign {
        AgentDesign::new(
            "escalate",
            r#"SELECT Status = "open" & Age > 30; FIELD Status := "overdue""#,
        )
        .unwrap()
    }

    #[test]
    fn agent_modifies_selected_documents_only() {
        let db = db();
        for (age, status) in [(10.0, "open"), (45.0, "open"), (50.0, "closed")] {
            let mut n = Note::document("Ticket");
            n.set("Age", Value::Number(age));
            n.set("Status", Value::text(status));
            db.save(&mut n).unwrap();
        }
        let report = escalator().run(&db, "scheduler").unwrap();
        assert_eq!(report.examined, 3);
        assert_eq!(report.selected, 1);
        assert_eq!(report.modified, 1);
        let f = Formula::compile(r#"SELECT Status = "overdue""#).unwrap();
        assert_eq!(db.search(&f, &EvalEnv::default()).unwrap().len(), 1);
    }

    #[test]
    fn agent_runs_are_idempotent() {
        let db = db();
        let mut n = Note::document("Ticket");
        n.set("Age", Value::Number(99.0));
        n.set("Status", Value::text("open"));
        db.save(&mut n).unwrap();
        escalator().run(&db, "s").unwrap();
        let seq_after_first = db.open_by_unid(n.unid()).unwrap().oid.seq;
        // Second run selects nothing new and writes nothing.
        let report = escalator().run(&db, "s").unwrap();
        assert_eq!(report.modified, 0);
        assert_eq!(db.open_by_unid(n.unid()).unwrap().oid.seq, seq_after_first);
    }

    #[test]
    fn design_note_roundtrip() {
        let agent = escalator().scheduled(500);
        let note = agent.to_note();
        let back = AgentDesign::from_note(&note).unwrap();
        assert_eq!(back.name, "escalate");
        assert_eq!(back.trigger, AgentTrigger::Scheduled(500));
        assert_eq!(back.formula.source(), agent.formula.source());
    }

    #[test]
    fn save_agent_replaces_by_name() {
        let db = db();
        save_agent(&db, &escalator()).unwrap();
        save_agent(&db, &escalator().on_update()).unwrap();
        let agents = stored_agents(&db).unwrap();
        assert_eq!(agents.len(), 1);
        assert_eq!(agents[0].trigger, AgentTrigger::OnUpdate);
    }

    #[test]
    fn scheduler_runs_scheduled_agents_at_interval() {
        let db = std::sync::Arc::new(db());
        let mut n = Note::document("Ticket");
        n.set("Age", Value::Number(99.0));
        n.set("Status", Value::text("open"));
        db.save(&mut n).unwrap();
        save_agent(&db, &escalator().scheduled(10)).unwrap();

        let mut amgr = AgentScheduler::new(db.clone(), "amgr");
        // Never-run agent is due immediately (catch-up semantics).
        let first = amgr.tick(5).unwrap();
        assert_eq!(first.runs.len(), 1);
        assert_eq!(first.runs[0].0, "escalate");
        assert_eq!(
            first.runs[0].1,
            AgentRunReport {
                examined: 1,
                selected: 1,
                modified: 1
            }
        );
        // Not due again until 10 ticks have elapsed.
        assert!(!amgr.tick(9).unwrap().fired());
        let again = amgr.tick(15).unwrap();
        assert_eq!(again.runs.len(), 1);
        // Second run is idempotent: selected nothing, wrote nothing.
        assert_eq!(again.runs[0].1.modified, 0);
    }

    #[test]
    fn scheduler_fires_on_update_agents_off_the_change_seq() {
        let db = std::sync::Arc::new(db());
        save_agent(&db, &escalator().on_update()).unwrap();
        let mut amgr = AgentScheduler::new(db.clone(), "amgr");
        // No changes since the scheduler was created: nothing fires.
        assert!(!amgr.tick(1).unwrap().fired());
        let mut n = Note::document("Ticket");
        n.set("Age", Value::Number(40.0));
        n.set("Status", Value::text("open"));
        db.save(&mut n).unwrap();
        let report = amgr.tick(2).unwrap();
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].1.modified, 1);
        // The agent's own write must not re-trigger it next tick.
        assert!(!amgr.tick(3).unwrap().fired());
    }

    #[test]
    fn change_seq_advances_per_commit() {
        let db = db();
        let before = db.change_seq();
        let mut n = Note::document("Ticket");
        n.set("Status", Value::text("open"));
        db.save(&mut n).unwrap();
        assert_eq!(db.change_seq(), before + 1);
        {
            let _guard = db.begin_batch();
            let mut a = Note::document("Ticket");
            a.set("Status", Value::text("a"));
            db.save(&mut a).unwrap();
            let mut b = Note::document("Ticket");
            b.set("Status", Value::text("b"));
            db.save(&mut b).unwrap();
            // Commits count even while dispatch is buffered.
            assert_eq!(db.change_seq(), before + 3);
        }
    }

    #[test]
    fn agents_replicate_and_run_remotely() {
        let a = std::sync::Arc::new(db());
        let b = std::sync::Arc::new(
            Database::open_in_memory(
                DbConfig::new("T", ReplicaId(1), ReplicaId(3)),
                LogicalClock::starting_at(domino_types::Timestamp(99)),
            )
            .unwrap(),
        );
        save_agent(&a, &escalator()).unwrap();
        let mut n = Note::document("Ticket");
        n.set("Age", Value::Number(40.0));
        n.set("Status", Value::text("open"));
        a.save(&mut n).unwrap();
        // Agents are notes: they replicate like everything else. (Using the
        // low-level apply path to avoid a dev-dependency cycle on
        // domino-replica.)
        for c in a.changed_since(domino_types::Timestamp::ZERO).unwrap() {
            let note = a.open_note(c.id).unwrap();
            b.save_replicated(note).unwrap();
        }
        let agents = stored_agents(&b).unwrap();
        assert_eq!(agents.len(), 1);
        let report = agents[0].run(&b, "remote").unwrap();
        assert_eq!(report.modified, 1);
    }
}
