//! The Notes database: notes + design + ACL + deletion stubs in one store.
//!
//! A [`Database`] owns a storage engine (with WAL), a [`NoteStore`], and a
//! clock. It is identified two ways, as in Domino:
//!
//! * the **replica id** — shared by every replica of the *same* database;
//!   replication refuses to pair databases with different replica ids,
//! * the **instance id** — unique per physical replica; it seeds UNID and
//!   note-id generation so ids never collide across replicas.
//!
//! Deleting a note leaves a [`DeletionStub`] carrying the note's UNID and a
//! bumped sequence number, so the deletion itself replicates; stubs are
//! purged after the database's *purge interval* (E8 reproduces the classic
//! anomaly when that interval is shorter than the replication interval).
//!
//! Change observers ([`Database::subscribe`]) receive every save/delete
//! after the transaction commits — this is how view indexes and the
//! full-text index stay incremental. Bulk writers wrap their work in
//! [`Database::begin_batch`]: events buffer until the batch guard drops,
//! are coalesced (last write per UNID wins, with the surviving event's
//! `old` patched to the pre-batch state), and batch observers
//! ([`Database::subscribe_batch`]) then receive the whole slice at once —
//! fanned out across observers in parallel — so a view index evaluates a
//! thousand-save import as one parallel batch instead of a thousand
//! single-document updates.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;
use rayon::prelude::*;

use domino_formula::{EvalEnv, Formula};
use domino_obs as obs;
use domino_security::Acl;
use domino_storage::{Engine, EngineConfig, MemDisk, NoteStore, Segment};
use domino_types::{
    Clock, DominoError, ItemFlags, LogicalClock, NoteClass, NoteId, Oid, ReplicaId, Result,
    Timestamp, Unid, Value,
};
use domino_wal::MemLogStore;

use crate::lock::{ExclusiveGuard, LockStats, LockTable};
use crate::merkle::MerkleSummary;
use crate::mvcc::{Snapshot, SnapshotStats, VersionStore};
use crate::note::{record_is_stub, DeletionStub, Note};
use crate::revision;

use domino_types::ContentHash;

/// Registry handles for note-CRUD and compaction telemetry, summed
/// across every open database in the process.
struct Metrics {
    saved: &'static obs::Counter,
    deleted: &'static obs::Counter,
    opened: &'static obs::Counter,
    save_micros: &'static obs::Histogram,
    compact_runs: &'static obs::Counter,
    compact_notes_copied: &'static obs::Counter,
    compact_bytes_reclaimed: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        saved: obs::counter("Database.Notes.Saved"),
        deleted: obs::counter("Database.Notes.Deleted"),
        opened: obs::counter("Database.Notes.Opened"),
        save_micros: obs::histogram("Database.Save.Micros"),
        compact_runs: obs::counter("Database.Compact.Runs"),
        compact_notes_copied: obs::counter("Database.Compact.NotesCopied"),
        compact_bytes_reclaimed: obs::counter("Database.Compact.BytesReclaimed"),
    })
}

/// Tree slot for the modified-time index: key `(seq_time << 32) | note_id`.
const TREE_SEQ_INDEX: usize = 2;
/// User slot holding the shared replica (lineage) id.
const SLOT_LINEAGE: usize = 2;
/// User slot holding the purge interval in ticks.
const SLOT_PURGE: usize = 3;
/// User slot holding the per-open UNID disambiguation counter seed.
const SLOT_ACL_NOTE: usize = 4;

/// Default purge interval (ticks). Domino defaults to 90 days of its
/// replication-cutoff setting; any value works with the logical clock.
pub const DEFAULT_PURGE_INTERVAL: u64 = 1_000_000;

/// Default per-note lock acquisition timeout (the deadlock backstop).
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(5);

/// Sentinel lock key used when the per-note lock table is disabled:
/// every writer queues on this one key, reproducing the single-writer
/// database semaphore (the E16 baseline). Generated UNIDs embed a
/// timestamp and replica id, so no real note ever collides with it.
const GLOBAL_WRITE_KEY: Unid = Unid(0);

/// A change applied to the database.
#[derive(Debug, Clone)]
pub enum ChangeEvent {
    /// A note was created or updated. `old` is `None` for creations.
    Saved { old: Option<Note>, new: Note },
    /// A note was deleted, leaving `stub`.
    Deleted { old: Note, stub: DeletionStub },
}

type Observer = Arc<dyn Fn(&ChangeEvent) + Send + Sync>;

/// An observer that receives a whole coalesced commit batch at once
/// (registered with [`Database::subscribe_batch`]). Outside a batch every
/// change arrives as a one-event slice, so a batch observer sees *every*
/// change either way.
pub type BatchObserver = Arc<dyn Fn(&[ChangeEvent]) + Send + Sync>;

/// Event buffering while a [`BatchGuard`] is open.
#[derive(Default)]
struct BatchState {
    /// Nesting depth of open batch guards; events buffer while > 0.
    depth: u32,
    buffered: Vec<ChangeEvent>,
}

/// RAII handle for a change batch: events buffer while it lives and flush
/// (coalesced) when the outermost guard drops. Nesting is allowed — inner
/// guards extend the outer batch.
pub struct BatchGuard<'a> {
    db: &'a Database,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        let flushed = {
            let mut b = self.db.batch_state.lock();
            b.depth -= 1;
            if b.depth == 0 {
                std::mem::take(&mut b.buffered)
            } else {
                Vec::new()
            }
        };
        if !flushed.is_empty() {
            self.db.dispatch(&coalesce(flushed));
        }
    }
}

/// Collapse a buffered batch to one event per UNID: the last event wins
/// (in last-occurrence order), and a surviving `Saved` gets its `old`
/// patched to the note's *pre-batch* state, so replaying the coalesced
/// batch moves observers from the pre-batch state to the post-batch state
/// exactly as replaying every event would. A `Deleted` for a note created
/// inside the batch survives as-is; removing a never-seen note is a no-op
/// for observers.
fn coalesce(events: Vec<ChangeEvent>) -> Vec<ChangeEvent> {
    if events.len() <= 1 {
        return events;
    }
    let mut first_prior: std::collections::HashMap<Unid, Option<Note>> = Default::default();
    let mut last_idx: std::collections::HashMap<Unid, usize> = Default::default();
    for (i, e) in events.iter().enumerate() {
        let (unid, prior) = match e {
            ChangeEvent::Saved { old, new } => (new.unid(), old.clone()),
            ChangeEvent::Deleted { old, .. } => (old.unid(), Some(old.clone())),
        };
        first_prior.entry(unid).or_insert(prior);
        last_idx.insert(unid, i);
    }
    let mut out = Vec::with_capacity(last_idx.len());
    for (i, e) in events.into_iter().enumerate() {
        let unid = match &e {
            ChangeEvent::Saved { new, .. } => new.unid(),
            ChangeEvent::Deleted { old, .. } => old.unid(),
        };
        if last_idx[&unid] != i {
            continue;
        }
        out.push(match e {
            ChangeEvent::Saved { new, .. } => ChangeEvent::Saved {
                old: first_prior.remove(&unid).flatten(),
                new,
            },
            deleted => deleted,
        });
    }
    out
}

/// Summary entry for replication: one changed thing since a cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangedNote {
    pub id: NoteId,
    pub oid: Oid,
    pub is_stub: bool,
}

/// How `Database::open` seeds the snapshot map and Merkle summary from
/// pre-existing engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedMode {
    /// Read only each note's summary segment at open; bodies load on
    /// first read (and writers backfill pre-images before overwriting).
    /// Opening a body-heavy database touches no body pages at all.
    #[default]
    Lazy,
    /// Load every note in full at open (the pre-lazy behavior, kept for
    /// comparison — experiment E2 measures the difference).
    Eager,
}

/// Configuration for opening a database.
#[derive(Clone)]
pub struct DbConfig {
    pub title: String,
    /// Lineage id shared by all replicas of this database.
    pub replica_id: ReplicaId,
    /// Unique id of this physical replica.
    pub instance_id: ReplicaId,
    pub purge_interval: u64,
    pub engine: EngineConfig,
    /// How long a writer waits for a contended note lock before giving
    /// up with [`DominoError::Unavailable`].
    pub lock_timeout: Duration,
    /// Per-note write locks (default). When `false`, every writer
    /// serializes on one global lock — the pre-concurrency behavior,
    /// kept for comparison (experiment E16).
    pub use_lock_table: bool,
    /// Snapshot/Merkle seeding strategy at open (default: lazy).
    pub seed_mode: SeedMode,
}

impl DbConfig {
    pub fn new(title: &str, replica_id: ReplicaId, instance_id: ReplicaId) -> DbConfig {
        DbConfig {
            title: title.to_string(),
            replica_id,
            instance_id,
            purge_interval: DEFAULT_PURGE_INTERVAL,
            engine: EngineConfig::default(),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            use_lock_table: true,
            seed_mode: SeedMode::default(),
        }
    }

    pub fn with_purge_interval(mut self, ticks: u64) -> DbConfig {
        self.purge_interval = ticks;
        self
    }

    pub fn with_engine(mut self, engine: EngineConfig) -> DbConfig {
        self.engine = engine;
        self
    }

    pub fn with_lock_timeout(mut self, timeout: Duration) -> DbConfig {
        self.lock_timeout = timeout;
        self
    }

    pub fn with_lock_table(mut self, enabled: bool) -> DbConfig {
        self.use_lock_table = enabled;
        self
    }

    pub fn with_seed_mode(mut self, mode: SeedMode) -> DbConfig {
        self.seed_mode = mode;
        self
    }
}

struct DbInner {
    engine: Engine,
    store: NoteStore,
    title: String,
    replica_id: ReplicaId,
    instance_id: ReplicaId,
    purge_interval: u64,
    unid_counter: u16,
    unread: std::collections::HashMap<String, std::collections::HashSet<Unid>>,
}

/// Handle to a background checkpointer thread started by
/// [`Database::start_checkpointer`]. Stops and joins the thread on drop.
pub struct CheckpointerHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CheckpointerHandle {
    /// Stop the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CheckpointerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A Notes database. Thread-safe; share via `Arc<Database>`.
///
/// Concurrency model (DESIGN.md §concurrency): writers take a per-note
/// lock from `locks`, then the `inner` engine mutex for the actual
/// transaction, and publish every committed state into `versions`.
/// Readers pin a [`Snapshot`] from `versions` and never touch either
/// writer lock. Lock order is note lock → `inner` → version map.
pub struct Database {
    inner: Arc<Mutex<DbInner>>,
    observers: Mutex<Vec<Observer>>,
    batch_observers: Mutex<Vec<BatchObserver>>,
    batch_state: Mutex<BatchState>,
    clock: LogicalClock,
    versions: Arc<VersionStore>,
    /// Merkle summary over UNID space (`root → buckets → (unid, head)`),
    /// updated in the same critical section that publishes each commit
    /// into `versions` — so the digests always describe a committed
    /// prefix of the change sequence.
    merkle: Mutex<MerkleSummary>,
    locks: LockTable,
    lock_enabled: bool,
}

impl Database {
    /// Open an in-memory database (fresh MemDisk + MemLogStore).
    pub fn open_in_memory(config: DbConfig, clock: LogicalClock) -> Result<Database> {
        Database::open(
            Box::new(MemDisk::new()),
            Some(Box::new(MemLogStore::new())),
            config,
            clock,
        )
    }

    /// Open a real on-disk database: the single NSF file at `path` plus
    /// its transaction log as a sibling file with a `.txn` extension
    /// (Domino keeps its log outside the NSF too; the superblock carries
    /// the recovery-start LSN). If the database crashed, the on-disk log
    /// tail is replayed here and exactly the committed prefix survives.
    pub fn open_path(
        path: &std::path::Path,
        config: DbConfig,
        clock: LogicalClock,
    ) -> Result<Database> {
        let disk = domino_storage::NsfFile::open(path)?;
        let log = domino_wal::FileLogStore::open(&path.with_extension("txn"))?;
        Database::open(Box::new(disk), Some(Box::new(log)), config, clock)
    }

    /// Open over explicit disk/log stores (used for crash/reopen tests and
    /// file-backed databases).
    pub fn open(
        disk: Box<dyn domino_storage::Disk>,
        log: Option<Box<dyn domino_wal::LogStore>>,
        config: DbConfig,
        clock: LogicalClock,
    ) -> Result<Database> {
        let mut engine = Engine::open(disk, log, config.engine.clone())?;
        let mut tx = engine.begin()?;
        let store = NoteStore::open(&mut engine, &mut tx, config.instance_id)?;
        // Persist lineage + purge settings on first open.
        if engine.user_slot(SLOT_LINEAGE)? == 0 {
            engine.set_user_slot(&mut tx, SLOT_LINEAGE, config.replica_id.0)?;
            engine.set_user_slot(&mut tx, SLOT_PURGE, config.purge_interval)?;
        }
        let replica_id = ReplicaId(engine.user_slot(SLOT_LINEAGE)?);
        let purge_interval = engine.user_slot(SLOT_PURGE)?;
        let instance_id = store.replica_id(&mut engine)?;
        // The seq index tree.
        domino_storage::BTree::open(&mut engine, &mut tx, TREE_SEQ_INDEX)?;
        engine.commit(tx)?;

        let mut inner = DbInner {
            engine,
            store,
            title: config.title,
            replica_id,
            instance_id,
            purge_interval,
            unid_counter: 0,
            unread: Default::default(),
        };

        // Seed the version map with pre-existing engine state at seq 0,
        // so snapshots of a reopened (or crash-recovered) database see
        // everything that survived — and the Merkle summary with every
        // surviving head (live notes *and* deletion stubs). Both the
        // Merkle head and the snapshot identity of a note derive entirely
        // from its summary items (revision chain, OID, truncation marker
        // are all summary), so lazy mode reads *only* the summary segment
        // here — a body-heavy database opens without touching one body
        // page — and marks notes with a stored body segment as elided
        // for read-time hydration.
        let versions = Arc::new(VersionStore::new());
        let mut merkle = MerkleSummary::new();
        let mut ids = Vec::new();
        inner.store.for_each_note(&mut inner.engine, |id| {
            ids.push(id);
            true
        })?;
        for id in ids {
            let Some(bytes) = inner.store.get(&mut inner.engine, id, Segment::Summary)? else {
                continue;
            };
            if record_is_stub(&bytes) {
                let stub = DeletionStub::decode(id, &bytes)?;
                merkle.set_head(stub.oid.unid, Some(revision::stub_head(&stub.oid)));
                continue;
            }
            match config.seed_mode {
                SeedMode::Lazy => {
                    let note = Note::decode(id, &bytes, None)?;
                    let elided = inner
                        .store
                        .has_segment(&mut inner.engine, id, Segment::Body)?;
                    merkle.set_head(note.unid(), Some(revision::merkle_head(&note)));
                    versions.seed(note.unid(), id, Arc::new(note), elided);
                }
                SeedMode::Eager => {
                    let body = inner.store.get(&mut inner.engine, id, Segment::Body)?;
                    let note = Note::decode(id, &bytes, body.as_deref())?;
                    merkle.set_head(note.unid(), Some(revision::merkle_head(&note)));
                    versions.seed(note.unid(), id, Arc::new(note), false);
                }
            }
        }
        versions.set_acl_note(inner.engine.user_slot(SLOT_ACL_NOTE)?);

        let inner = Arc::new(Mutex::new(inner));
        let loader_inner = Arc::clone(&inner);
        versions.set_body_loader(Arc::new(move |id| loader_inner.lock().load(id)));

        Ok(Database {
            inner,
            observers: Mutex::new(Vec::new()),
            batch_observers: Mutex::new(Vec::new()),
            batch_state: Mutex::new(BatchState::default()),
            clock,
            versions,
            merkle: Mutex::new(merkle),
            locks: LockTable::new(config.lock_timeout),
            lock_enabled: config.use_lock_table,
        })
    }

    // ------------------------------------------------------------------
    // identity & configuration
    // ------------------------------------------------------------------

    pub fn title(&self) -> String {
        self.inner.lock().title.clone()
    }

    /// Lineage id (same across all replicas of this database).
    pub fn replica_id(&self) -> ReplicaId {
        self.inner.lock().replica_id
    }

    /// This physical replica's unique id.
    pub fn instance_id(&self) -> ReplicaId {
        self.inner.lock().instance_id
    }

    pub fn purge_interval(&self) -> u64 {
        self.inner.lock().purge_interval
    }

    pub fn set_purge_interval(&self, ticks: u64) -> Result<()> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        g.purge_interval = ticks;
        let mut tx = g.engine.begin()?;
        g.engine.set_user_slot(&mut tx, SLOT_PURGE, ticks)?;
        g.engine.commit(tx)
    }

    /// The database clock (shared; replication observes remote stamps
    /// through it).
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Register a change observer (views, full-text index, cluster
    /// replicator). Called after each commit, outside internal locks.
    pub fn subscribe(&self, f: Observer) {
        self.observers.lock().push(f);
    }

    /// Register a batch observer: it receives every change, but grouped —
    /// a one-event slice per commit normally, the whole coalesced batch
    /// when changes happen under [`Database::begin_batch`]. Multiple batch
    /// observers are invoked in parallel (each still sees events in order).
    pub fn subscribe_batch(&self, f: BatchObserver) {
        self.batch_observers.lock().push(f);
    }

    /// Start buffering change events. Events from every save/delete made
    /// while the returned guard lives are coalesced (last write per UNID
    /// wins) and delivered to observers together when the guard drops.
    /// Guards nest; the outermost drop flushes.
    pub fn begin_batch(&self) -> BatchGuard<'_> {
        self.batch_state.lock().depth += 1;
        BatchGuard { db: self }
    }

    /// The database *change sequence*: a process-local counter bumped once
    /// per committed save/delete (batched or not). Pollers that need a
    /// cheap "has anything changed since I last looked?" answer — the HTTP
    /// task's command cache, `OnUpdate` agent scheduling — compare the
    /// value they captured against the current one instead of subscribing.
    /// Counts commits, not dispatches: it advances even while events are
    /// buffered under [`Database::begin_batch`].
    pub fn change_seq(&self) -> u64 {
        self.versions.seq()
    }

    /// Pin a read [`Snapshot`] at the current change sequence. Snapshot
    /// reads resolve against the versioned note map and never take the
    /// writer lock; drop the snapshot to release its GC pin.
    pub fn snapshot(&self) -> Snapshot {
        self.versions.pin()
    }

    /// `Db.Snapshot.*` counters plus this database's retained-version
    /// count.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.versions.stats()
    }

    /// Snapshots of *this* database currently pinned.
    pub fn active_snapshots(&self) -> usize {
        self.versions.active_pins()
    }

    /// Process-wide `Db.Lock.*` counters.
    pub fn lock_stats(&self) -> LockStats {
        LockTable::stats()
    }

    /// Take the write lock for a note-mutating operation. With the lock
    /// table enabled, existing notes lock on their UNID (independent
    /// writers proceed in parallel) and drafts lock nothing — a fresh
    /// UNID is unreachable by any other writer. With it disabled, every
    /// writer queues on one global key.
    fn write_lock(&self, unid: Option<Unid>) -> Result<Option<ExclusiveGuard<'_>>> {
        if self.lock_enabled {
            match unid {
                Some(u) => Ok(Some(self.locks.exclusive(u)?)),
                None => Ok(None),
            }
        } else {
            Ok(Some(self.locks.exclusive(GLOBAL_WRITE_KEY)?))
        }
    }

    fn notify(&self, event: ChangeEvent) {
        {
            let mut b = self.batch_state.lock();
            if b.depth > 0 {
                b.buffered.push(event);
                return;
            }
        }
        self.dispatch(std::slice::from_ref(&event));
    }

    /// Deliver events to all observers: per-event subscribers first (in
    /// event order), then batch subscribers — fanned out across observers
    /// in parallel, since each maintains independent state (its own view
    /// index) and an import-sized batch is expensive per observer.
    fn dispatch(&self, events: &[ChangeEvent]) {
        if events.is_empty() {
            return;
        }
        let observers: Vec<Observer> = self.observers.lock().clone();
        for event in events {
            for obs in &observers {
                obs(event);
            }
        }
        let batch_obs: Vec<BatchObserver> = self.batch_observers.lock().clone();
        match batch_obs.len() {
            0 => {}
            1 => batch_obs[0](events),
            _ => batch_obs
                .par_iter()
                .with_min_len(1)
                .for_each(|obs| obs(events)),
        }
    }

    // ------------------------------------------------------------------
    // CRUD
    // ------------------------------------------------------------------

    /// Save a note: create it if it is a draft, else update the stored
    /// copy. On return the note carries its assigned ids and stamps.
    pub fn save(&self, note: &mut Note) -> Result<()> {
        let _span = obs::span!("Database.Save");
        let _save_time = m().save_micros.time_micros();
        // Truncated copies (bodies stripped by partial replication)
        // are read-only: saving one would replicate the body loss back
        // to full replicas.
        if note.is_truncated() {
            return Err(DominoError::InvalidArgument(format!(
                "note {} is a truncated copy; fetch it in full before editing",
                note.unid()
            )));
        }
        let lock = self.write_lock(if note.is_draft() {
            None
        } else {
            Some(note.unid())
        })?;
        let event = {
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            let now = self.clock.now();
            let old = if note.is_draft() {
                // Assign identity.
                let counter = g.unid_counter;
                g.unid_counter = g.unid_counter.wrapping_add(1);
                let unid = Unid::generate(g.instance_id, now, counter);
                note.oid = Oid::new(unid, now);
                note.created = now;
                note.modified = now;
                note.push_revision(g.instance_id);
                for it in note.items_raw_mut() {
                    it.revised = now;
                }
                None
            } else {
                let old = g
                    .load(note.id)?
                    .ok_or_else(|| DominoError::NotFound(format!("note {} vanished", note.id)))?;
                if old.unid() != note.unid() {
                    return Err(DominoError::InvalidArgument(
                        "note id/unid mismatch on save".into(),
                    ));
                }
                // Optimistic concurrency: saving from a stale revision is
                // rejected (replication handles cross-replica races by
                // materializing conflict documents instead).
                if old.oid != note.oid {
                    return Err(DominoError::UpdateConflict(format!(
                        "note {} was updated (stored seq {}, yours {})",
                        note.id, old.oid.seq, note.oid.seq
                    )));
                }
                note.oid.bump(now);
                note.modified = now;
                note.push_revision(g.instance_id);
                // Field-level revision stamps: only changed items advance.
                for it in note.items_raw_mut() {
                    let prior = old
                        .items_raw()
                        .iter()
                        .find(|o| o.name.eq_ignore_ascii_case(&it.name));
                    match prior {
                        Some(p) if p.value == it.value && p.flags == it.flags => {
                            it.revised = p.revised;
                        }
                        _ => it.revised = now,
                    }
                }
                // Items dropped entirely (vs tombstoned) would break
                // field-level replication; re-add them as tombstones.
                let missing: Vec<String> = old
                    .items_raw()
                    .iter()
                    .filter(|o| {
                        !note
                            .items_raw()
                            .iter()
                            .any(|n| n.name.eq_ignore_ascii_case(&o.name))
                    })
                    .map(|o| o.name.clone())
                    .collect();
                for name in missing {
                    let mut tomb = domino_types::Item::new(name, Value::text(""));
                    tomb.flags = ItemFlags::DELETED;
                    tomb.revised = now;
                    note.set_item(tomb);
                }
                Some(old)
            };
            // Content-address this revision: hash the stamped items with
            // the previous head as parent and append to the unbounded
            // chain (drafts start a fresh chain).
            let parents: Vec<ContentHash> = revision::head_hash(note).into_iter().collect();
            let rev_hash = revision::content_hash_of(note, &parents);
            revision::push_head(note, rev_hash, note.oid.seq_time);
            g.persist(note, old.is_none())?;
            // A lazily seeded version about to be superseded gets its
            // full pre-image first, so pinned snapshots can still read
            // the old body after the engine record is overwritten.
            if let Some(o) = &old {
                self.versions.backfill(o.unid(), o);
            }
            // Publish while still holding the engine lock: commit order
            // equals change-sequence order, which is what makes snapshot
            // reads linearizable. The Merkle summary updates in the same
            // critical section for the same reason.
            self.versions
                .publish(note.unid(), note.id, Some(Arc::new(note.clone())));
            self.merkle
                .lock()
                .set_head(note.unid(), Some(revision::merkle_head(note)));
            ChangeEvent::Saved {
                old,
                new: note.clone(),
            }
        };
        drop(lock);
        m().saved.inc();
        self.notify(event);
        Ok(())
    }

    /// Write a note exactly as received from another replica: identity,
    /// stamps, and item revisions are preserved. Replaces any existing
    /// note *or stub* with the same UNID.
    pub fn save_replicated(&self, mut note: Note) -> Result<Note> {
        let lock = self.write_lock(Some(note.unid()))?;
        let event = {
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            self.clock.observe(note.oid.seq_time);
            self.clock.observe(note.modified);
            let existing = store.lookup_unid(&mut g.engine, note.unid())?;
            let old = match existing {
                Some(id) => {
                    note.id = id;
                    g.load(id)? // None if it was a stub
                }
                None => {
                    // The incoming note carries the *source's* local id;
                    // it means nothing here — allocate our own.
                    note.id = NoteId::NONE;
                    None
                }
            };
            if let Some(o) = &old {
                self.versions.backfill(o.unid(), o);
            }
            g.persist(&mut note, existing.is_none())?;
            self.versions
                .publish(note.unid(), note.id, Some(Arc::new(note.clone())));
            self.merkle
                .lock()
                .set_head(note.unid(), Some(revision::merkle_head(&note)));
            ChangeEvent::Saved {
                old,
                new: note.clone(),
            }
        };
        drop(lock);
        let note = match &event {
            ChangeEvent::Saved { new, .. } => new.clone(),
            _ => unreachable!(),
        };
        m().saved.inc();
        self.notify(event);
        Ok(note)
    }

    /// Fetch a note by local id. Deletion stubs read as `NotFound`.
    pub fn open_note(&self, id: NoteId) -> Result<Note> {
        m().opened.inc();
        self.inner
            .lock()
            .load(id)?
            .ok_or_else(|| DominoError::NotFound(format!("note {id}")))
    }

    /// Fetch only the summary items (cheap: touches no body pages).
    pub fn open_summary(&self, id: NoteId) -> Result<Note> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        let summary = store
            .get(&mut g.engine, id, Segment::Summary)?
            .ok_or_else(|| DominoError::NotFound(format!("note {id}")))?;
        if record_is_stub(&summary) {
            return Err(DominoError::NotFound(format!("note {id} is deleted")));
        }
        Note::decode(id, &summary, None)
    }

    /// Fetch the deletion stub at a local id (error if the record is a
    /// live note or absent).
    pub fn open_stub(&self, id: NoteId) -> Result<DeletionStub> {
        let mut g = self.inner.lock();
        let store = g.store;
        let summary = store
            .get(&mut g.engine, id, Segment::Summary)?
            .ok_or_else(|| DominoError::NotFound(format!("record {id}")))?;
        if !record_is_stub(&summary) {
            return Err(DominoError::NotFound(format!(
                "{id} is not a deletion stub"
            )));
        }
        DeletionStub::decode(id, &summary)
    }

    pub fn open_by_unid(&self, unid: Unid) -> Result<Note> {
        let id = {
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            store.lookup_unid(&mut g.engine, unid)?
        }
        .ok_or_else(|| DominoError::NotFound(format!("unid {unid}")))?;
        self.open_note(id)
    }

    /// Local id bound to a UNID (note or stub), if any.
    pub fn id_of_unid(&self, unid: Unid) -> Result<Option<NoteId>> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        store.lookup_unid(&mut g.engine, unid)
    }

    /// Delete a note, leaving a deletion stub.
    pub fn delete(&self, id: NoteId) -> Result<DeletionStub> {
        // Resolve the lock key (the UNID) from the version map — without
        // touching the engine lock. The authoritative load happens again
        // under the lock; a racing delete surfaces as NotFound there.
        let unid = self
            .versions
            .current_unid(id)
            .ok_or_else(|| DominoError::NotFound(format!("note {id}")))?;
        let lock = self.write_lock(Some(unid))?;
        let event = {
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            let old = g
                .load(id)?
                .ok_or_else(|| DominoError::NotFound(format!("note {id}")))?;
            let now = self.clock.now();
            let mut oid = old.oid;
            oid.bump(now);
            let stub = DeletionStub {
                id,
                oid,
                deleted_at: now,
            };
            self.versions.backfill(old.unid(), &old);
            g.write_stub(&stub, Some(old.modified))?;
            self.versions.publish(old.unid(), id, None);
            self.merkle
                .lock()
                .set_head(old.unid(), Some(revision::stub_head(&stub.oid)));
            ChangeEvent::Deleted { old, stub }
        };
        drop(lock);
        let stub = match &event {
            ChangeEvent::Deleted { stub, .. } => *stub,
            _ => unreachable!(),
        };
        m().deleted.inc();
        self.notify(event);
        Ok(stub)
    }

    /// Apply a deletion received from another replica. The stub's own OID
    /// is preserved. Returns the locally recorded stub, or `None` if the
    /// local copy is *newer* than the deletion (the caller should treat
    /// that as a conflict).
    pub fn apply_remote_deletion(&self, remote: &DeletionStub) -> Result<Option<DeletionStub>> {
        let lock = self.write_lock(Some(remote.oid.unid))?;
        let event = {
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            self.clock.observe(remote.oid.seq_time);
            let existing = store.lookup_unid(&mut g.engine, remote.oid.unid)?;
            match existing {
                Some(id) => {
                    let old = g.load(id)?;
                    if let Some(old_note) = &old {
                        if old_note.oid.winner_key() > remote.oid.winner_key() {
                            return Ok(None);
                        }
                    }
                    let stub = DeletionStub { id, ..*remote };
                    let old_modified = old.as_ref().map(|n| n.modified);
                    if let Some(o) = &old {
                        self.versions.backfill(o.unid(), o);
                    }
                    g.write_stub(&stub, old_modified)?;
                    if old.is_some() {
                        // Retract the live note from snapshot visibility;
                        // re-stubbing a stub changes nothing readers see.
                        self.versions.publish(remote.oid.unid, id, None);
                    }
                    self.merkle
                        .lock()
                        .set_head(remote.oid.unid, Some(revision::stub_head(&stub.oid)));
                    old.map(|old| ChangeEvent::Deleted { old, stub })
                }
                None => {
                    // Never seen this note: record the stub so the deletion
                    // keeps propagating.
                    let mut tx = g.engine.begin()?;
                    let id = store.alloc_note_id(&mut g.engine, &mut tx)?;
                    g.engine.commit(tx)?;
                    let stub = DeletionStub { id, ..*remote };
                    g.write_stub(&stub, None)?;
                    self.merkle
                        .lock()
                        .set_head(remote.oid.unid, Some(revision::stub_head(&stub.oid)));
                    None
                }
            }
        };
        drop(lock);
        let stub = event.as_ref().map(|e| match e {
            ChangeEvent::Deleted { stub, .. } => *stub,
            _ => unreachable!(),
        });
        if let Some(event) = event {
            self.notify(event);
        }
        Ok(stub.or(Some(*remote)))
    }

    // ------------------------------------------------------------------
    // enumeration & search
    // ------------------------------------------------------------------

    /// Ids of all live notes of a class (stubs excluded). `None` = all
    /// classes.
    pub fn note_ids(&self, class: Option<NoteClass>) -> Result<Vec<NoteId>> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        let mut ids = Vec::new();
        let mut err = None;
        #[allow(unused_variables)]
        let store = g.store;
        store.for_each_note(&mut g.engine, |id| {
            ids.push(id);
            true
        })?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            match g.load_summary(id) {
                Ok(Some(n)) if class.is_none() || Some(n.class) == class => out.push(id),
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Count of live documents.
    pub fn document_count(&self) -> Result<usize> {
        Ok(self.note_ids(Some(NoteClass::Document))?.len())
    }

    /// All documents matching a selection formula (summary-only
    /// evaluation, like a view refresh).
    pub fn search(&self, formula: &Formula, env: &EvalEnv) -> Result<Vec<Note>> {
        let ids = self.note_ids(Some(NoteClass::Document))?;
        let mut out = Vec::new();
        for id in ids {
            let note = self.open_summary(id)?;
            if formula.selects(&note, env)? {
                out.push(self.open_note(id)?);
            }
        }
        Ok(out)
    }

    /// Everything (notes and stubs) whose sequence time is `>= cutoff`,
    /// ascending by time — the replication candidate set.
    pub fn changed_since(&self, cutoff: Timestamp) -> Result<Vec<ChangedNote>> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        let lo = (cutoff.0 as u128) << 32;
        let mut ids = Vec::new();
        let seq = domino_storage::BTree::open_existing(&mut g.engine, TREE_SEQ_INDEX)?;
        seq.scan(&mut g.engine, lo, u128::MAX, |_, v| {
            ids.push(NoteId(v as u32));
            true
        })?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(entry) = g.changed_entry(id)? {
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// Replication-candidate entries for an explicit UNID set (the
    /// digest-negotiated path): only the named notes/stubs are touched,
    /// so a negotiated pull costs O(differing) engine reads instead of a
    /// cutoff scan. Unknown UNIDs are skipped. Entries come back in
    /// `(seq_time, unid)` order — the same order `changed_since`-based
    /// cursors batch in.
    pub fn changed_entries_for(&self, unids: &[Unid]) -> Result<Vec<ChangedNote>> {
        let mut g = self.inner.lock();
        let store = g.store;
        let mut out = Vec::with_capacity(unids.len());
        for unid in unids {
            let Some(id) = store.lookup_unid(&mut g.engine, *unid)? else {
                continue;
            };
            if let Some(entry) = g.changed_entry(id)? {
                out.push(entry);
            }
        }
        out.sort_by_key(|c| (c.oid.seq_time, c.oid.unid.0));
        Ok(out)
    }

    /// Root digest of the Merkle summary: equal on two replicas iff they
    /// hold identical `(unid, head hash)` sets.
    pub fn merkle_root(&self) -> ContentHash {
        self.merkle.lock().root()
    }

    /// Digests of the non-empty Merkle buckets, ascending by index.
    pub fn merkle_bucket_digests(&self) -> Vec<(u32, ContentHash)> {
        self.merkle.lock().bucket_digests()
    }

    /// `(unid, head hash)` entries of one Merkle bucket.
    pub fn merkle_bucket_entries(&self, bucket: u32) -> Vec<(Unid, ContentHash)> {
        self.merkle.lock().bucket_entries(bucket)
    }

    /// Entries currently in the Merkle summary (live notes + stubs).
    pub fn merkle_len(&self) -> usize {
        self.merkle.lock().len()
    }

    /// The head hash currently recorded for a UNID (note or stub), if
    /// any.
    pub fn head_hash(&self, unid: Unid) -> Option<ContentHash> {
        self.merkle.lock().head(unid)
    }

    /// All deletion stubs.
    pub fn stubs(&self) -> Result<Vec<DeletionStub>> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        let mut ids = Vec::new();
        #[allow(unused_variables)]
        let store = g.store;
        store.for_each_note(&mut g.engine, |id| {
            ids.push(id);
            true
        })?;
        let mut out = Vec::new();
        for id in ids {
            let summary = store.get(&mut g.engine, id, Segment::Summary)?;
            if let Some(bytes) = summary {
                if record_is_stub(&bytes) {
                    out.push(DeletionStub::decode(id, &bytes)?);
                }
            }
        }
        Ok(out)
    }

    /// Remove stubs older than the purge interval. Returns how many were
    /// purged. After a stub is purged, the deletion can no longer
    /// propagate — replicating with a stale replica may resurrect the
    /// document (experiment E8).
    pub fn purge_stubs(&self) -> Result<usize> {
        let now = self.clock.peek();
        let horizon = Timestamp(now.0.saturating_sub(self.purge_interval()));
        let stubs = self.stubs()?;
        let mut purged = 0;
        for stub in stubs {
            if stub.deleted_at >= horizon {
                continue;
            }
            let lock = self.write_lock(Some(stub.oid.unid))?;
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            // Re-verify under the lock: the stub may have been purged or
            // resurrected (save_replicated) since it was listed.
            match store.get(&mut g.engine, stub.id, Segment::Summary)? {
                Some(bytes) if record_is_stub(&bytes) => {}
                _ => continue,
            }
            let mut tx = g.engine.begin()?;
            store.remove(&mut g.engine, &mut tx, stub.id)?;
            store.unbind_unid(&mut g.engine, &mut tx, stub.oid.unid)?;
            let seq = domino_storage::BTree::open_existing(&mut g.engine, TREE_SEQ_INDEX)?;
            seq.delete(&mut g.engine, &mut tx, seq_key(stub.oid.seq_time, stub.id))?;
            g.engine.commit(tx)?;
            // The purged UNID leaves the Merkle summary entirely: two
            // replicas that both purged it converge to equal digests.
            self.merkle.lock().set_head(stub.oid.unid, None);
            purged += 1;
            drop(g);
            drop(lock);
        }
        // Purged deletions also free their version-map tombstones (once
        // no snapshot pins them).
        self.versions.sweep();
        Ok(purged)
    }

    /// Response documents (direct children) of a note.
    pub fn responses_of(&self, parent: Unid) -> Result<Vec<NoteId>> {
        let ids = self.note_ids(Some(NoteClass::Document))?;
        let mut out = Vec::new();
        for id in ids {
            let n = self.open_summary(id)?;
            if n.parent() == Some(parent) {
                out.push(id);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // ACL
    // ------------------------------------------------------------------

    /// The database ACL (wide open until one is stored). Served from a
    /// snapshot, so access checks never wait on writers.
    pub fn acl(&self) -> Result<Acl> {
        self.snapshot().acl()
    }

    /// Store the ACL (as an ACL-class note, so it replicates).
    pub fn set_acl(&self, acl: &Acl) -> Result<()> {
        let acl_id = {
            let mut g = self.inner.lock();
            #[allow(unused_variables)]
            let store = g.store;
            g.engine.user_slot(SLOT_ACL_NOTE)?
        };
        let mut note = if acl_id != 0 {
            self.open_note(NoteId(acl_id as u32))?
        } else {
            Note::new(NoteClass::Acl)
        };
        note.set("Entries", Value::text_list(acl.to_lines()));
        self.save(&mut note)?;
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        let mut tx = g.engine.begin()?;
        g.engine
            .set_user_slot(&mut tx, SLOT_ACL_NOTE, note.id.0 as u64)?;
        g.engine.commit(tx)?;
        self.versions.set_acl_note(note.id.0 as u64);
        Ok(())
    }

    // ------------------------------------------------------------------
    // unread marks
    // ------------------------------------------------------------------

    /// Mark a note read for a user. (Unread tables are per-replica state
    /// and do not replicate, as in Notes.)
    pub fn mark_read(&self, user: &str, unid: Unid) {
        self.inner
            .lock()
            .unread
            .entry(user.to_lowercase())
            .or_default()
            .insert(unid);
    }

    pub fn is_read(&self, user: &str, unid: Unid) -> bool {
        self.inner
            .lock()
            .unread
            .get(&user.to_lowercase())
            .is_some_and(|s| s.contains(&unid))
    }

    /// UNIDs of documents the user has not read yet.
    pub fn unread_unids(&self, user: &str) -> Result<Vec<Unid>> {
        let ids = self.note_ids(Some(NoteClass::Document))?;
        let mut out = Vec::new();
        for id in ids {
            let unid = self.open_summary(id)?.unid();
            if !self.is_read(user, unid) {
                out.push(unid);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // maintenance
    // ------------------------------------------------------------------

    /// Write a fuzzy checkpoint (bounds restart-recovery work and
    /// truncates the durable log below the new redo point).
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.lock().engine.checkpoint()
    }

    /// Incremental fuzzy checkpoint: snapshot the dirty-page table, then
    /// write it back `pages_per_step` pages at a time, releasing the
    /// database lock between steps so writers interleave instead of
    /// stalling behind one big flush. No-op if a checkpoint is already in
    /// flight (e.g. the background checkpointer's).
    pub fn checkpoint_incremental(&self, pages_per_step: usize) -> Result<()> {
        {
            let mut g = self.inner.lock();
            if g.engine.checkpoint_in_progress() {
                return Ok(());
            }
            g.engine.begin_checkpoint()?;
        }
        loop {
            let more = self
                .inner
                .lock()
                .engine
                .checkpoint_step(pages_per_step.max(1))?;
            if !more {
                break;
            }
            // Lock released: queued writers run here.
            std::thread::yield_now();
        }
        self.inner.lock().engine.complete_checkpoint()
    }

    /// Spawn a background checkpointing thread that runs
    /// [`Database::checkpoint_incremental`] every `interval`. The returned
    /// handle stops and joins the thread when dropped (or via
    /// [`CheckpointerHandle::stop`]); the thread also exits on its own once
    /// the database is dropped.
    pub fn start_checkpointer(
        self: &Arc<Database>,
        interval: std::time::Duration,
        pages_per_step: usize,
    ) -> CheckpointerHandle {
        use std::sync::atomic::Ordering;
        let weak = Arc::downgrade(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let task_name = format!("checkpointer:{}", self.title());
        let handle = std::thread::spawn(move || {
            let task = domino_obs::register_task(&task_name, "Fuzzy checkpoint");
            // Sleep in short slices so stop() never waits a full interval.
            let slice = std::time::Duration::from_millis(5)
                .min(interval)
                .max(std::time::Duration::from_millis(1));
            let mut elapsed = std::time::Duration::ZERO;
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                elapsed += slice;
                if elapsed < interval {
                    continue;
                }
                elapsed = std::time::Duration::ZERO;
                let Some(db) = weak.upgrade() else { return };
                // Best-effort: a failed cycle (e.g. I/O error) is retried
                // at the next interval.
                let _ = db.checkpoint_incremental(pages_per_step);
                task.beat();
            }
        });
        CheckpointerHandle {
            stop,
            handle: Some(handle),
        }
    }

    /// Flush everything and truncate the log (clean shutdown).
    pub fn shutdown(&self) -> Result<()> {
        self.inner.lock().engine.shutdown()
    }

    /// Engine counters.
    pub fn engine_stats(&self) -> domino_storage::EngineStats {
        self.inner.lock().engine.stats()
    }

    /// Recovery stats from open, if restart recovery ran.
    pub fn recovery_stats(&self) -> Option<domino_wal::RecoveryStats> {
        self.inner.lock().engine.recovery
    }

    /// WAL counters (None when logging is off).
    pub fn log_stats(&self) -> Option<domino_wal::LogStats> {
        self.inner.lock().engine.wal().map(|w| w.stats())
    }

    /// Summary statistics for the database (the File → Database →
    /// Properties panel, roughly).
    pub fn info(&self) -> Result<DbInfo> {
        let mut documents = 0;
        let mut design_notes = 0;
        for id in self.note_ids(None)? {
            if self.open_summary(id)?.class == NoteClass::Document {
                documents += 1;
            } else {
                design_notes += 1;
            }
        }
        let stubs = self.stubs()?.len();
        let mut g = self.inner.lock();
        Ok(DbInfo {
            title: g.title.clone(),
            replica_id: g.replica_id,
            instance_id: g.instance_id,
            documents,
            design_notes,
            deletion_stubs: stubs,
            logical_bytes: g.engine.logical_bytes()?,
            purge_interval: g.purge_interval,
        })
    }

    /// Copy-style compaction (what `compact` does to an NSF): rebuild the
    /// database into fresh stores, carrying over every live note, stub,
    /// and identity field, and dropping all dead space (tombstoned heap
    /// records, emptied B-tree pages, the old log). Returns the new
    /// database and before/after disk sizes.
    pub fn compact_into(
        &self,
        disk: Box<dyn domino_storage::Disk>,
        log: Option<Box<dyn domino_wal::LogStore>>,
    ) -> Result<(Database, CompactStats)> {
        let mut stats = CompactStats {
            bytes_before: self.inner.lock().engine.logical_bytes()?,
            ..CompactStats::default()
        };
        let config = DbConfig {
            title: self.title(),
            replica_id: self.replica_id(),
            instance_id: self.instance_id(),
            purge_interval: self.purge_interval(),
            engine: self.inner.lock().engine.config().clone(),
            lock_timeout: self.locks.timeout(),
            use_lock_table: self.lock_enabled,
            seed_mode: SeedMode::default(),
        };
        let fresh = Database::open(disk, log, config, self.clock.clone())?;
        // Copy notes in note-id order, preserving identity and lineage
        // (save_replicated keeps OIDs/items byte-for-byte).
        for id in self.note_ids(None)? {
            let note = self.open_note(id)?;
            fresh.save_replicated(note)?;
            stats.notes_copied += 1;
        }
        for stub in self.stubs()? {
            fresh.apply_remote_deletion(&stub)?;
            stats.stubs_copied += 1;
        }
        // Preserve the local ACL-note pointer if one is set.
        let acl_slot = {
            let mut g = self.inner.lock();
            g.engine.user_slot(SLOT_ACL_NOTE)?
        };
        if acl_slot != 0 {
            fresh.set_acl(&self.acl()?)?;
        }
        fresh.checkpoint()?;
        stats.bytes_after = fresh.inner.lock().engine.logical_bytes()?;
        let reg = m();
        reg.compact_runs.inc();
        reg.compact_notes_copied.add(stats.notes_copied);
        reg.compact_bytes_reclaimed
            .add(stats.bytes_before.saturating_sub(stats.bytes_after));
        Ok((fresh, stats))
    }

    /// Pages a note's segments occupy (experiment accounting).
    pub fn pages_touched(&self, id: NoteId, summary_only: bool) -> Result<usize> {
        let mut g = self.inner.lock();
        #[allow(unused_variables)]
        let store = g.store;
        #[allow(unused_variables)]
        let store = g.store;
        let mut n = store.pages_touched(&mut g.engine, id, Segment::Summary)?;
        if !summary_only {
            n += store.pages_touched(&mut g.engine, id, Segment::Body)?;
        }
        Ok(n)
    }
}

/// Database properties snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbInfo {
    pub title: String,
    pub replica_id: ReplicaId,
    pub instance_id: ReplicaId,
    pub documents: usize,
    pub design_notes: usize,
    pub deletion_stubs: usize,
    pub logical_bytes: u64,
    pub purge_interval: u64,
}

/// What a compaction did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    pub notes_copied: u64,
    pub stubs_copied: u64,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

fn seq_key(ts: Timestamp, id: NoteId) -> u128 {
    ((ts.0 as u128) << 32) | id.0 as u128
}

impl DbInner {
    /// Load a full note; `None` for stubs.
    fn load(&mut self, id: NoteId) -> Result<Option<Note>> {
        let Some(summary) = self.store.get(&mut self.engine, id, Segment::Summary)? else {
            return Ok(None);
        };
        if record_is_stub(&summary) {
            return Ok(None);
        }
        let body = self.store.get(&mut self.engine, id, Segment::Body)?;
        Ok(Some(Note::decode(id, &summary, body.as_deref())?))
    }

    /// Load summary only; `None` for stubs.
    fn load_summary(&mut self, id: NoteId) -> Result<Option<Note>> {
        let Some(summary) = self.store.get(&mut self.engine, id, Segment::Summary)? else {
            return Ok(None);
        };
        if record_is_stub(&summary) {
            return Ok(None);
        }
        Ok(Some(Note::decode(id, &summary, None)?))
    }

    fn changed_entry(&mut self, id: NoteId) -> Result<Option<ChangedNote>> {
        let Some(summary) = self.store.get(&mut self.engine, id, Segment::Summary)? else {
            return Ok(None);
        };
        if record_is_stub(&summary) {
            let stub = DeletionStub::decode(id, &summary)?;
            Ok(Some(ChangedNote {
                id,
                oid: stub.oid,
                is_stub: true,
            }))
        } else {
            let note = Note::decode(id, &summary, None)?;
            Ok(Some(ChangedNote {
                id,
                oid: note.oid,
                is_stub: false,
            }))
        }
    }

    /// Write a note's records + indexes in one transaction. `is_new` means
    /// no UNID binding exists yet. The note's `id` may be NONE (assigned
    /// here).
    fn persist(&mut self, note: &mut Note, is_new: bool) -> Result<()> {
        let mut tx = self.engine.begin()?;
        let result = (|| {
            // Old seq-index entry (from whatever record is there now).
            let old_seq_ts = if note.id.is_none() {
                None
            } else {
                match self
                    .store
                    .get(&mut self.engine, note.id, Segment::Summary)?
                {
                    Some(bytes) if record_is_stub(&bytes) => {
                        Some(DeletionStub::decode(note.id, &bytes)?.oid.seq_time)
                    }
                    Some(bytes) => Some(Note::decode(note.id, &bytes, None)?.oid.seq_time),
                    None => None,
                }
            };
            if note.id.is_none() {
                note.id = self.store.alloc_note_id(&mut self.engine, &mut tx)?;
            }
            let id = note.id;
            self.store.put(
                &mut self.engine,
                &mut tx,
                id,
                Segment::Summary,
                &note.encode_summary(),
            )?;
            match note.encode_body() {
                Some(body) => {
                    self.store
                        .put(&mut self.engine, &mut tx, id, Segment::Body, &body)?
                }
                None => {
                    self.store
                        .remove_segment(&mut self.engine, &mut tx, id, Segment::Body)?;
                }
            }
            if is_new {
                self.store
                    .bind_unid(&mut self.engine, &mut tx, note.unid(), id)?;
            }
            let seq = domino_storage::BTree::open_existing(&mut self.engine, TREE_SEQ_INDEX)?;
            if let Some(old_ts) = old_seq_ts {
                seq.delete(&mut self.engine, &mut tx, seq_key(old_ts, id))?;
            }
            seq.insert(
                &mut self.engine,
                &mut tx,
                seq_key(note.oid.seq_time, id),
                id.0 as u64,
            )?;
            Ok(())
        })();
        match result {
            Ok(()) => self.engine.commit(tx),
            Err(e) => {
                self.engine.abort(tx)?;
                Err(e)
            }
        }
    }

    /// Replace a note record with a deletion stub. `old_modified` is the
    /// seq-index timestamp of the record being replaced (None if this UNID
    /// is new here).
    fn write_stub(&mut self, stub: &DeletionStub, _old_modified: Option<Timestamp>) -> Result<()> {
        let mut tx = self.engine.begin()?;
        let result = (|| {
            // Remove the old seq entry, whatever record type was there.
            let old_ts = match self
                .store
                .get(&mut self.engine, stub.id, Segment::Summary)?
            {
                Some(bytes) if record_is_stub(&bytes) => {
                    Some(DeletionStub::decode(stub.id, &bytes)?.oid.seq_time)
                }
                Some(bytes) => Some(Note::decode(stub.id, &bytes, None)?.oid.seq_time),
                None => None,
            };
            self.store.put(
                &mut self.engine,
                &mut tx,
                stub.id,
                Segment::Summary,
                &stub.encode(),
            )?;
            self.store
                .remove_segment(&mut self.engine, &mut tx, stub.id, Segment::Body)?;
            // Keep the UNID bound so later updates find the stub.
            let bound = self.store.lookup_unid(&mut self.engine, stub.oid.unid)?;
            if bound.is_none() {
                self.store
                    .bind_unid(&mut self.engine, &mut tx, stub.oid.unid, stub.id)?;
            }
            let seq = domino_storage::BTree::open_existing(&mut self.engine, TREE_SEQ_INDEX)?;
            if let Some(old_ts) = old_ts {
                seq.delete(&mut self.engine, &mut tx, seq_key(old_ts, stub.id))?;
            }
            seq.insert(
                &mut self.engine,
                &mut tx,
                seq_key(stub.oid.seq_time, stub.id),
                stub.id.0 as u64,
            )?;
            Ok(())
        })();
        match result {
            Ok(()) => self.engine.commit(tx),
            Err(e) => {
                self.engine.abort(tx)?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use domino_types::LogicalClock;
    use parking_lot::Mutex as PMutex;

    fn db() -> Database {
        Database::open_in_memory(
            DbConfig::new("B", ReplicaId(1), ReplicaId(9)),
            LogicalClock::new(),
        )
        .unwrap()
    }

    fn doc(db: &Database, subject: &str) -> Note {
        let mut n = Note::document("Doc");
        n.set("Subject", Value::text(subject));
        db.save(&mut n).unwrap();
        n
    }

    /// Collects every delivered slice for inspection.
    fn collecting_observer(db: &Database) -> Arc<PMutex<Vec<Vec<ChangeEvent>>>> {
        let seen: Arc<PMutex<Vec<Vec<ChangeEvent>>>> = Arc::new(PMutex::new(Vec::new()));
        let sink = seen.clone();
        db.subscribe_batch(Arc::new(move |events: &[ChangeEvent]| {
            sink.lock().push(events.to_vec());
        }));
        seen
    }

    #[test]
    fn unbatched_changes_arrive_as_single_event_slices() {
        let db = db();
        let seen = collecting_observer(&db);
        doc(&db, "a");
        doc(&db, "b");
        let batches = seen.lock();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn batch_buffers_and_coalesces_last_write_wins() {
        let db = db();
        let seen = collecting_observer(&db);
        let mut n = {
            let _guard = db.begin_batch();
            let mut n = doc(&db, "v1");
            n.set("Subject", Value::text("v2"));
            db.save(&mut n).unwrap();
            doc(&db, "other");
            assert!(
                seen.lock().is_empty(),
                "events must buffer inside the batch"
            );
            n
        };
        let batches = seen.lock();
        assert_eq!(batches.len(), 1, "one flush for the whole batch");
        let batch = &batches[0];
        assert_eq!(batch.len(), 2, "two saves of one note coalesce");
        // The twice-saved note survives as one creation with the final
        // content: old is the pre-batch state (absent), new is the last
        // write.
        let ev = batch
            .iter()
            .find(|e| matches!(e, ChangeEvent::Saved { new, .. } if new.unid() == n.unid()))
            .expect("coalesced save present");
        match ev {
            ChangeEvent::Saved { old, new } => {
                assert!(old.is_none());
                assert_eq!(new.get_text("Subject").as_deref(), Some("v2"));
            }
            _ => unreachable!(),
        }
        drop(batches);
        // The note remains saveable afterwards (batching is observer-side
        // only; storage state is unaffected).
        n.set("Subject", Value::text("v3"));
        db.save(&mut n).unwrap();
    }

    #[test]
    fn save_then_delete_in_batch_survives_as_delete() {
        let db = db();
        let before = doc(&db, "keep");
        let seen = collecting_observer(&db);
        {
            let _guard = db.begin_batch();
            let n = doc(&db, "gone");
            db.delete(n.id).unwrap();
            // An update to a pre-batch note: its coalesced `old` must be
            // the pre-batch content.
            let mut b2 = db.open_note(before.id).unwrap();
            b2.set("Subject", Value::text("kept-2"));
            db.save(&mut b2).unwrap();
        }
        let batches = seen.lock();
        assert_eq!(batches.len(), 1);
        let batch = &batches[0];
        assert_eq!(batch.len(), 2);
        assert!(batch
            .iter()
            .any(|e| matches!(e, ChangeEvent::Deleted { old, .. } if old.get_text("Subject").as_deref() == Some("gone"))));
        assert!(batch.iter().any(|e| matches!(
            e,
            ChangeEvent::Saved { old: Some(o), new }
                if o.get_text("Subject").as_deref() == Some("keep")
                    && new.get_text("Subject").as_deref() == Some("kept-2")
        )));
    }

    #[test]
    fn nested_batches_flush_once_at_outermost() {
        let db = db();
        let seen = collecting_observer(&db);
        {
            let _outer = db.begin_batch();
            doc(&db, "a");
            {
                let _inner = db.begin_batch();
                doc(&db, "b");
            }
            assert!(seen.lock().is_empty(), "inner drop must not flush");
            doc(&db, "c");
        }
        let batches = seen.lock();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn legacy_observers_see_every_coalesced_event_in_order() {
        let db = db();
        let seen: Arc<PMutex<Vec<String>>> = Arc::new(PMutex::new(Vec::new()));
        let sink = seen.clone();
        db.subscribe(Arc::new(move |event: &ChangeEvent| {
            if let ChangeEvent::Saved { new, .. } = event {
                sink.lock()
                    .push(new.get_text("Subject").unwrap_or_default());
            }
        }));
        {
            let _guard = db.begin_batch();
            doc(&db, "first");
            doc(&db, "second");
        }
        assert_eq!(
            *seen.lock(),
            vec!["first".to_string(), "second".to_string()]
        );
    }

    #[test]
    fn parallel_fanout_reaches_all_batch_observers() {
        let db = db();
        let sinks: Vec<Arc<PMutex<Vec<Vec<ChangeEvent>>>>> =
            (0..4).map(|_| collecting_observer(&db)).collect();
        {
            let _guard = db.begin_batch();
            for i in 0..10 {
                doc(&db, &format!("d{i}"));
            }
        }
        for sink in &sinks {
            let batches = sink.lock();
            assert_eq!(batches.len(), 1);
            assert_eq!(batches[0].len(), 10);
        }
    }
}
