//! Forms: the schema-by-convention layer.
//!
//! A Notes database is schemaless, but *forms* (design notes) describe how
//! documents of a given `Form` item are composed and edited: per-field
//! **default value** formulas (applied when the field is absent on first
//! save), **computed** formulas (recomputed on every save), **validation**
//! formulas (`@Success` / `@Failure("message")`), and storage flags
//! (summary, readers, authors, protected). `Session::save` applies the
//! form matching a document automatically.

use domino_formula::{EvalEnv, Formula};
use domino_types::{DominoError, ItemFlags, NoteClass, Result, Value};

use crate::db::Database;
use crate::note::Note;

/// How a field gets its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// User-entered; the default formula fills it only when absent.
    Editable,
    /// Recomputed by formula on every save.
    Computed,
    /// Computed once, when the document is first saved.
    ComputedWhenComposed,
}

impl FieldKind {
    fn code(self) -> &'static str {
        match self {
            FieldKind::Editable => "e",
            FieldKind::Computed => "c",
            FieldKind::ComputedWhenComposed => "w",
        }
    }

    fn parse(s: &str) -> FieldKind {
        match s {
            "c" => FieldKind::Computed,
            "w" => FieldKind::ComputedWhenComposed,
            _ => FieldKind::Editable,
        }
    }
}

/// One field of a form.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    pub name: String,
    pub kind: FieldKind,
    /// Value formula: the default (Editable) or the computation (Computed*).
    pub formula: Option<Formula>,
    /// Validation, run after values settle: truthy/`@Success` passes, a
    /// text result is the failure message.
    pub validation: Option<Formula>,
    /// Flags applied to the stored item.
    pub flags: ItemFlags,
}

impl FieldSpec {
    pub fn editable(name: &str) -> FieldSpec {
        FieldSpec {
            name: name.to_string(),
            kind: FieldKind::Editable,
            formula: None,
            validation: None,
            flags: ItemFlags::SUMMARY,
        }
    }

    pub fn with_default(mut self, src: &str) -> Result<FieldSpec> {
        self.formula = Some(Formula::compile(src)?);
        Ok(self)
    }

    pub fn computed(name: &str, src: &str) -> Result<FieldSpec> {
        Ok(FieldSpec {
            name: name.to_string(),
            kind: FieldKind::Computed,
            formula: Some(Formula::compile(src)?),
            validation: None,
            flags: ItemFlags::SUMMARY,
        })
    }

    pub fn computed_when_composed(name: &str, src: &str) -> Result<FieldSpec> {
        Ok(FieldSpec {
            name: name.to_string(),
            kind: FieldKind::ComputedWhenComposed,
            formula: Some(Formula::compile(src)?),
            validation: None,
            flags: ItemFlags::SUMMARY,
        })
    }

    pub fn validated(mut self, src: &str) -> Result<FieldSpec> {
        self.validation = Some(Formula::compile(src)?);
        Ok(self)
    }

    pub fn with_flags(mut self, flags: ItemFlags) -> FieldSpec {
        self.flags = flags;
        self
    }
}

/// A form design.
#[derive(Debug, Clone)]
pub struct FormDesign {
    /// Matches documents whose `Form` item equals this name.
    pub name: String,
    pub fields: Vec<FieldSpec>,
}

impl FormDesign {
    pub fn new(name: &str) -> FormDesign {
        FormDesign {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    pub fn field(mut self, f: FieldSpec) -> FormDesign {
        self.fields.push(f);
        self
    }

    /// Apply the form to a document about to be saved: fill defaults,
    /// recompute computed fields, then validate. `is_new` selects the
    /// compose-time behaviours.
    pub fn process(&self, note: &mut Note, env: &EvalEnv, is_new: bool) -> Result<()> {
        for field in &self.fields {
            let run = match field.kind {
                FieldKind::Editable => is_new && !note.has(&field.name),
                FieldKind::Computed => true,
                FieldKind::ComputedWhenComposed => is_new,
            };
            if run {
                if let Some(f) = &field.formula {
                    let v = f.eval(note, env)?;
                    note.set_with_flags(&field.name, v, field.flags);
                }
            } else if note.has(&field.name) {
                // Normalize flags on user-entered values (reader/author
                // fields must carry their flags to be enforced).
                if let Some(v) = note.get(&field.name).cloned() {
                    note.set_with_flags(&field.name, v, field.flags);
                }
            }
        }
        // Validation pass, after all values settle.
        for field in &self.fields {
            let Some(v) = &field.validation else { continue };
            let out = v.eval(note, env)?;
            match out {
                Value::Text(msg) => {
                    return Err(DominoError::InvalidArgument(format!(
                        "field {}: {msg}",
                        field.name
                    )))
                }
                other => {
                    if !other.as_bool().unwrap_or(false) {
                        return Err(DominoError::InvalidArgument(format!(
                            "field {} failed validation",
                            field.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // persistence as a Form design note
    // ------------------------------------------------------------------

    pub fn to_note(&self) -> Note {
        let mut n = Note::new(NoteClass::Form);
        n.set("$TITLE", Value::text(self.name.clone()));
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|f| {
                format!(
                    "{}|{}|{}|{}|{}",
                    f.kind.code(),
                    f.flags.0,
                    f.name.replace('|', "\u{1}"),
                    f.formula
                        .as_ref()
                        .map(|x| x.source().replace('|', "\u{1}"))
                        .unwrap_or_default(),
                    f.validation
                        .as_ref()
                        .map(|x| x.source().replace('|', "\u{1}"))
                        .unwrap_or_default(),
                )
            })
            .collect();
        n.set("Fields", Value::text_list(fields));
        n
    }

    pub fn from_note(note: &Note) -> Result<FormDesign> {
        if note.class != NoteClass::Form {
            return Err(DominoError::InvalidArgument(format!(
                "{:?} note is not a form design",
                note.class
            )));
        }
        let name = note
            .get_text("$TITLE")
            .ok_or_else(|| DominoError::Corrupt("form design missing $TITLE".into()))?;
        let mut design = FormDesign::new(&name);
        if let Some(v) = note.get("Fields") {
            for spec in v.iter_scalars() {
                let s = spec.to_text();
                let parts: Vec<&str> = s.splitn(5, '|').collect();
                if parts.len() != 5 {
                    return Err(DominoError::Corrupt(format!("bad field spec {s:?}")));
                }
                let kind = FieldKind::parse(parts[0]);
                let flags = ItemFlags(parts[1].parse::<u8>().map_err(|_| {
                    DominoError::Corrupt(format!("bad field flags {:?}", parts[1]))
                })?);
                let fname = parts[2].replace('\u{1}', "|");
                let formula = if parts[3].is_empty() {
                    None
                } else {
                    Some(Formula::compile(&parts[3].replace('\u{1}', "|"))?)
                };
                let validation = if parts[4].is_empty() {
                    None
                } else {
                    Some(Formula::compile(&parts[4].replace('\u{1}', "|"))?)
                };
                design.fields.push(FieldSpec {
                    name: fname,
                    kind,
                    formula,
                    validation,
                    flags,
                });
            }
        }
        Ok(design)
    }
}

/// Store a form design in the database (so it replicates with the data).
pub fn save_form(db: &Database, form: &FormDesign) -> Result<()> {
    // Replace an existing design of the same name.
    for id in db.note_ids(Some(NoteClass::Form))? {
        let existing = db.open_note(id)?;
        if existing.get_text("$TITLE").as_deref() == Some(&form.name) {
            let mut updated = form.to_note();
            updated.id = existing.id;
            updated.oid = existing.oid;
            updated.created = existing.created;
            return db.save(&mut updated);
        }
    }
    db.save(&mut form.to_note())
}

/// Load the form design matching a document's `Form` item, if stored.
pub fn form_for(db: &Database, note: &Note) -> Result<Option<FormDesign>> {
    let Some(form_name) = note.get_text(crate::note::ITEM_FORM) else {
        return Ok(None);
    };
    for id in db.note_ids(Some(NoteClass::Form))? {
        let design_note = db.open_note(id)?;
        if design_note.get_text("$TITLE").as_deref() == Some(form_name.as_str()) {
            return Ok(Some(FormDesign::from_note(&design_note)?));
        }
    }
    Ok(None)
}

/// All stored form designs.
pub fn stored_forms(db: &Database) -> Result<Vec<FormDesign>> {
    let mut out = Vec::new();
    for id in db.note_ids(Some(NoteClass::Form))? {
        out.push(FormDesign::from_note(&db.open_note(id)?)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use domino_types::{LogicalClock, ReplicaId};

    fn order_form() -> FormDesign {
        FormDesign::new("Order")
            .field(
                FieldSpec::editable("Status")
                    .with_default(r#""new""#)
                    .unwrap(),
            )
            .field(FieldSpec::computed("Total", "Quantity * UnitPrice").unwrap())
            .field(FieldSpec::computed_when_composed("OrderedBy", "@UserName").unwrap())
            .field(
                FieldSpec::editable("Quantity")
                    .validated(
                        r#"@If(Quantity > 0; @Success; @Failure("quantity must be positive"))"#,
                    )
                    .unwrap(),
            )
    }

    fn env(user: &str) -> EvalEnv {
        EvalEnv {
            username: user.into(),
            ..EvalEnv::default()
        }
    }

    #[test]
    fn defaults_fill_missing_fields_on_compose_only() {
        let form = order_form();
        let mut n = Note::document("Order");
        n.set("Quantity", Value::Number(2.0));
        n.set("UnitPrice", Value::Number(10.0));
        form.process(&mut n, &env("ann"), true).unwrap();
        assert_eq!(n.get_text("Status").unwrap(), "new");
        // User sets it; a later save must not reset it.
        n.set("Status", Value::text("shipped"));
        form.process(&mut n, &env("ann"), false).unwrap();
        assert_eq!(n.get_text("Status").unwrap(), "shipped");
    }

    #[test]
    fn computed_fields_recompute_every_save() {
        let form = order_form();
        let mut n = Note::document("Order");
        n.set("Quantity", Value::Number(2.0));
        n.set("UnitPrice", Value::Number(10.0));
        form.process(&mut n, &env("ann"), true).unwrap();
        assert_eq!(n.get("Total"), Some(&Value::Number(20.0)));
        n.set("Quantity", Value::Number(5.0));
        form.process(&mut n, &env("ann"), false).unwrap();
        assert_eq!(n.get("Total"), Some(&Value::Number(50.0)));
    }

    #[test]
    fn computed_when_composed_sticks() {
        let form = order_form();
        let mut n = Note::document("Order");
        n.set("Quantity", Value::Number(1.0));
        n.set("UnitPrice", Value::Number(1.0));
        form.process(&mut n, &env("ann"), true).unwrap();
        assert_eq!(n.get_text("OrderedBy").unwrap(), "ann");
        form.process(&mut n, &env("bob"), false).unwrap();
        assert_eq!(n.get_text("OrderedBy").unwrap(), "ann", "compose-time only");
    }

    #[test]
    fn validation_rejects_with_message() {
        let form = order_form();
        let mut n = Note::document("Order");
        n.set("Quantity", Value::Number(0.0));
        n.set("UnitPrice", Value::Number(10.0));
        let err = form.process(&mut n, &env("ann"), true).unwrap_err();
        assert!(
            err.to_string().contains("quantity must be positive"),
            "{err}"
        );
    }

    #[test]
    fn design_note_roundtrip() {
        let form = order_form();
        let note = form.to_note();
        let back = FormDesign::from_note(&note).unwrap();
        assert_eq!(back.name, "Order");
        assert_eq!(back.fields.len(), 4);
        assert_eq!(back.fields[1].kind, FieldKind::Computed);
        assert_eq!(
            back.fields[1].formula.as_ref().unwrap().source(),
            "Quantity * UnitPrice"
        );
        assert!(back.fields[3].validation.is_some());
    }

    #[test]
    fn save_form_replaces_by_name() {
        let db = Database::open_in_memory(
            DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
            LogicalClock::new(),
        )
        .unwrap();
        save_form(&db, &order_form()).unwrap();
        save_form(&db, &FormDesign::new("Order")).unwrap(); // replaces
        let forms = stored_forms(&db).unwrap();
        assert_eq!(forms.len(), 1);
        assert!(forms[0].fields.is_empty());
    }

    #[test]
    fn form_for_matches_document_form_item() {
        let db = Database::open_in_memory(
            DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
            LogicalClock::new(),
        )
        .unwrap();
        save_form(&db, &order_form()).unwrap();
        let order = Note::document("Order");
        assert!(form_for(&db, &order).unwrap().is_some());
        let memo = Note::document("Memo");
        assert!(form_for(&db, &memo).unwrap().is_none());
    }
}
