//! `domino-core`: the Notes database (NSF) semantics.
//!
//! This crate assembles the substrates into the thing applications open:
//! a [`Database`] of [`Note`]s with:
//!
//! * CRUD with OID versioning (sequence numbers + times, per-item revision
//!   stamps for field-level replication),
//! * deletion stubs and purge,
//! * design notes (forms, views, the ACL) stored alongside documents,
//! * response hierarchies (`$REF`), unread marks,
//! * formula search,
//! * change events feeding view indexes and the full-text index,
//! * [`Session`], the ACL-enforcing API surface.
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note, Session};
//! use domino_security::{AccessLevel, Acl, AclEntry, Directory};
//! use domino_types::{LogicalClock, ReplicaId, Value};
//!
//! let db = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Team", ReplicaId(1), ReplicaId(2)), LogicalClock::new()).unwrap());
//! let mut acl = Acl::new(AccessLevel::NoAccess);
//! acl.set("ann", AclEntry::new(AccessLevel::Editor));
//! db.set_acl(&acl).unwrap();
//!
//! let ann = Session::new(db.clone(), "ann", Directory::new());
//! let mut memo = Note::document("Memo");
//! memo.set("Subject", Value::text("hi"));
//! ann.save(&mut memo).unwrap();
//! assert_eq!(memo.get_text("From").unwrap(), "ann");
//! ```

pub mod agent;
pub mod db;
pub mod form;
pub mod lock;
pub mod merkle;
pub mod mvcc;
pub mod note;
pub mod revision;
pub mod session;

pub use agent::{
    save_agent, stored_agents, AgentDesign, AgentRunReport, AgentScheduler, AgentTickReport,
    AgentTrigger,
};
pub use db::{
    ChangeEvent, ChangedNote, CheckpointerHandle, CompactStats, Database, DbConfig, DbInfo,
    SeedMode, DEFAULT_LOCK_TIMEOUT, DEFAULT_PURGE_INTERVAL,
};
pub use form::{form_for, save_form, stored_forms, FieldKind, FieldSpec, FormDesign};
pub use lock::{ExclusiveGuard, LockMode, LockStats, LockTable, SharedGuard};
pub use merkle::{bucket_of, MerkleSummary, MERKLE_BUCKETS};
pub use mvcc::{Snapshot, SnapshotStats};
pub use note::{
    revision_fingerprint, same_revision, DeletionStub, Note, ITEM_AUTHORS, ITEM_CONFLICT,
    ITEM_FORM, ITEM_READERS, ITEM_REF, ITEM_REVISIONS, ITEM_TRUNCATED, MAX_REVISIONS,
};
pub use revision::{
    chain_contains, content_hash_of, head_hash as revision_head, latest_common, merged_chain,
    merkle_head, push_head, revision_chain, set_chain, stub_head, ITEM_REVISION_HASHES,
};
pub use session::{Session, ITEM_FROM, ITEM_UPDATED_BY};

#[cfg(test)]
mod tests {
    use super::*;
    use domino_formula::{EvalEnv, Formula};
    use domino_security::{AccessLevel, Acl, AclEntry, Directory};
    use domino_storage::MemDisk;
    use domino_types::{Clock, ItemFlags, LogicalClock, NoteClass, ReplicaId, Timestamp, Value};
    use domino_wal::MemLogStore;
    use std::sync::Arc;

    fn db() -> Database {
        Database::open_in_memory(
            DbConfig::new("Test", ReplicaId(1), ReplicaId(100)),
            LogicalClock::new(),
        )
        .unwrap()
    }

    #[test]
    fn create_assigns_identity() {
        let db = db();
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("hi"));
        db.save(&mut n).unwrap();
        assert!(!n.is_draft());
        assert_eq!(n.oid.seq, 1);
        assert_eq!(n.unid().creator(), ReplicaId(100));
        assert!(n.created > Timestamp::ZERO);
        let back = db.open_note(n.id).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn update_bumps_sequence_and_stamps_changed_items_only() {
        let db = db();
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("v1"));
        n.set("Keep", Value::text("same"));
        db.save(&mut n).unwrap();
        let subject_rev_1 = n
            .items_raw()
            .iter()
            .find(|i| i.name == "Subject")
            .unwrap()
            .revised;

        n.set("Subject", Value::text("v2"));
        db.save(&mut n).unwrap();
        assert_eq!(n.oid.seq, 2);
        let subject_rev_2 = n
            .items_raw()
            .iter()
            .find(|i| i.name == "Subject")
            .unwrap()
            .revised;
        let keep_rev = n
            .items_raw()
            .iter()
            .find(|i| i.name == "Keep")
            .unwrap()
            .revised;
        assert!(subject_rev_2 > subject_rev_1);
        assert!(keep_rev < subject_rev_2, "unchanged item keeps its stamp");
    }

    #[test]
    fn stale_save_rejected() {
        let db = db();
        let mut n = Note::document("Memo");
        db.save(&mut n).unwrap();
        let mut stale = db.open_note(n.id).unwrap();
        // First writer wins...
        n.set("X", Value::Number(1.0));
        db.save(&mut n).unwrap();
        // ...second writer loses with a conflict error.
        stale.set("X", Value::Number(2.0));
        let err = db.save(&mut stale).unwrap_err();
        assert_eq!(err.kind(), "update_conflict");
    }

    #[test]
    fn delete_leaves_stub_and_open_fails() {
        let db = db();
        let mut n = Note::document("Memo");
        db.save(&mut n).unwrap();
        let stub = db.delete(n.id).unwrap();
        assert_eq!(stub.oid.unid, n.unid());
        assert_eq!(stub.oid.seq, 2, "deletion bumps the sequence");
        assert!(db.open_note(n.id).is_err());
        assert!(db.open_by_unid(n.unid()).is_err());
        let stubs = db.stubs().unwrap();
        assert_eq!(stubs.len(), 1);
        assert_eq!(stubs[0].oid.unid, n.unid());
    }

    #[test]
    fn purge_removes_only_old_stubs() {
        let clock = LogicalClock::new();
        let db = Database::open_in_memory(
            DbConfig::new("T", ReplicaId(1), ReplicaId(2)).with_purge_interval(1000),
            clock.clone(),
        )
        .unwrap();
        let mut a = Note::document("M");
        db.save(&mut a).unwrap();
        let mut b = Note::document("M");
        db.save(&mut b).unwrap();
        db.delete(a.id).unwrap();
        clock.advance(5000);
        db.delete(b.id).unwrap(); // recent stub
        assert_eq!(db.purge_stubs().unwrap(), 1);
        assert_eq!(db.stubs().unwrap().len(), 1);
    }

    #[test]
    fn changed_since_tracks_modifications_and_deletions() {
        let db = db();
        let mut a = Note::document("M");
        db.save(&mut a).unwrap();
        let t1 = db.clock().now();
        let mut b = Note::document("M");
        db.save(&mut b).unwrap();
        a.set("X", Value::Number(1.0));
        db.save(&mut a).unwrap();
        db.delete(b.id).unwrap();

        let all = db.changed_since(Timestamp::ZERO).unwrap();
        assert_eq!(all.len(), 2);
        let since = db.changed_since(t1).unwrap();
        assert_eq!(since.len(), 2, "a (updated) and b (stub) both changed");
        assert!(since.iter().any(|c| c.is_stub));
        // Times ascend.
        assert!(since[0].oid.seq_time <= since[1].oid.seq_time);
    }

    #[test]
    fn search_with_formula() {
        let db = db();
        for i in 0..10 {
            let mut n = Note::document(if i % 2 == 0 { "Order" } else { "Memo" });
            n.set("Total", Value::Number(i as f64 * 100.0));
            db.save(&mut n).unwrap();
        }
        let f = Formula::compile(r#"SELECT Form = "Order" & Total >= 400"#).unwrap();
        let hits = db.search(&f, &EvalEnv::default()).unwrap();
        assert_eq!(hits.len(), 3); // totals 400, 600, 800
    }

    #[test]
    fn response_hierarchy() {
        let db = db();
        let mut parent = Note::document("Topic");
        db.save(&mut parent).unwrap();
        let mut r1 = Note::document("Response");
        r1.set_parent(parent.unid());
        db.save(&mut r1).unwrap();
        let mut r2 = Note::document("Response");
        r2.set_parent(parent.unid());
        db.save(&mut r2).unwrap();
        let kids = db.responses_of(parent.unid()).unwrap();
        assert_eq!(kids.len(), 2);
        assert!(db.responses_of(r1.unid()).unwrap().is_empty());
    }

    #[test]
    fn events_fire_on_save_and_delete() {
        let db = db();
        let events = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = events.clone();
        db.subscribe(Arc::new(move |e: &ChangeEvent| {
            sink.lock().push(match e {
                ChangeEvent::Saved { old: None, .. } => "create",
                ChangeEvent::Saved { old: Some(_), .. } => "update",
                ChangeEvent::Deleted { .. } => "delete",
            });
        }));
        let mut n = Note::document("M");
        db.save(&mut n).unwrap();
        n.set("X", Value::Number(1.0));
        db.save(&mut n).unwrap();
        db.delete(n.id).unwrap();
        assert_eq!(*events.lock(), vec!["create", "update", "delete"]);
    }

    #[test]
    fn summary_read_touches_fewer_pages_than_full_read() {
        let db = db();
        let mut n = Note::document("M");
        n.set("Subject", Value::text("s"));
        n.set_body("Body", Value::RichText(vec![1u8; 30_000]));
        db.save(&mut n).unwrap();
        let summary_pages = db.pages_touched(n.id, true).unwrap();
        let full_pages = db.pages_touched(n.id, false).unwrap();
        assert!(summary_pages <= 2);
        assert!(full_pages > summary_pages + 4);
        // And the summary decode really lacks the body.
        let s = db.open_summary(n.id).unwrap();
        assert!(s.get("Body").is_none());
        assert_eq!(s.get_text("Subject").unwrap(), "s");
    }

    #[test]
    fn database_survives_crash() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let clock = LogicalClock::new();
        let (id, unid) = {
            let db = Database::open(
                Box::new(disk.clone()),
                Some(Box::new(log.clone())),
                DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
                clock.clone(),
            )
            .unwrap();
            let mut n = Note::document("M");
            n.set("Subject", Value::text("durable"));
            db.save(&mut n).unwrap();
            log.crash();
            (n.id, n.unid())
        };
        let db = Database::open(
            Box::new(disk),
            Some(Box::new(log)),
            DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
            clock,
        )
        .unwrap();
        let n = db.open_note(id).unwrap();
        assert_eq!(n.unid(), unid);
        assert_eq!(n.get_text("Subject").unwrap(), "durable");
    }

    #[test]
    fn acl_stored_and_reloaded() {
        let db = db();
        // Default is wide open.
        let dir = Directory::new();
        assert_eq!(
            db.acl().unwrap().effective(&dir, "anyone").level,
            AccessLevel::Manager
        );
        let mut acl = Acl::new(AccessLevel::Reader);
        acl.set("boss", AclEntry::new(AccessLevel::Manager));
        db.set_acl(&acl).unwrap();
        let loaded = db.acl().unwrap();
        assert_eq!(loaded.effective(&dir, "someone").level, AccessLevel::Reader);
        assert_eq!(loaded.effective(&dir, "boss").level, AccessLevel::Manager);
        // The ACL lives in an ACL-class note.
        assert_eq!(db.note_ids(Some(NoteClass::Acl)).unwrap().len(), 1);
    }

    #[test]
    fn db_info_snapshot() {
        let db = db();
        let mut a = Note::document("M");
        db.save(&mut a).unwrap();
        let mut b = Note::document("M");
        db.save(&mut b).unwrap();
        db.delete(b.id).unwrap();
        db.set_acl(&Acl::wide_open()).unwrap();
        let info = db.info().unwrap();
        assert_eq!(info.documents, 1);
        assert_eq!(info.design_notes, 1, "the ACL note");
        assert_eq!(info.deletion_stubs, 1);
        assert!(info.logical_bytes > 0);
        assert_eq!(info.title, "Test");
    }

    #[test]
    fn unread_marks() {
        let db = db();
        let mut a = Note::document("M");
        db.save(&mut a).unwrap();
        let mut b = Note::document("M");
        db.save(&mut b).unwrap();
        assert_eq!(db.unread_unids("ann").unwrap().len(), 2);
        db.mark_read("ann", a.unid());
        assert_eq!(db.unread_unids("ann").unwrap(), vec![b.unid()]);
        assert!(db.is_read("ann", a.unid()));
        assert_eq!(db.unread_unids("bob").unwrap().len(), 2, "per-user");
    }

    // ---------------- session / security -----------------------------

    fn secured_db() -> (Arc<Database>, Directory) {
        let db = Arc::new(db());
        let mut dir = Directory::new();
        dir.add_group("team", ["editor-ed", "author-al", "reader-rita"]);
        let mut acl = Acl::new(AccessLevel::NoAccess);
        acl.set("editor-ed", AclEntry::new(AccessLevel::Editor));
        acl.set("author-al", AclEntry::new(AccessLevel::Author));
        acl.set("reader-rita", AclEntry::new(AccessLevel::Reader));
        acl.set(
            "manager-mo",
            AclEntry::new(AccessLevel::Manager).with_role("Audit"),
        );
        db.set_acl(&acl).unwrap();
        (db, dir)
    }

    #[test]
    fn session_create_requires_author_level() {
        let (db, dir) = secured_db();
        let al = Session::new(db.clone(), "author-al", dir.clone());
        let rita = Session::new(db, "reader-rita", dir);
        let mut n = Note::document("M");
        assert!(al.save(&mut n).is_ok());
        assert_eq!(n.get_text(ITEM_FROM).unwrap(), "author-al");
        let mut m = Note::document("M");
        assert_eq!(rita.save(&mut m).unwrap_err().kind(), "access_denied");
    }

    #[test]
    fn session_author_edits_own_docs_only() {
        let (db, dir) = secured_db();
        let al = Session::new(db.clone(), "author-al", dir.clone());
        let ed = Session::new(db.clone(), "editor-ed", dir.clone());
        let mut n = Note::document("M");
        al.save(&mut n).unwrap();
        // Editor edits anything.
        let mut copy = ed.open_note(n.id).unwrap();
        copy.set("X", Value::Number(1.0));
        ed.save(&mut copy).unwrap();
        // Author edits their own.
        let mut own = al.open_note(n.id).unwrap();
        own.set("Y", Value::Number(2.0));
        al.save(&mut own).unwrap();
        // Author cannot edit Ed's document.
        let mut eds = Note::document("M");
        ed.save(&mut eds).unwrap();
        let mut theirs = al.open_note(eds.id).unwrap();
        theirs.set("Z", Value::Number(3.0));
        assert_eq!(al.save(&mut theirs).unwrap_err().kind(), "access_denied");
    }

    #[test]
    fn session_reader_fields_hide_documents() {
        let (db, dir) = secured_db();
        let ed = Session::new(db.clone(), "editor-ed", dir.clone());
        let rita = Session::new(db.clone(), "reader-rita", dir.clone());
        let mo = Session::new(db, "manager-mo", dir);
        let mut n = Note::document("Secret");
        n.set_with_flags(
            ITEM_READERS,
            Value::text_list(["[Audit]"]),
            ItemFlags::SUMMARY | ItemFlags::READERS,
        );
        ed.save(&mut n).unwrap();
        // Rita (no role) can't read; Mo ([Audit]) can, despite both having
        // read-capable levels.
        assert_eq!(rita.open_note(n.id).unwrap_err().kind(), "access_denied");
        assert!(mo.open_note(n.id).is_ok());
        // Search filters too.
        let f = Formula::compile("SELECT @All").unwrap();
        assert_eq!(rita.search(&f).unwrap().len(), 0);
        assert_eq!(mo.search(&f).unwrap().len(), 1);
    }

    #[test]
    fn session_delete_rules() {
        let (db, dir) = secured_db();
        let al = Session::new(db.clone(), "author-al", dir.clone());
        let ed = Session::new(db.clone(), "editor-ed", dir.clone());
        let rita = Session::new(db, "reader-rita", dir);
        let mut own = Note::document("M");
        al.save(&mut own).unwrap();
        let mut eds = Note::document("M");
        ed.save(&mut eds).unwrap();
        assert_eq!(rita.delete(own.id).unwrap_err().kind(), "access_denied");
        assert_eq!(al.delete(eds.id).unwrap_err().kind(), "access_denied");
        al.delete(own.id).unwrap();
        ed.delete(eds.id).unwrap();
    }

    #[test]
    fn session_tracks_updated_by() {
        let (db, dir) = secured_db();
        let al = Session::new(db.clone(), "author-al", dir.clone());
        let ed = Session::new(db.clone(), "editor-ed", dir);
        let mut n = Note::document("M");
        al.save(&mut n).unwrap();
        let mut v = ed.open_note(n.id).unwrap();
        v.set("X", Value::Number(1.0));
        ed.save(&mut v).unwrap();
        // Two consecutive edits by the same user collapse to one entry.
        let mut w = ed.open_note(n.id).unwrap();
        w.set("X", Value::Number(2.0));
        ed.save(&mut w).unwrap();
        let editors = db
            .open_note(n.id)
            .unwrap()
            .get(ITEM_UPDATED_BY)
            .unwrap()
            .iter_scalars()
            .iter()
            .map(|s| s.to_text())
            .collect::<Vec<_>>();
        assert_eq!(editors, vec!["author-al", "editor-ed"]);
    }

    #[test]
    fn session_protected_items() {
        let (db, dir) = secured_db();
        let ed = Session::new(db.clone(), "editor-ed", dir.clone());
        let al = Session::new(db, "author-al", dir);
        let mut n = Note::document("M");
        al.save(&mut n).unwrap();
        // Editor adds a protected item.
        let mut v = ed.open_note(n.id).unwrap();
        v.set_with_flags(
            "ApprovedBy",
            Value::text("ed"),
            ItemFlags::SUMMARY | ItemFlags::PROTECTED,
        );
        ed.save(&mut v).unwrap();
        // The author can still edit other items...
        let mut w = al.open_note(n.id).unwrap();
        w.set("Notes", Value::text("ok"));
        al.save(&mut w).unwrap();
        // ...but not the protected one.
        let mut x = al.open_note(n.id).unwrap();
        x.set_with_flags(
            "ApprovedBy",
            Value::text("al"),
            ItemFlags::SUMMARY | ItemFlags::PROTECTED,
        );
        assert_eq!(al.save(&mut x).unwrap_err().kind(), "access_denied");
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;
    use domino_storage::MemDisk;
    use domino_types::{LogicalClock, ReplicaId, Value};
    use domino_wal::MemLogStore;

    #[test]
    fn compact_reclaims_space_and_preserves_content() {
        let db = Database::open_in_memory(
            DbConfig::new("Bloaty", ReplicaId(5), ReplicaId(6)),
            LogicalClock::new(),
        )
        .unwrap();
        // Create churn: big bodies, updates, deletions.
        let mut keep = Vec::new();
        for i in 0..100 {
            let mut n = Note::document("Doc");
            n.set("I", Value::Number(i as f64));
            n.set_body("Body", Value::RichText(vec![i as u8; 6000]));
            db.save(&mut n).unwrap();
            if i % 2 == 0 {
                db.delete(n.id).unwrap();
            } else {
                n.set_body("Body", Value::RichText(vec![i as u8; 100]));
                db.save(&mut n).unwrap();
                keep.push(n.unid());
            }
        }
        let (fresh, stats) = db
            .compact_into(Box::new(MemDisk::new()), Some(Box::new(MemLogStore::new())))
            .unwrap();
        assert_eq!(stats.notes_copied, 50);
        assert_eq!(stats.stubs_copied, 50);
        assert!(
            stats.bytes_after < stats.bytes_before / 2,
            "{} -> {}",
            stats.bytes_before,
            stats.bytes_after
        );
        // Content identical: same notes, same revisions, same stubs.
        assert_eq!(fresh.document_count().unwrap(), 50);
        for unid in keep {
            let a = db.open_by_unid(unid).unwrap();
            let b = fresh.open_by_unid(unid).unwrap();
            assert_eq!(a.oid, b.oid);
            assert_eq!(a.get("Body"), b.get("Body"));
        }
        assert_eq!(fresh.stubs().unwrap().len(), 50);
        assert_eq!(fresh.replica_id(), db.replica_id());
        assert_eq!(fresh.instance_id(), db.instance_id());
        // And the compacted copy still replicates as the same replica.
        let other = Database::open_in_memory(
            DbConfig::new("Bloaty", ReplicaId(5), ReplicaId(7)),
            LogicalClock::new(),
        )
        .unwrap();
        let mut r = domino_replica_stub::sync(&fresh, &other);
        assert!(
            r.is_ok() || {
                r = domino_replica_stub::sync(&fresh, &other);
                r.is_ok()
            }
        );
    }

    /// Minimal local stand-in to avoid a circular dev-dependency on
    /// domino-replica: push every changed note across.
    mod domino_replica_stub {
        use super::*;
        pub fn sync(a: &Database, b: &Database) -> domino_types::Result<()> {
            for c in a.changed_since(domino_types::Timestamp::ZERO)? {
                if c.is_stub {
                    b.apply_remote_deletion(&a.open_stub(c.id)?)?;
                } else {
                    b.save_replicated(a.open_note(c.id)?)?;
                }
            }
            Ok(())
        }
    }
}
