//! Per-note lock table: shared/exclusive record locks with wait queues
//! and timeout-based deadlock resolution.
//!
//! Domino serializes NOTEUPDATE against a per-note lock rather than a
//! database-wide latch, so independent editors proceed in parallel and
//! only same-note writers queue. This table reproduces that discipline:
//!
//! * **Shared** mode admits any number of holders as long as no writer
//!   holds or *waits for* the note (writer priority prevents a stream of
//!   readers from starving an update).
//! * **Exclusive** mode admits one holder once every reader drains.
//! * **Deadlock handling is by timeout**: a request that cannot be
//!   granted within the table's `timeout` gives up with
//!   [`DominoError::Unavailable`] — the transient "database is in use"
//!   error Domino surfaces to clients — rather than waiting forever.
//!   With one lock taken per save there is no lock-ordering cycle to
//!   detect; the timeout is the backstop for accidental re-entry and for
//!   writers stalled behind a wedged holder.
//!
//! Locks are **not reentrant**: a thread that already holds a note
//! exclusively and requests it again deadlocks against itself until the
//! timeout rescues it. [`Database`](crate::Database) takes at most one
//! note lock per operation, so this never happens on internal paths.
//!
//! Guards are RAII: dropping a [`SharedGuard`]/[`ExclusiveGuard`]
//! releases the lock and wakes waiters. A note with no holders and no
//! waiters is removed from the table, so memory tracks the *hot* set,
//! not the database size.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use domino_obs as obs;
use domino_types::{DominoError, Result, Unid};

/// `Db.Lock.*` statistics, summed across every lock table in the process.
struct Metrics {
    shared_acquired: &'static obs::Counter,
    exclusive_acquired: &'static obs::Counter,
    waits: &'static obs::Counter,
    wait_micros: &'static obs::Histogram,
    timeouts: &'static obs::Counter,
    held: &'static obs::Gauge,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        shared_acquired: obs::counter("Db.Lock.Shared.Acquired"),
        exclusive_acquired: obs::counter("Db.Lock.Exclusive.Acquired"),
        waits: obs::counter("Db.Lock.Waits"),
        wait_micros: obs::histogram("Db.Lock.Wait.Micros"),
        timeouts: obs::counter("Db.Lock.Timeouts"),
        held: obs::gauge("Db.Lock.Held"),
    })
}

/// Lock mode requested on a note.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Many concurrent holders; excludes writers.
    Shared,
    /// One holder; excludes everyone.
    Exclusive,
}

/// Per-note lock state. Removed from the table when idle.
#[derive(Debug, Default)]
struct Entry {
    /// Current shared holders.
    shared: usize,
    /// Whether an exclusive holder owns the note.
    exclusive: bool,
    /// Writers queued on the note; blocks *new* readers (writer priority).
    waiting_exclusive: usize,
}

impl Entry {
    fn idle(&self) -> bool {
        self.shared == 0 && !self.exclusive && self.waiting_exclusive == 0
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<Unid, Entry>,
}

/// Counters snapshot for a lock table (process-wide, via the metrics
/// registry — see OPERATIONS.md `Db.Lock.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    pub shared_acquired: u64,
    pub exclusive_acquired: u64,
    pub waits: u64,
    pub timeouts: u64,
    /// Locks currently held across the process.
    pub held: i64,
}

/// The lock table. One per [`Database`](crate::Database); keys are note
/// UNIDs (stable across the note's lifetime, unlike local note ids).
#[derive(Debug)]
pub struct LockTable {
    inner: Mutex<Inner>,
    cond: Condvar,
    timeout: Duration,
}

impl LockTable {
    /// Create a table whose requests give up (with
    /// [`DominoError::Unavailable`]) after `timeout`.
    pub fn new(timeout: Duration) -> LockTable {
        LockTable {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            timeout,
        }
    }

    /// The configured acquisition timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Acquire `key` in shared mode. Blocks while a writer holds or waits
    /// for the note; errs with `Unavailable` after the table timeout.
    pub fn shared(&self, key: Unid) -> Result<SharedGuard<'_>> {
        let mut g = self.inner.lock().expect("lock table poisoned");
        let entry = g.entries.entry(key).or_default();
        if entry.exclusive || entry.waiting_exclusive > 0 {
            let _span = obs::span!("Db.Lock.Wait");
            m().waits.inc();
            let start = Instant::now();
            let deadline = start + self.timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    m().timeouts.inc();
                    Self::drop_if_idle(&mut g, key);
                    emit_timeout_event(key, LockMode::Shared, self.timeout);
                    return Err(lock_timeout(key, LockMode::Shared, self.timeout));
                }
                g = self
                    .cond
                    .wait_timeout(g, deadline - now)
                    .expect("lock table poisoned")
                    .0;
                let entry = g.entries.entry(key).or_default();
                if !entry.exclusive && entry.waiting_exclusive == 0 {
                    break;
                }
            }
            m().wait_micros.record_micros(start.elapsed());
        }
        g.entries.entry(key).or_default().shared += 1;
        m().shared_acquired.inc();
        m().held.add(1);
        Ok(SharedGuard { table: self, key })
    }

    /// Acquire `key` in exclusive mode. Blocks while anyone holds the
    /// note; errs with `Unavailable` after the table timeout.
    pub fn exclusive(&self, key: Unid) -> Result<ExclusiveGuard<'_>> {
        let mut g = self.inner.lock().expect("lock table poisoned");
        let entry = g.entries.entry(key).or_default();
        if entry.exclusive || entry.shared > 0 {
            let _span = obs::span!("Db.Lock.Wait");
            m().waits.inc();
            entry.waiting_exclusive += 1;
            let start = Instant::now();
            let deadline = start + self.timeout;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    m().timeouts.inc();
                    let entry = g.entries.entry(key).or_default();
                    entry.waiting_exclusive -= 1;
                    Self::drop_if_idle(&mut g, key);
                    // Readers admitted only while no writer waits may be
                    // blocked behind this abandoned claim.
                    self.cond.notify_all();
                    emit_timeout_event(key, LockMode::Exclusive, self.timeout);
                    return Err(lock_timeout(key, LockMode::Exclusive, self.timeout));
                }
                g = self
                    .cond
                    .wait_timeout(g, deadline - now)
                    .expect("lock table poisoned")
                    .0;
                let entry = g.entries.entry(key).or_default();
                if !entry.exclusive && entry.shared == 0 {
                    entry.waiting_exclusive -= 1;
                    break;
                }
            }
            m().wait_micros.record_micros(start.elapsed());
        }
        g.entries.entry(key).or_default().exclusive = true;
        m().exclusive_acquired.inc();
        m().held.add(1);
        Ok(ExclusiveGuard { table: self, key })
    }

    fn drop_if_idle(g: &mut Inner, key: Unid) {
        if g.entries.get(&key).is_some_and(Entry::idle) {
            g.entries.remove(&key);
        }
    }

    fn release_shared(&self, key: Unid) {
        let mut g = self.inner.lock().expect("lock table poisoned");
        let entry = g.entries.get_mut(&key).expect("released unheld lock");
        entry.shared -= 1;
        Self::drop_if_idle(&mut g, key);
        drop(g);
        m().held.add(-1);
        self.cond.notify_all();
    }

    fn release_exclusive(&self, key: Unid) {
        let mut g = self.inner.lock().expect("lock table poisoned");
        let entry = g.entries.get_mut(&key).expect("released unheld lock");
        entry.exclusive = false;
        Self::drop_if_idle(&mut g, key);
        drop(g);
        m().held.add(-1);
        self.cond.notify_all();
    }

    /// Notes with at least one holder or waiter right now.
    pub fn active_entries(&self) -> usize {
        self.inner
            .lock()
            .expect("lock table poisoned")
            .entries
            .len()
    }

    /// Process-wide `Db.Lock.*` counters.
    pub fn stats() -> LockStats {
        let reg = m();
        LockStats {
            shared_acquired: reg.shared_acquired.get(),
            exclusive_acquired: reg.exclusive_acquired.get(),
            waits: reg.waits.get(),
            timeouts: reg.timeouts.get(),
            held: reg.held.get(),
        }
    }
}

fn lock_timeout(key: Unid, mode: LockMode, timeout: Duration) -> DominoError {
    DominoError::Unavailable(format!(
        "{mode:?} lock on note {key} not granted within {timeout:?} (database in use)"
    ))
}

/// A lock-timeout victim is how this system surfaces deadlocks (timeout-
/// based detection — DESIGN.md §concurrency); worth a structured event,
/// not just a counter.
fn emit_timeout_event(key: Unid, mode: LockMode, timeout: Duration) {
    obs::emit(
        obs::Event::new(obs::EventKind::Misc, obs::Severity::Warning, "Lock.Timeout")
            .with("note", key.to_string())
            .with(
                "mode",
                match mode {
                    LockMode::Shared => "shared",
                    LockMode::Exclusive => "exclusive",
                },
            )
            .with(
                "waited_micros",
                timeout.as_micros().min(u64::MAX as u128) as u64,
            ),
    );
}

/// RAII shared lock on one note.
#[derive(Debug)]
pub struct SharedGuard<'a> {
    table: &'a LockTable,
    key: Unid,
}

impl Drop for SharedGuard<'_> {
    fn drop(&mut self) {
        self.table.release_shared(self.key);
    }
}

/// RAII exclusive lock on one note.
#[derive(Debug)]
pub struct ExclusiveGuard<'a> {
    table: &'a LockTable,
    key: Unid,
}

impl Drop for ExclusiveGuard<'_> {
    fn drop(&mut self) {
        self.table.release_exclusive(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const KEY: Unid = Unid(7);
    const OTHER: Unid = Unid(8);

    #[test]
    fn shared_locks_coexist_and_exclusive_waits() {
        let table = Arc::new(LockTable::new(Duration::from_secs(5)));
        let s1 = table.shared(KEY).unwrap();
        let s2 = table.shared(KEY).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let t2 = table.clone();
        let writer = std::thread::spawn(move || {
            let _x = t2.exclusive(KEY).unwrap();
            tx.send(()).unwrap();
        });
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "exclusive must wait for shared holders"
        );
        drop(s1);
        drop(s2);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("exclusive granted after readers release");
        writer.join().unwrap();
    }

    #[test]
    fn independent_keys_do_not_block() {
        let table = LockTable::new(Duration::from_secs(5));
        let _a = table.exclusive(KEY).unwrap();
        let _b = table.exclusive(OTHER).unwrap();
        assert_eq!(table.active_entries(), 2);
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let table = Arc::new(LockTable::new(Duration::from_secs(5)));
        let held = table.shared(KEY).unwrap();
        let admitted = Arc::new(AtomicUsize::new(0));

        let t2 = table.clone();
        let a2 = admitted.clone();
        let writer = std::thread::spawn(move || {
            let _x = t2.exclusive(KEY).unwrap();
            // The writer must get in before any post-queue reader.
            assert_eq!(a2.load(Ordering::SeqCst), 0, "reader jumped the writer");
        });
        // Let the writer queue up.
        while LockTable::stats().waits == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));

        let t3 = table.clone();
        let a3 = admitted.clone();
        let reader = std::thread::spawn(move || {
            let _s = t3.shared(KEY).unwrap();
            a3.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            admitted.load(Ordering::SeqCst),
            0,
            "new reader admitted past a waiting writer"
        );
        drop(held);
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(admitted.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn timeout_yields_unavailable_and_recovers() {
        let table = LockTable::new(Duration::from_millis(30));
        let held = table.exclusive(KEY).unwrap();
        let err = table.exclusive(KEY).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_transient());
        let err = table.shared(KEY).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        drop(held);
        // The abandoned claims must not wedge the entry.
        let _again = table.exclusive(KEY).unwrap();
    }

    #[test]
    fn idle_entries_are_reclaimed() {
        let table = LockTable::new(Duration::from_secs(1));
        for i in 0..64u128 {
            let _g = table.exclusive(Unid(i)).unwrap();
        }
        assert_eq!(table.active_entries(), 0, "idle entries must be removed");
    }
}
