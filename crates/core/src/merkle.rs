//! Per-database Merkle summary over UNID space: `root → buckets →
//! (unid, head hash)`.
//!
//! Every UNID (live note or deletion stub) hashes into one of
//! [`MERKLE_BUCKETS`] buckets. A bucket's digest is the XOR of
//! `mix128(unid, head)` over its entries — order-independent, so an
//! entry update is O(1): XOR the old contribution out, the new one in.
//! The root combines the non-empty buckets' digests the same way. The
//! tree is maintained incrementally on every commit, in the same
//! critical section that publishes the MVCC version (commit order =
//! digest order), so two databases have equal roots exactly when they
//! hold the same `(unid, head hash)` set.
//!
//! Replication negotiates off this tree: the destination ships its root
//! (16 bytes); on mismatch, its bucket digests; the source descends only
//! into differing buckets and enumerates only entries whose head hash
//! actually differs. A cold-start pair (cleared replication history)
//! diffs in O(buckets + changed) instead of scanning every candidate.

use std::collections::BTreeMap;

use domino_types::{mix128, ContentHash, Unid};

/// Number of buckets in the summary tree. 256 keeps the bucket-digest
/// exchange to a few KB while leaving each bucket small enough that
/// descending into one enumerates only a sliver of the database.
pub const MERKLE_BUCKETS: u32 = 256;

/// Bucket index for a UNID. The UNID's high 64 bits are the creating
/// instance id, so the raw value is badly skewed — hash it first.
pub fn bucket_of(unid: Unid) -> u32 {
    (mix128(unid.0, 0x6b756265) % MERKLE_BUCKETS as u128) as u32
}

/// The incremental Merkle summary. One per database, updated under the
/// database's commit path.
pub struct MerkleSummary {
    /// XOR-combined `mix128(unid, head)` per bucket; 0 = empty.
    digests: Vec<u128>,
    /// The entries behind each digest.
    entries: Vec<BTreeMap<Unid, ContentHash>>,
    root: u128,
    len: usize,
}

impl MerkleSummary {
    /// An empty summary (all buckets empty, root 0).
    pub fn new() -> MerkleSummary {
        MerkleSummary {
            digests: vec![0; MERKLE_BUCKETS as usize],
            entries: (0..MERKLE_BUCKETS).map(|_| BTreeMap::new()).collect(),
            root: 0,
            len: 0,
        }
    }

    /// The root digest: equal across two databases iff their
    /// `(unid, head)` sets are equal.
    pub fn root(&self) -> ContentHash {
        ContentHash(self.root)
    }

    /// Entries currently summarized.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are summarized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Digests of the non-empty buckets, ascending by index.
    pub fn bucket_digests(&self) -> Vec<(u32, ContentHash)> {
        self.digests
            .iter()
            .enumerate()
            .filter(|(_, d)| **d != 0)
            .map(|(i, d)| (i as u32, ContentHash(*d)))
            .collect()
    }

    /// The `(unid, head)` entries of one bucket, ascending by UNID.
    pub fn bucket_entries(&self, bucket: u32) -> Vec<(Unid, ContentHash)> {
        match self.entries.get(bucket as usize) {
            Some(map) => map.iter().map(|(u, h)| (*u, *h)).collect(),
            None => Vec::new(),
        }
    }

    /// Head currently recorded for a UNID.
    pub fn head(&self, unid: Unid) -> Option<ContentHash> {
        self.entries[bucket_of(unid) as usize].get(&unid).copied()
    }

    /// Set (or with `None`, remove) the head for a UNID, updating the
    /// bucket digest and root in O(1).
    pub fn set_head(&mut self, unid: Unid, head: Option<ContentHash>) {
        let b = bucket_of(unid) as usize;
        let old_term = self.bucket_term(b);
        let map = &mut self.entries[b];
        match head {
            Some(h) => {
                if let Some(prev) = map.insert(unid, h) {
                    self.digests[b] ^= mix128(unid.0, prev.0);
                } else {
                    self.len += 1;
                }
                self.digests[b] ^= mix128(unid.0, h.0);
            }
            None => {
                if let Some(prev) = map.remove(&unid) {
                    self.digests[b] ^= mix128(unid.0, prev.0);
                    self.len -= 1;
                }
            }
        }
        let new_term = self.bucket_term(b);
        self.root ^= old_term ^ new_term;
    }

    /// A bucket's contribution to the root (0 when empty, else bound to
    /// its index so two buckets with equal digests don't cancel).
    fn bucket_term(&self, bucket: usize) -> u128 {
        let d = self.digests[bucket];
        if d == 0 {
            0
        } else {
            mix128(bucket as u128, d)
        }
    }
}

impl Default for MerkleSummary {
    fn default() -> MerkleSummary {
        MerkleSummary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(pairs: &[(u128, u128)]) -> MerkleSummary {
        let mut m = MerkleSummary::new();
        for (u, h) in pairs {
            m.set_head(Unid(*u), Some(ContentHash(*h)));
        }
        m
    }

    #[test]
    fn root_is_order_independent_and_content_sensitive() {
        let a = filled(&[(1, 10), (2, 20), (3, 30)]);
        let b = filled(&[(3, 30), (1, 10), (2, 20)]);
        assert_eq!(a.root(), b.root());
        assert_eq!(a.len(), 3);
        let c = filled(&[(1, 10), (2, 21), (3, 30)]);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn update_and_remove_restore_prior_root() {
        let mut m = filled(&[(1, 10), (2, 20)]);
        let before = m.root();
        m.set_head(Unid(2), Some(ContentHash(99)));
        assert_ne!(m.root(), before);
        m.set_head(Unid(2), Some(ContentHash(20)));
        assert_eq!(m.root(), before);
        m.set_head(Unid(2), None);
        m.set_head(Unid(2), Some(ContentHash(20)));
        assert_eq!(m.root(), before);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_root_is_zero_and_removal_returns_to_it() {
        let mut m = MerkleSummary::new();
        assert!(m.is_empty());
        assert_eq!(m.root(), ContentHash(0));
        m.set_head(Unid(7), Some(ContentHash(70)));
        assert_ne!(m.root(), ContentHash(0));
        m.set_head(Unid(7), None);
        assert_eq!(m.root(), ContentHash(0));
        assert!(m.is_empty());
    }

    #[test]
    fn differing_buckets_localize_the_difference() {
        let a = filled(&[(1, 10), (2, 20), (300, 44)]);
        let b = filled(&[(1, 10), (2, 21), (300, 44)]);
        let da: std::collections::HashMap<u32, ContentHash> =
            a.bucket_digests().into_iter().collect();
        let db: std::collections::HashMap<u32, ContentHash> =
            b.bucket_digests().into_iter().collect();
        let changed = bucket_of(Unid(2));
        for (idx, d) in &da {
            if *idx == changed {
                assert_ne!(db.get(idx), Some(d));
            } else {
                assert_eq!(db.get(idx), Some(d));
            }
        }
        // Entries of the differing bucket expose exactly the changed unid.
        let ea: std::collections::HashMap<Unid, ContentHash> =
            a.bucket_entries(changed).into_iter().collect();
        let eb: std::collections::HashMap<Unid, ContentHash> =
            b.bucket_entries(changed).into_iter().collect();
        assert_ne!(ea.get(&Unid(2)), eb.get(&Unid(2)));
    }

    #[test]
    fn bucket_of_spreads_same_creator_unids() {
        // UNIDs from one creator share their high bits; hashing must
        // still spread them across buckets.
        let buckets: std::collections::HashSet<u32> = (0..64u128)
            .map(|i| bucket_of(Unid((42 << 64) | i)))
            .collect();
        assert!(buckets.len() > 16, "got {} distinct buckets", buckets.len());
    }
}
