//! Multi-version note map: `change_seq`-stamped snapshots so readers
//! never take the writer lock.
//!
//! Every committed save/delete *publishes* the new note state (or a
//! deletion tombstone) into a per-UNID version chain, stamped with the
//! database change sequence assigned to that commit. A reader *pins* a
//! snapshot — the current sequence number — and resolves every lookup
//! against the newest version at-or-below its pin, entirely under a
//! shared lock: `?OpenView` pagination, `?OpenDocument`, full-text
//! search, and agent sweeps run against a frozen, consistent state while
//! writers keep committing.
//!
//! Version chains are pruned incrementally on each publish: versions
//! superseded at or below the oldest pinned sequence are dropped, and a
//! chain reduced to an unpinnable tombstone disappears entirely (to a
//! snapshot reader a tombstone and an absent chain are the same answer).
//! With no pins outstanding, each chain holds exactly the newest version
//! of each live note.
//!
//! Locking protocol (the order is load-bearing):
//!
//! * `publish` holds the map **write lock** across sequence bump +
//!   version insert + pruning, computing the pin horizon under the pins
//!   mutex while it does.
//! * `pin` takes the map **read lock**, then the pins mutex, then reads
//!   the sequence. Because pinning excludes publishers, a pin can never
//!   land between a publisher's sequence bump and its prune — the
//!   classic register-vs-reclaim race is closed by lock order, not by a
//!   retry loop.
//! * Unpinning (snapshot drop) touches only the pins mutex; reclamation
//!   is deferred to the next publish or `VersionStore::sweep`.
//! * Lazy seeding: `Database::open` may seed chains from the summary
//!   segment only (`body_elided`). Reader hydration loads the full note
//!   through the body loader — which takes the database inner lock —
//!   strictly *before* taking the map write lock, and writers backfill
//!   elided pre-images (already under the inner lock) before superseding
//!   them, so the inner lock always precedes the map write lock.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

use parking_lot::RwLock;

use domino_formula::{EvalEnv, Formula};
use domino_obs as obs;
use domino_security::{AccessLevel, Acl, AclEntry};
use domino_types::{DominoError, NoteClass, NoteId, Result, Unid};

use crate::note::Note;

/// `Db.Snapshot.*` statistics, summed across every open database.
struct Metrics {
    pinned: &'static obs::Counter,
    active: &'static obs::Gauge,
    reads: &'static obs::Counter,
    versions: &'static obs::Gauge,
    pruned: &'static obs::Counter,
    hydrated: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        pinned: obs::counter("Db.Snapshot.Pinned"),
        active: obs::gauge("Db.Snapshot.Active"),
        reads: obs::counter("Db.Snapshot.Reads"),
        versions: obs::gauge("Db.Snapshot.Versions"),
        pruned: obs::counter("Db.Snapshot.Pruned"),
        hydrated: obs::counter("Db.Snapshot.Hydrated"),
    })
}

/// Loads a full note from the engine for hydration of a lazily seeded
/// (summary-only) version. Takes the database's inner lock internally, so
/// it must never be invoked while a version-map lock is held.
pub(crate) type BodyLoader = Arc<dyn Fn(NoteId) -> Result<Option<Note>> + Send + Sync>;

/// How many dirty chains one publish will try to prune. Bounds the work
/// done while holding the write lock; the queue drains because every
/// publish adds at most one entry.
const PRUNE_QUOTA: usize = 16;

/// One committed note state in a version chain.
#[derive(Clone)]
struct Version {
    note: Arc<Note>,
    /// Seeded from the summary segment only (lazy database open): the
    /// body items are absent and are loaded through the body loader on
    /// first full read. Only seed-time versions are ever elided; writers
    /// backfill the full pre-image before superseding one.
    body_elided: bool,
}

/// One note's version history: `(change_seq, state)` pairs ascending by
/// sequence; `None` is a deletion tombstone.
struct Chain {
    /// Local note id currently bound to this UNID (for `by_id` cleanup
    /// when the chain is reclaimed — a tombstone carries no note).
    id: NoteId,
    versions: Vec<(u64, Option<Version>)>,
}

#[derive(Default)]
struct VersionsInner {
    chains: HashMap<Unid, Chain>,
    /// Current local-id binding (ids are never reused by the store).
    by_id: HashMap<NoteId, Unid>,
    /// Chains that may have prunable versions, oldest first.
    dirty: VecDeque<Unid>,
}

/// Point-in-time counters for the version map (see OPERATIONS.md
/// `Db.Snapshot.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshots pinned since process start (process-wide).
    pub pinned_total: u64,
    /// Snapshots alive right now (process-wide).
    pub active: i64,
    /// Lookups served from snapshots (process-wide).
    pub reads: u64,
    /// Versions retained by *this* database's map right now.
    pub retained_versions: usize,
    /// Versions reclaimed since process start (process-wide).
    pub pruned: u64,
}

/// The versioned note map behind [`crate::Database`]. Shared with every
/// outstanding [`Snapshot`].
pub struct VersionStore {
    state: RwLock<VersionsInner>,
    /// Pinned sequence → pin count. `BTreeMap` so the horizon (smallest
    /// pinned seq) is the first key.
    pins: StdMutex<BTreeMap<u64, usize>>,
    seq: AtomicU64,
    /// Note id of the stored ACL note (0 = none), mirrored from the
    /// engine user slot so snapshots resolve the ACL without the engine.
    acl_note: AtomicU64,
    /// Hydrates body-elided seed versions on first full read (set once by
    /// `Database::open` when seeding lazily).
    body_loader: OnceLock<BodyLoader>,
}

impl VersionStore {
    pub(crate) fn new() -> VersionStore {
        VersionStore {
            state: RwLock::new(VersionsInner::default()),
            pins: StdMutex::new(BTreeMap::new()),
            seq: AtomicU64::new(0),
            acl_note: AtomicU64::new(0),
            body_loader: OnceLock::new(),
        }
    }

    pub(crate) fn set_body_loader(&self, loader: BodyLoader) {
        let _ = self.body_loader.set(loader);
    }

    /// Current change sequence (lock-free; safe for pollers).
    pub(crate) fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    pub(crate) fn set_acl_note(&self, id: u64) {
        self.acl_note.store(id, Ordering::Release);
    }

    /// Install pre-existing engine state at sequence 0 (database open).
    /// With `body_elided`, `note` carries only the summary items; the
    /// body is loaded through the body loader on first full read.
    pub(crate) fn seed(&self, unid: Unid, id: NoteId, note: Arc<Note>, body_elided: bool) {
        let mut st = self.state.write();
        st.by_id.insert(id, unid);
        st.chains.insert(
            unid,
            Chain {
                id,
                versions: vec![(0, Some(Version { note, body_elided }))],
            },
        );
        m().versions.add(1);
    }

    /// Writer-side hydration: called (with the database inner lock held)
    /// just before a new version supersedes this UNID, so any still-elided
    /// seed version gets its full pre-image while the engine still holds
    /// it. Without this, a snapshot pinned before the overwrite could only
    /// hydrate to the *new* content.
    pub(crate) fn backfill(&self, unid: Unid, full: &Note) {
        let mut st = self.state.write();
        if let Some(chain) = st.chains.get_mut(&unid) {
            for (_, v) in chain.versions.iter_mut() {
                if let Some(v) = v {
                    if v.body_elided {
                        v.note = Arc::new(full.clone());
                        v.body_elided = false;
                    }
                }
            }
        }
    }

    /// Reader-side hydration of the version visible at `seq`: load the
    /// full note from the engine (no version-map lock held), then install
    /// it if the slot is still elided. A still-elided slot proves no
    /// writer has superseded this UNID (writers backfill first), so the
    /// engine content *is* the seed-time content.
    fn hydrate(&self, unid: Unid, id: NoteId, seq: u64) -> Result<Arc<Note>> {
        let loader =
            self.body_loader.get().cloned().ok_or_else(|| {
                DominoError::Corrupt("elided version without a body loader".into())
            })?;
        let loaded = loader(id)?;
        let mut st = self.state.write();
        let ver = st
            .chains
            .get_mut(&unid)
            .and_then(|c| {
                c.versions
                    .iter_mut()
                    .rev()
                    .find(|(s, _)| *s <= seq)
                    .and_then(|(_, v)| v.as_mut())
            })
            .ok_or_else(|| DominoError::NotFound(format!("note {id}")))?;
        if ver.body_elided {
            let full = Arc::new(loaded.ok_or_else(|| DominoError::NotFound(format!("note {id}")))?);
            ver.note = Arc::clone(&full);
            ver.body_elided = false;
            m().hydrated.inc();
            Ok(full)
        } else {
            // Raced with a writer's backfill (or another reader): the
            // installed value is authoritative for this version.
            Ok(Arc::clone(&ver.note))
        }
    }

    /// Record one committed write and return the change sequence assigned
    /// to it. Called with the database's inner lock held, so commit order
    /// equals sequence order (the linearizability anchor). `None`
    /// publishes a deletion tombstone.
    pub(crate) fn publish(&self, unid: Unid, id: NoteId, note: Option<Arc<Note>>) -> u64 {
        let mut st = self.state.write();
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        if note.is_some() {
            st.by_id.insert(id, unid);
        }
        let chain = st.chains.entry(unid).or_insert_with(|| Chain {
            id,
            versions: Vec::new(),
        });
        chain.id = id;
        chain.versions.push((
            seq,
            note.map(|note| Version {
                note,
                body_elided: false,
            }),
        ));
        m().versions.add(1);
        st.dirty.push_back(unid);
        let min_pin = self.min_pin(seq);
        Self::prune_some(&mut st, min_pin, PRUNE_QUOTA);
        seq
    }

    /// Pin the current state. The read lock excludes publishers, so the
    /// observed sequence is fully published and cannot be pruned before
    /// the pin registers.
    pub(crate) fn pin(self: &Arc<Self>) -> Snapshot {
        let seq = {
            let _st = self.state.read();
            let seq = self.seq.load(Ordering::Acquire);
            let mut pins = self.pins.lock().expect("pin registry poisoned");
            *pins.entry(seq).or_insert(0) += 1;
            seq
        };
        m().pinned.inc();
        m().active.add(1);
        Snapshot {
            store: Arc::clone(self),
            seq,
            acl_id: self.acl_note.load(Ordering::Acquire),
        }
    }

    fn unpin(&self, seq: u64) {
        let mut pins = self.pins.lock().expect("pin registry poisoned");
        if let Some(n) = pins.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&seq);
            }
        }
        drop(pins);
        m().active.add(-1);
    }

    /// Oldest sequence any snapshot may still read; `current` if none.
    fn min_pin(&self, current: u64) -> u64 {
        let pins = self.pins.lock().expect("pin registry poisoned");
        pins.keys().next().copied().unwrap_or(current)
    }

    fn prune_some(st: &mut VersionsInner, min_pin: u64, quota: usize) {
        for _ in 0..quota {
            let Some(unid) = st.dirty.pop_front() else {
                break;
            };
            let (reclaim_id, requeue) = {
                let Some(chain) = st.chains.get_mut(&unid) else {
                    continue;
                };
                // Keep the newest version at-or-below the horizon plus
                // everything above it; older versions are unreachable.
                if let Some(idx) = chain.versions.iter().rposition(|(s, _)| *s <= min_pin) {
                    if idx > 0 {
                        chain.versions.drain(..idx);
                        m().versions.add(-(idx as i64));
                        m().pruned.add(idx as u64);
                    }
                }
                let fully_dead = chain.versions.len() == 1
                    && chain.versions[0].1.is_none()
                    && chain.versions[0].0 <= min_pin;
                if fully_dead {
                    (Some(chain.id), false)
                } else {
                    // Still multi-version or tombstone-tipped: revisit.
                    let dirty = chain.versions.len() > 1
                        || chain.versions.last().is_some_and(|(_, n)| n.is_none());
                    (None, dirty)
                }
            };
            if let Some(id) = reclaim_id {
                // A tombstone no snapshot can see equals absence: drop the
                // chain and its id binding entirely.
                st.chains.remove(&unid);
                m().versions.add(-1);
                m().pruned.inc();
                if st.by_id.get(&id) == Some(&unid) {
                    st.by_id.remove(&id);
                }
            } else if requeue {
                st.dirty.push_back(unid);
            }
        }
    }

    /// Full prune pass over every chain (stub purge, maintenance).
    pub(crate) fn sweep(&self) {
        let mut st = self.state.write();
        let min_pin = self.min_pin(self.seq.load(Ordering::Acquire));
        st.dirty.clear();
        let all: Vec<Unid> = st.chains.keys().copied().collect();
        st.dirty.extend(all.iter().copied());
        let n = all.len();
        Self::prune_some(&mut st, min_pin, n);
    }

    /// UNID currently bound to a live note at `id` (not a tombstone).
    pub(crate) fn current_unid(&self, id: NoteId) -> Option<Unid> {
        let st = self.state.read();
        let unid = *st.by_id.get(&id)?;
        let chain = st.chains.get(&unid)?;
        match chain.versions.last() {
            Some((_, Some(_))) => Some(unid),
            _ => None,
        }
    }

    /// Versions currently retained by this map.
    pub(crate) fn retained_versions(&self) -> usize {
        let st = self.state.read();
        st.chains.values().map(|c| c.versions.len()).sum()
    }

    /// Snapshots of this map currently pinned.
    pub(crate) fn active_pins(&self) -> usize {
        self.pins
            .lock()
            .expect("pin registry poisoned")
            .values()
            .sum()
    }

    pub(crate) fn stats(&self) -> SnapshotStats {
        let reg = m();
        SnapshotStats {
            pinned_total: reg.pinned.get(),
            active: reg.active.get(),
            reads: reg.reads.get(),
            retained_versions: self.retained_versions(),
            pruned: reg.pruned.get(),
        }
    }
}

fn wide_open_acl() -> Acl {
    let mut acl = Acl::new(AccessLevel::NoAccess);
    acl.set_default(AclEntry::new(AccessLevel::Manager));
    acl
}

/// A pinned, immutable view of the database at one change sequence.
/// Every lookup resolves against the version chains under a shared lock;
/// no reader ever touches the writer path. Dropping the snapshot
/// releases the pin (and with it, the GC horizon).
pub struct Snapshot {
    store: Arc<VersionStore>,
    seq: u64,
    acl_id: u64,
}

impl Snapshot {
    /// The change sequence this snapshot is pinned at: it sees exactly
    /// the commits with sequence `<=` this value.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn visible(chain: &Chain, seq: u64) -> Option<&Version> {
        chain
            .versions
            .iter()
            .rev()
            .find(|(s, _)| *s <= seq)
            .and_then(|(_, n)| n.as_ref())
    }

    /// Fetch a note by local id without cloning the note body (the hot
    /// server path). Deleted or not-yet-created notes read as `NotFound`.
    /// A body-elided seed version hydrates here (one engine read, cached
    /// in the version slot for every later reader).
    pub fn open_arc(&self, id: NoteId) -> Result<Arc<Note>> {
        m().reads.inc();
        let found = {
            let st = self.store.state.read();
            st.by_id
                .get(&id)
                .and_then(|unid| st.chains.get(unid).map(|c| (*unid, c)))
                .and_then(|(unid, c)| Self::visible(c, self.seq).map(|v| (unid, v.clone())))
        };
        let (unid, ver) = found.ok_or_else(|| DominoError::NotFound(format!("note {id}")))?;
        if ver.body_elided {
            self.store.hydrate(unid, id, self.seq)
        } else {
            Ok(ver.note)
        }
    }

    /// Fetch a note by local id (owned copy).
    pub fn open_note(&self, id: NoteId) -> Result<Note> {
        self.open_arc(id).map(|n| (*n).clone())
    }

    /// Fetch a note by UNID.
    pub fn open_by_unid(&self, unid: Unid) -> Result<Note> {
        m().reads.inc();
        let found = {
            let st = self.store.state.read();
            st.chains
                .get(&unid)
                .and_then(|c| Self::visible(c, self.seq).map(|v| (c.id, v.clone())))
        };
        let (id, ver) = found.ok_or_else(|| DominoError::NotFound(format!("unid {unid}")))?;
        if ver.body_elided {
            self.store.hydrate(unid, id, self.seq).map(|n| (*n).clone())
        } else {
            Ok((*ver.note).clone())
        }
    }

    /// Whether a live note with this UNID is visible. (Summary-only: an
    /// elided version answers without hydration.)
    pub fn contains(&self, unid: Unid) -> bool {
        let st = self.store.state.read();
        st.chains
            .get(&unid)
            .and_then(|c| Self::visible(c, self.seq))
            .is_some()
    }

    /// Ids of all visible notes of a class (ascending). `None` = all.
    /// Classes live in the summary items, so elided versions never
    /// hydrate here.
    pub fn note_ids(&self, class: Option<NoteClass>) -> Vec<NoteId> {
        m().reads.inc();
        let st = self.store.state.read();
        let mut out: Vec<NoteId> = st
            .chains
            .values()
            .filter_map(|c| Self::visible(c, self.seq))
            .filter(|v| class.is_none() || Some(v.note.class) == class)
            .map(|v| v.note.id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Visible documents with their UNIDs and elision flags, ascending by
    /// note id — the shared backbone of the full-document reads below.
    fn documents_raw(&self) -> Vec<(Unid, Version)> {
        let st = self.store.state.read();
        let mut out: Vec<(Unid, Version)> = st
            .chains
            .iter()
            .filter_map(|(unid, c)| Self::visible(c, self.seq).map(|v| (*unid, v.clone())))
            .filter(|(_, v)| v.note.class == NoteClass::Document)
            .collect();
        out.sort_unstable_by_key(|(_, v)| v.note.id);
        out
    }

    /// All visible documents, ascending by note id. Elided versions
    /// hydrate (full-text indexing and view rebuilds read bodies).
    pub fn documents(&self) -> Vec<Arc<Note>> {
        m().reads.inc();
        self.documents_raw()
            .into_iter()
            .map(|(unid, v)| {
                if v.body_elided {
                    // Hydration can only fail if the note vanished from
                    // the engine mid-read; fall back to the summary copy.
                    self.store
                        .hydrate(unid, v.note.id, self.seq)
                        .unwrap_or(v.note)
                } else {
                    v.note
                }
            })
            .collect()
    }

    /// Count of visible documents (no hydration).
    pub fn document_count(&self) -> usize {
        m().reads.inc();
        self.documents_raw().len()
    }

    /// Documents matching a selection formula at this snapshot. Selection
    /// evaluates against summary items (like a view refresh), so only the
    /// *matching* documents hydrate their bodies.
    pub fn search(&self, formula: &Formula, env: &EvalEnv) -> Result<Vec<Note>> {
        m().reads.inc();
        let mut out = Vec::new();
        for (unid, v) in self.documents_raw() {
            if formula.selects(v.note.as_ref(), env)? {
                let full = if v.body_elided {
                    self.store.hydrate(unid, v.note.id, self.seq)?
                } else {
                    v.note
                };
                out.push((*full).clone());
            }
        }
        Ok(out)
    }

    /// The ACL as of this snapshot. Wide open (default Manager) when no
    /// ACL note existed yet — the pre-ACL database admits everyone, as
    /// [`crate::Database::acl`] always has.
    pub fn acl(&self) -> Result<Acl> {
        if self.acl_id == 0 {
            return Ok(wide_open_acl());
        }
        let note = match self.open_arc(NoteId(self.acl_id as u32)) {
            Ok(n) => n,
            // The ACL note postdates this snapshot.
            Err(_) => return Ok(wide_open_acl()),
        };
        let lines: Vec<String> = match note.get("Entries") {
            Some(v) => v.iter_scalars().iter().map(|s| s.to_text()).collect(),
            None => Vec::new(),
        };
        Acl::from_lines(&lines).ok_or_else(|| DominoError::Corrupt("unparseable ACL note".into()))
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.store.unpin(self.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_types::{Oid, Timestamp};

    fn note(id: u32, unid: u128, subject: &str) -> Arc<Note> {
        let mut n = Note::document("Memo");
        n.id = NoteId(id);
        n.oid = Oid::new(Unid(unid), Timestamp(id as u64));
        n.set("Subject", domino_types::Value::text(subject));
        Arc::new(n)
    }

    #[test]
    fn snapshots_see_only_their_prefix() {
        let store = Arc::new(VersionStore::new());
        store.publish(Unid(1), NoteId(1), Some(note(1, 1, "v1")));
        let snap1 = store.pin();
        store.publish(Unid(1), NoteId(1), Some(note(1, 1, "v2")));
        let snap2 = store.pin();
        assert_eq!(
            snap1.open_note(NoteId(1)).unwrap().get_text("Subject"),
            Some("v1".into())
        );
        assert_eq!(
            snap2.open_note(NoteId(1)).unwrap().get_text("Subject"),
            Some("v2".into())
        );
        assert_eq!(snap1.seq(), 1);
        assert_eq!(snap2.seq(), 2);
    }

    #[test]
    fn deletion_is_a_tombstone_then_absence() {
        let store = Arc::new(VersionStore::new());
        store.publish(Unid(1), NoteId(1), Some(note(1, 1, "x")));
        let before = store.pin();
        store.publish(Unid(1), NoteId(1), None);
        let after = store.pin();
        assert!(before.open_note(NoteId(1)).is_ok());
        assert!(after.open_note(NoteId(1)).is_err());
        assert!(!after.contains(Unid(1)));
        drop(before);
        drop(after);
        // With no pins, the next publish reclaims the dead chain.
        store.publish(Unid(2), NoteId(2), Some(note(2, 2, "y")));
        store.sweep();
        assert_eq!(store.retained_versions(), 1, "tombstone chain reclaimed");
        assert!(store.pin().open_note(NoteId(1)).is_err());
    }

    #[test]
    fn pins_hold_back_pruning() {
        let store = Arc::new(VersionStore::new());
        store.publish(Unid(1), NoteId(1), Some(note(1, 1, "v1")));
        let pinned = store.pin();
        for i in 2..10 {
            store.publish(Unid(1), NoteId(1), Some(note(1, 1, &format!("v{i}"))));
        }
        assert!(
            store.retained_versions() >= 2,
            "pinned version must survive pruning"
        );
        assert_eq!(
            pinned.open_note(NoteId(1)).unwrap().get_text("Subject"),
            Some("v1".into())
        );
        drop(pinned);
        store.sweep();
        assert_eq!(store.retained_versions(), 1, "unpinned history reclaimed");
    }

    #[test]
    fn note_ids_and_documents_are_snapshot_scoped() {
        let store = Arc::new(VersionStore::new());
        store.publish(Unid(1), NoteId(1), Some(note(1, 1, "a")));
        let snap = store.pin();
        store.publish(Unid(2), NoteId(2), Some(note(2, 2, "b")));
        assert_eq!(snap.note_ids(Some(NoteClass::Document)), vec![NoteId(1)]);
        assert_eq!(store.pin().document_count(), 2);
        assert_eq!(snap.documents().len(), 1);
    }
}
