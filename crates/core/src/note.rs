//! The note: Domino's universal record.
//!
//! Everything in a Notes database — documents, forms, views, the ACL — is a
//! note: a header (ids, class, times, optional parent reference) plus a bag
//! of typed [`Item`]s. Summary items are stored in the summary segment
//! (cheap for views to read); non-summary items (rich-text bodies) go to
//! the body segment.
//!
//! Removed items leave *tombstones* (empty value, `DELETED` flag) so that
//! field-level replication can ship the removal; all read APIs hide them.

use domino_formula::DocContext;
use domino_types::{
    DominoError, Item, ItemFlags, NoteClass, NoteId, Oid, Result, Timestamp, Unid, Value,
};

/// Reserved item names.
pub const ITEM_REF: &str = "$REF";
pub const ITEM_REVISIONS: &str = "$Revisions";

/// How many revision fingerprints a note carries (Domino's `$Revisions`
/// is similarly bounded). Replicas that diverge by more than this many
/// revisions can no longer prove ancestry and fall back to conflict
/// handling.
pub const MAX_REVISIONS: usize = 32;

/// Fingerprint of one saved revision: identifies `(instance, seq, time)`
/// compactly so replicas can check whether one copy descends from another.
pub fn revision_fingerprint(instance: domino_types::ReplicaId, seq: u32, time: Timestamp) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(&instance.0.to_le_bytes());
    mix(&seq.to_le_bytes());
    mix(&time.0.to_le_bytes());
    h
}
pub const ITEM_FORM: &str = "Form";
pub const ITEM_CONFLICT: &str = "$Conflict";
pub const ITEM_READERS: &str = "$Readers";
pub const ITEM_AUTHORS: &str = "$Authors";
pub const ITEM_TITLE: &str = "$TITLE";
/// Marker on documents received without their bodies ("partial documents").
pub const ITEM_TRUNCATED: &str = "$Truncated";

/// One note, fully materialized in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Note {
    /// Database-local id; `NoteId::NONE` until first saved.
    pub id: NoteId,
    /// Originator id: UNID + replication version stamp.
    pub oid: Oid,
    pub class: NoteClass,
    pub created: Timestamp,
    pub modified: Timestamp,
    items: Vec<Item>,
}

impl Note {
    /// A fresh, unsaved document note. Ids and times are assigned by
    /// `Database::save`.
    pub fn new(class: NoteClass) -> Note {
        Note {
            id: NoteId::NONE,
            oid: Oid::new(Unid(0), Timestamp::ZERO),
            class,
            created: Timestamp::ZERO,
            modified: Timestamp::ZERO,
            items: Vec::new(),
        }
    }

    /// A document with a `Form` item — the everyday constructor.
    pub fn document(form: &str) -> Note {
        let mut n = Note::new(NoteClass::Document);
        n.set(ITEM_FORM, Value::text(form));
        n
    }

    pub fn unid(&self) -> Unid {
        self.oid.unid
    }

    /// Is this an unsaved draft?
    pub fn is_draft(&self) -> bool {
        self.id.is_none()
    }

    // ------------------------------------------------------------------
    // items
    // ------------------------------------------------------------------

    fn find(&self, name: &str) -> Option<usize> {
        self.items
            .iter()
            .position(|it| it.name.eq_ignore_ascii_case(name))
    }

    /// Read an item's value (tombstones read as absent).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.find(name).and_then(|i| {
            let it = &self.items[i];
            if it.flags.contains(ItemFlags::DELETED) {
                None
            } else {
                Some(&it.value)
            }
        })
    }

    pub fn get_text(&self, name: &str) -> Option<String> {
        self.get(name).map(|v| v.to_text())
    }

    /// Set an item (summary by default), replacing any existing item or
    /// tombstone of the same name. The `revised` stamp is managed by
    /// `Database::save`.
    pub fn set(&mut self, name: &str, value: Value) -> &mut Note {
        self.set_item(Item::new(name, value))
    }

    /// Set a non-summary item (bodies, attachments).
    pub fn set_body(&mut self, name: &str, value: Value) -> &mut Note {
        self.set_item(Item::new(name, value).non_summary())
    }

    /// Set with explicit flags.
    pub fn set_with_flags(&mut self, name: &str, value: Value, flags: ItemFlags) -> &mut Note {
        self.set_item(Item::new(name, value).with_flags(flags))
    }

    /// Insert or replace a full item.
    pub fn set_item(&mut self, item: Item) -> &mut Note {
        match self.find(&item.name) {
            Some(i) => self.items[i] = item,
            None => self.items.push(item),
        }
        self
    }

    /// Remove an item, leaving a replication tombstone.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.find(name) {
            Some(i) => {
                let it = &mut self.items[i];
                if it.flags.contains(ItemFlags::DELETED) {
                    return false;
                }
                it.value = Value::text("");
                it.flags = ItemFlags::DELETED;
                true
            }
            None => false,
        }
    }

    /// Live items (no tombstones).
    pub fn items(&self) -> impl Iterator<Item = &Item> {
        self.items
            .iter()
            .filter(|it| !it.flags.contains(ItemFlags::DELETED))
    }

    /// Every stored item including tombstones (replication needs these).
    pub fn items_raw(&self) -> &[Item] {
        &self.items
    }

    pub(crate) fn items_raw_mut(&mut self) -> &mut Vec<Item> {
        &mut self.items
    }

    /// Does the note have a live item of this name?
    pub fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    // ------------------------------------------------------------------
    // well-known items
    // ------------------------------------------------------------------

    /// Parent note reference (makes this a response document).
    pub fn parent(&self) -> Option<Unid> {
        match self.get(ITEM_REF) {
            Some(Value::Text(hex)) => u128::from_str_radix(hex, 16).ok().map(Unid),
            _ => None,
        }
    }

    pub fn set_parent(&mut self, parent: Unid) -> &mut Note {
        self.set(ITEM_REF, Value::Text(format!("{:032X}", parent.0)))
    }

    pub fn is_response(&self) -> bool {
        self.parent().is_some()
    }

    /// Is this a replication-conflict loser?
    pub fn is_conflict(&self) -> bool {
        self.has(ITEM_CONFLICT)
    }

    /// Combined `$Readers`-flagged values (empty = unrestricted).
    pub fn readers(&self) -> Vec<String> {
        self.collect_flagged(ItemFlags::READERS)
    }

    /// Combined `$Authors`-flagged values.
    pub fn authors(&self) -> Vec<String> {
        self.collect_flagged(ItemFlags::AUTHORS)
    }

    fn collect_flagged(&self, flag: ItemFlags) -> Vec<String> {
        let mut out = Vec::new();
        for it in self.items() {
            if it.flags.contains(flag) {
                for v in it.value.iter_scalars() {
                    let s = v.to_text();
                    if !s.is_empty() {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// Parsed `$Revisions` lineage: `(fingerprint, seq_time)` per revision,
    /// oldest first, ending with the current revision.
    pub fn revisions(&self) -> Vec<(u64, Timestamp)> {
        let Some(v) = self.get(ITEM_REVISIONS) else {
            return Vec::new();
        };
        v.iter_scalars()
            .iter()
            .filter_map(|s| {
                let t = s.to_text();
                let (fp, time) = t.split_once('|')?;
                Some((
                    u64::from_str_radix(fp, 16).ok()?,
                    Timestamp(u64::from_str_radix(time, 16).ok()?),
                ))
            })
            .collect()
    }

    /// The lineage entry for sequence number `seq`, if still retained.
    /// The last entry corresponds to `oid.seq`, the one before to
    /// `oid.seq - 1`, and so on.
    pub fn revision_at(&self, seq: u32) -> Option<(u64, Timestamp)> {
        if seq == 0 || seq > self.oid.seq {
            return None;
        }
        let revs = self.revisions();
        let back = (self.oid.seq - seq) as usize;
        if back >= revs.len() {
            return None;
        }
        Some(revs[revs.len() - 1 - back])
    }

    /// Append the current revision's fingerprint to `$Revisions`
    /// (maintained by `Database::save`).
    pub(crate) fn push_revision(&mut self, instance: domino_types::ReplicaId) {
        let fp = revision_fingerprint(instance, self.oid.seq, self.oid.seq_time);
        let mut entries: Vec<String> = match self.get(ITEM_REVISIONS) {
            Some(v) => v.iter_scalars().iter().map(|s| s.to_text()).collect(),
            None => Vec::new(),
        };
        entries.push(format!("{fp:016x}|{:016x}", self.oid.seq_time.0));
        if entries.len() > MAX_REVISIONS {
            let drop = entries.len() - MAX_REVISIONS;
            entries.drain(..drop);
        }
        self.set(ITEM_REVISIONS, Value::TextList(entries));
    }

    /// Is this a truncated (summary-only) copy received by partial
    /// replication? Truncated copies are read-only until fetched in full.
    pub fn is_truncated(&self) -> bool {
        self.has(ITEM_TRUNCATED)
    }

    /// Drop all non-summary items *entirely* (no tombstones — the bodies
    /// still exist at the source) and mark the note truncated. Used by
    /// partial replication; the local copy keeps the source's OID, so a
    /// later full pull upgrades it in place.
    pub fn truncate_to_summary(&mut self) {
        self.items
            .retain(|it| it.is_summary() || it.flags.contains(ItemFlags::DELETED));
        self.set(ITEM_TRUNCATED, Value::from(true));
    }

    /// Total size of all items (replication bandwidth accounting).
    pub fn byte_size(&self) -> usize {
        self.items.iter().map(|it| it.byte_size()).sum::<usize>() + 64
    }

    // ------------------------------------------------------------------
    // storage encoding
    // ------------------------------------------------------------------

    /// Encode the summary segment: header + summary items (+ tombstones,
    /// which are always summary).
    pub fn encode_summary(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        buf.push(0u8); // record tag: 0 = note (1 = deletion stub)
        buf.push(self.class.code());
        buf.extend_from_slice(&self.oid.unid.to_bytes());
        buf.extend_from_slice(&self.oid.seq.to_le_bytes());
        buf.extend_from_slice(&self.oid.seq_time.0.to_le_bytes());
        buf.extend_from_slice(&self.created.0.to_le_bytes());
        buf.extend_from_slice(&self.modified.0.to_le_bytes());
        let summary: Vec<&Item> = self
            .items
            .iter()
            .filter(|it| it.is_summary() || it.flags.contains(ItemFlags::DELETED))
            .collect();
        buf.extend_from_slice(&(summary.len() as u16).to_le_bytes());
        for it in summary {
            it.encode(&mut buf);
        }
        buf
    }

    /// Encode the body segment (non-summary items); `None` if there are
    /// none (no body record is stored at all).
    pub fn encode_body(&self) -> Option<Vec<u8>> {
        let body: Vec<&Item> = self
            .items
            .iter()
            .filter(|it| !it.is_summary() && !it.flags.contains(ItemFlags::DELETED))
            .collect();
        if body.is_empty() {
            return None;
        }
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&(body.len() as u16).to_le_bytes());
        for it in body {
            it.encode(&mut buf);
        }
        Some(buf)
    }

    /// Decode from stored segments.
    pub fn decode(id: NoteId, summary: &[u8], body: Option<&[u8]>) -> Result<Note> {
        let mut pos = 0usize;
        let need = |pos: usize, n: usize| -> Result<()> {
            if pos + n > summary.len() {
                Err(DominoError::Corrupt("truncated note summary".into()))
            } else {
                Ok(())
            }
        };
        need(pos, 2)?;
        if summary[0] != 0 {
            return Err(DominoError::Corrupt(format!(
                "record tag {} is not a note",
                summary[0]
            )));
        }
        let class = NoteClass::from_code(summary[1])
            .ok_or_else(|| DominoError::Corrupt("bad note class".into()))?;
        pos += 2;
        need(pos, 16 + 4 + 8 + 8 + 8 + 2)?;
        let unid = Unid::from_bytes(summary[pos..pos + 16].try_into().expect("16"));
        pos += 16;
        let seq = u32::from_le_bytes(summary[pos..pos + 4].try_into().expect("4"));
        pos += 4;
        let seq_time = Timestamp(u64::from_le_bytes(
            summary[pos..pos + 8].try_into().expect("8"),
        ));
        pos += 8;
        let created = Timestamp(u64::from_le_bytes(
            summary[pos..pos + 8].try_into().expect("8"),
        ));
        pos += 8;
        let modified = Timestamp(u64::from_le_bytes(
            summary[pos..pos + 8].try_into().expect("8"),
        ));
        pos += 8;
        let n = u16::from_le_bytes(summary[pos..pos + 2].try_into().expect("2")) as usize;
        pos += 2;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(Item::decode(summary, &mut pos)?);
        }
        if let Some(body) = body {
            let mut bpos = 0usize;
            if body.len() < 2 {
                return Err(DominoError::Corrupt("truncated note body".into()));
            }
            let bn = u16::from_le_bytes(body[0..2].try_into().expect("2")) as usize;
            bpos += 2;
            for _ in 0..bn {
                items.push(Item::decode(body, &mut bpos)?);
            }
        }
        Ok(Note {
            id,
            oid: Oid {
                unid,
                seq,
                seq_time,
            },
            class,
            created,
            modified,
            items,
        })
    }
}

impl DocContext for Note {
    fn item(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }

    fn created(&self) -> Timestamp {
        self.created
    }

    fn modified(&self) -> Timestamp {
        self.modified
    }

    fn unid_text(&self) -> String {
        format!("{}", self.unid())
    }

    fn is_response(&self) -> bool {
        Note::is_response(self)
    }
}

/// A deletion stub: what remains of a deleted note so the deletion itself
/// can replicate. Purged after the database's purge interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeletionStub {
    pub id: NoteId,
    pub oid: Oid,
    pub deleted_at: Timestamp,
}

impl DeletionStub {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40);
        buf.push(1u8); // record tag: stub
        buf.extend_from_slice(&self.oid.unid.to_bytes());
        buf.extend_from_slice(&self.oid.seq.to_le_bytes());
        buf.extend_from_slice(&self.oid.seq_time.0.to_le_bytes());
        buf.extend_from_slice(&self.deleted_at.0.to_le_bytes());
        buf
    }

    pub fn decode(id: NoteId, buf: &[u8]) -> Result<DeletionStub> {
        if buf.len() < 1 + 16 + 4 + 8 + 8 || buf[0] != 1 {
            return Err(DominoError::Corrupt("bad deletion stub record".into()));
        }
        let unid = Unid::from_bytes(buf[1..17].try_into().expect("16"));
        let seq = u32::from_le_bytes(buf[17..21].try_into().expect("4"));
        let seq_time = Timestamp(u64::from_le_bytes(buf[21..29].try_into().expect("8")));
        let deleted_at = Timestamp(u64::from_le_bytes(buf[29..37].try_into().expect("8")));
        Ok(DeletionStub {
            id,
            oid: Oid {
                unid,
                seq,
                seq_time,
            },
            deleted_at,
        })
    }
}

/// Are two copies of a note the *same revision*? Sequence numbers and
/// times can coincide across replicas (two edits at the same logical
/// tick), so identity is decided by the revision fingerprint, which mixes
/// in the editing replica's instance id.
pub fn same_revision(a: &Note, b: &Note) -> bool {
    a.unid() == b.unid()
        && a.oid.seq == b.oid.seq
        && match (a.revision_at(a.oid.seq), b.revision_at(b.oid.seq)) {
            (Some(ra), Some(rb)) => ra == rb,
            // Lineage missing (hand-built notes): fall back to OID equality.
            _ => a.oid == b.oid,
        }
}

/// Peek at a stored summary record's tag without full decode.
pub fn record_is_stub(summary: &[u8]) -> bool {
    summary.first() == Some(&1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("hello"));
        assert_eq!(n.get_text("subject").unwrap(), "hello");
        assert!(n.has("SUBJECT"));
        assert!(n.remove("Subject"));
        assert!(!n.has("Subject"));
        assert!(!n.remove("Subject"), "double remove is a no-op");
        // Tombstone still present underneath.
        assert_eq!(n.items_raw().len(), 2); // Form + tombstone
        assert_eq!(n.items().count(), 1);
    }

    #[test]
    fn set_after_remove_revives() {
        let mut n = Note::document("Memo");
        n.set("X", Value::Number(1.0));
        n.remove("X");
        n.set("X", Value::Number(2.0));
        assert_eq!(n.get("X"), Some(&Value::Number(2.0)));
    }

    #[test]
    fn encode_decode_roundtrip_with_body() {
        let mut n = Note::document("Memo");
        n.oid = Oid {
            unid: Unid(77),
            seq: 3,
            seq_time: Timestamp(30),
        };
        n.id = NoteId(9);
        n.created = Timestamp(10);
        n.modified = Timestamp(30);
        n.set("Subject", Value::text("hi"));
        n.set_body("Body", Value::RichText(vec![9u8; 5000]));
        n.remove("Subject");

        let summary = n.encode_summary();
        let body = n.encode_body().expect("has body");
        let back = Note::decode(NoteId(9), &summary, Some(&body)).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn encode_body_none_when_all_summary() {
        let n = Note::document("Memo");
        assert!(n.encode_body().is_none());
    }

    #[test]
    fn summary_segment_excludes_body_items() {
        let mut n = Note::document("Memo");
        n.set_body("Body", Value::RichText(vec![1u8; 1000]));
        let summary = n.encode_summary();
        assert!(summary.len() < 200, "body leaked into summary segment");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Note::decode(NoteId(1), &[], None).is_err());
        assert!(Note::decode(NoteId(1), &[9, 9, 9], None).is_err());
        let n = Note::document("M");
        let enc = n.encode_summary();
        assert!(Note::decode(NoteId(1), &enc[..enc.len() - 1], None).is_err());
    }

    #[test]
    fn parent_roundtrip() {
        let mut n = Note::document("Reply");
        assert!(!n.is_response());
        n.set_parent(Unid(0xABCD));
        assert_eq!(n.parent(), Some(Unid(0xABCD)));
        assert!(n.is_response());
    }

    #[test]
    fn readers_authors_collect_flagged_items() {
        let mut n = Note::document("Secret");
        n.set_with_flags(
            ITEM_READERS,
            Value::text_list(["alice", "bob"]),
            ItemFlags::SUMMARY | ItemFlags::READERS,
        );
        n.set_with_flags(
            "ExtraReaders",
            Value::text("carol"),
            ItemFlags::SUMMARY | ItemFlags::READERS,
        );
        n.set_with_flags(
            ITEM_AUTHORS,
            Value::text("dave"),
            ItemFlags::SUMMARY | ItemFlags::AUTHORS,
        );
        assert_eq!(n.readers(), vec!["alice", "bob", "carol"]);
        assert_eq!(n.authors(), vec!["dave"]);
    }

    #[test]
    fn doc_context_bridge() {
        use domino_formula::{EvalEnv, Formula};
        let mut n = Note::document("Order");
        n.set("Total", Value::Number(500.0));
        let f = Formula::compile(r#"SELECT Form = "Order" & Total > 100"#).unwrap();
        assert!(f.selects(&n, &EvalEnv::default()).unwrap());
    }

    #[test]
    fn stub_roundtrip() {
        let stub = DeletionStub {
            id: NoteId(4),
            oid: Oid {
                unid: Unid(5),
                seq: 7,
                seq_time: Timestamp(70),
            },
            deleted_at: Timestamp(71),
        };
        let enc = stub.encode();
        assert!(record_is_stub(&enc));
        assert_eq!(DeletionStub::decode(NoteId(4), &enc).unwrap(), stub);
        assert!(DeletionStub::decode(NoteId(4), &enc[..10]).is_err());
        let note_enc = Note::document("M").encode_summary();
        assert!(!record_is_stub(&note_enc));
    }
}
