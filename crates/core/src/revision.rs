//! Content-addressed revision history: the unbounded hash chain that
//! replaces the depth-capped `$Revisions` fingerprints as the ancestry
//! oracle.
//!
//! Every committed save appends one entry to the note's
//! [`ITEM_REVISION_HASHES`] item: the [`ContentHash`] of the new revision
//! (a digest over the note's canonical items plus its parent revision
//! hashes) and the revision's sequence time. The item holds the note's
//! full *ancestor set*, oldest first, ending with the current head — for
//! linear histories a chain, after a merge the deterministic union of
//! both parents' sets plus the merge revision itself. Because entries are
//! never dropped, a replica can prove descent at **any** edit depth: `a`
//! descends from `b` iff `b`'s head hash appears in `a`'s set. The
//! bounded `$Revisions` list is still maintained for compatibility
//! (convergence signatures, older tooling) but no longer decides
//! ancestry.
//!
//! The hash is a pure function of history: it covers the note's UNID,
//! sequence stamp, class, canonical item encodings, and parent hashes —
//! never the replica-local [`domino_types::NoteId`] or any instance
//! state — so every replica holding the same copy computes the same
//! head, and the digests are directly comparable across the wire (the
//! basis of Merkle negotiation, [`crate::merkle`]).

use domino_types::{ContentHash, ContentHasher, Item, Oid, Timestamp, Value};

use crate::note::Note;

/// Reserved item carrying the content-addressed revision chain.
pub const ITEM_REVISION_HASHES: &str = "$RevisionHashes";

/// Parsed revision chain: `(hash, seq_time)` per known ancestor, oldest
/// first, ending with the current head. Empty for hand-built notes that
/// never passed through `Database::save`.
pub fn revision_chain(note: &Note) -> Vec<(ContentHash, Timestamp)> {
    let Some(v) = note.get(ITEM_REVISION_HASHES) else {
        return Vec::new();
    };
    v.iter_scalars()
        .iter()
        .filter_map(|s| {
            let t = s.to_text();
            let (hash, time) = t.split_once('|')?;
            Some((
                ContentHash::from_hex(hash)?,
                Timestamp(u64::from_str_radix(time, 16).ok()?),
            ))
        })
        .collect()
}

/// The note's current head hash, if it carries a chain.
pub fn head_hash(note: &Note) -> Option<ContentHash> {
    revision_chain(note).last().map(|(h, _)| *h)
}

/// Does `note`'s ancestor set contain `hash`? (Reflexive: a note
/// contains its own head.)
pub fn chain_contains(note: &Note, hash: ContentHash) -> bool {
    revision_chain(note).iter().any(|(h, _)| *h == hash)
}

/// The *latest* revision present in both notes' ancestor sets — the
/// lowest common ancestor used as the merge base. "Latest" is decided by
/// `(seq_time, hash)` so both replicas pick the same entry. `None` when
/// the histories share nothing (or either chain is missing).
pub fn latest_common(a: &Note, b: &Note) -> Option<(ContentHash, Timestamp)> {
    let in_a: std::collections::HashSet<ContentHash> =
        revision_chain(a).iter().map(|(h, _)| *h).collect();
    revision_chain(b)
        .into_iter()
        .filter(|(h, _)| in_a.contains(h))
        .max_by_key(|(h, t)| (*t, h.0))
}

/// Content hash of the note's current state given its parent revision
/// hashes. Covers UNID, sequence stamp, class, and every item's canonical
/// encoding *except* the chain item itself (which records the result).
/// Items are hashed in name order so storage order never matters.
pub fn content_hash_of(note: &Note, parents: &[ContentHash]) -> ContentHash {
    let mut h = ContentHasher::new();
    h.update(b"rev-v1");
    h.update_u128(note.unid().0);
    h.update_u64(note.oid.seq as u64);
    h.update_u64(note.oid.seq_time.0);
    h.update(&[note.class.code()]);
    let mut items: Vec<&Item> = note
        .items_raw()
        .iter()
        .filter(|it| !it.name.eq_ignore_ascii_case(ITEM_REVISION_HASHES))
        .collect();
    items.sort_by(|a, b| {
        a.name
            .to_ascii_lowercase()
            .cmp(&b.name.to_ascii_lowercase())
    });
    let mut buf = Vec::new();
    for it in items {
        buf.clear();
        it.encode(&mut buf);
        h.update_u64(buf.len() as u64);
        h.update(&buf);
    }
    h.update_u64(parents.len() as u64);
    for p in parents {
        h.update_u128(p.0);
    }
    h.finish()
}

/// Replace the note's chain item wholesale (merge construction).
pub fn set_chain(note: &mut Note, entries: &[(ContentHash, Timestamp)]) {
    let encoded: Vec<String> = entries
        .iter()
        .map(|(h, t)| format!("{}|{:016x}", h.to_hex(), t.0))
        .collect();
    note.set(ITEM_REVISION_HASHES, Value::TextList(encoded));
}

/// Append a new head entry to the note's chain.
pub fn push_head(note: &mut Note, hash: ContentHash, time: Timestamp) {
    let mut entries = revision_chain(note);
    entries.push((hash, time));
    set_chain(note, &entries);
}

/// The deterministic ancestor-set union for a merge: the winner's entries
/// in order, then every loser entry not already present, in the loser's
/// order. Both replicas resolve winner/loser the same way, so both build
/// the same union (the merge head itself is appended by the caller).
pub fn merged_chain(winner: &Note, loser: &Note) -> Vec<(ContentHash, Timestamp)> {
    let mut out = revision_chain(winner);
    let seen: std::collections::HashSet<ContentHash> = out.iter().map(|(h, _)| *h).collect();
    for entry in revision_chain(loser) {
        if !seen.contains(&entry.0) {
            out.push(entry);
        }
    }
    out
}

/// Head hash of a deletion stub: derived from the stub's OID (which
/// replicates verbatim), so every replica that applied the same deletion
/// agrees on the entry.
pub fn stub_head(oid: &Oid) -> ContentHash {
    let mut h = ContentHasher::new();
    h.update(b"stub-v1");
    h.update_u128(oid.unid.0);
    h.update_u64(oid.seq as u64);
    h.update_u64(oid.seq_time.0);
    h.finish()
}

/// The head hash a note contributes to the Merkle summary. Normally the
/// chain head; truncated (summary-only) copies mix in a marker so a
/// partial copy never digest-matches the full revision (a full pull must
/// still be able to upgrade it). Notes without a chain (hand-built,
/// pre-upgrade data) fall back to a digest of the OID plus the last
/// `$Revisions` fingerprint — also replica-independent.
pub fn merkle_head(note: &Note) -> ContentHash {
    let base = match head_hash(note) {
        Some(h) => h,
        None => {
            let mut h = ContentHasher::new();
            h.update(b"oid-v1");
            h.update_u128(note.unid().0);
            h.update_u64(note.oid.seq as u64);
            h.update_u64(note.oid.seq_time.0);
            if let Some((fp, _)) = note.revision_at(note.oid.seq) {
                h.update_u64(fp);
            }
            h.finish()
        }
    };
    if note.is_truncated() {
        let mut h = ContentHasher::new();
        h.update(b"truncated-v1");
        h.update_u128(base.0);
        h.finish()
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_types::{NoteId, Unid};

    fn note_at(unid: u128, seq: u32, time: u64) -> Note {
        let mut n = Note::document("Memo");
        n.id = NoteId(7);
        n.oid = Oid {
            unid: Unid(unid),
            seq,
            seq_time: Timestamp(time),
        };
        n
    }

    #[test]
    fn chain_roundtrip_and_head() {
        let mut n = note_at(1, 1, 10);
        assert!(revision_chain(&n).is_empty());
        let h1 = content_hash_of(&n, &[]);
        push_head(&mut n, h1, Timestamp(10));
        let h2 = content_hash_of(&n, &[h1]);
        push_head(&mut n, h2, Timestamp(20));
        assert_eq!(
            revision_chain(&n),
            vec![(h1, Timestamp(10)), (h2, Timestamp(20))]
        );
        assert_eq!(head_hash(&n), Some(h2));
        assert!(chain_contains(&n, h1));
        assert!(!chain_contains(&n, ContentHash(0xdead)));
    }

    #[test]
    fn hash_ignores_note_id_and_item_order() {
        let mut a = note_at(5, 2, 30);
        a.set("B", Value::text("2"));
        a.set("A", Value::text("1"));
        let mut b = note_at(5, 2, 30);
        b.id = NoteId(99); // different local id
        b.set("A", Value::text("1"));
        b.set("B", Value::text("2")); // different insertion order
        assert_eq!(content_hash_of(&a, &[]), content_hash_of(&b, &[]));
    }

    #[test]
    fn hash_covers_items_and_parents() {
        let base = note_at(5, 2, 30);
        let mut changed = base.clone();
        changed.set("X", Value::text("new"));
        assert_ne!(content_hash_of(&base, &[]), content_hash_of(&changed, &[]));
        assert_ne!(
            content_hash_of(&base, &[]),
            content_hash_of(&base, &[ContentHash(1)])
        );
    }

    #[test]
    fn latest_common_picks_newest_shared_entry() {
        let mut a = note_at(1, 3, 30);
        let mut b = note_at(1, 3, 30);
        let shared_old = (ContentHash(10), Timestamp(10));
        let shared_new = (ContentHash(20), Timestamp(20));
        set_chain(
            &mut a,
            &[shared_old, shared_new, (ContentHash(31), Timestamp(30))],
        );
        set_chain(
            &mut b,
            &[shared_old, shared_new, (ContentHash(32), Timestamp(30))],
        );
        assert_eq!(latest_common(&a, &b), Some(shared_new));
    }

    #[test]
    fn merged_chain_is_a_deterministic_union() {
        let mut a = note_at(1, 3, 30);
        let mut b = note_at(1, 3, 30);
        let shared = (ContentHash(1), Timestamp(1));
        let a_only = (ContentHash(2), Timestamp(2));
        let b_only = (ContentHash(3), Timestamp(3));
        set_chain(&mut a, &[shared, a_only]);
        set_chain(&mut b, &[shared, b_only]);
        assert_eq!(merged_chain(&a, &b), vec![shared, a_only, b_only]);
    }

    #[test]
    fn truncated_copy_has_distinct_merkle_head() {
        let mut n = note_at(9, 1, 10);
        n.set_body("Body", Value::RichText(vec![1u8; 64]));
        let h = content_hash_of(&n, &[]);
        push_head(&mut n, h, Timestamp(10));
        let full_head = merkle_head(&n);
        let mut truncated = n.clone();
        truncated.truncate_to_summary();
        assert_ne!(merkle_head(&truncated), full_head);
        assert_eq!(head_hash(&truncated), Some(h), "chain survives truncation");
    }

    #[test]
    fn stub_head_depends_only_on_oid() {
        let oid = Oid {
            unid: Unid(4),
            seq: 2,
            seq_time: Timestamp(40),
        };
        assert_eq!(stub_head(&oid), stub_head(&oid));
        let mut other = oid;
        other.seq = 3;
        assert_ne!(stub_head(&oid), stub_head(&other));
    }
}
