//! Sessions: the ACL-enforcing face of a database.
//!
//! A [`Session`] binds a database to a user (and the group directory) and
//! checks every operation against the effective ACL level, per-document
//! `$Readers`/`$Authors` items, and protected-item rules — the enforcement
//! points the paper describes for Notes clients and servers.

use std::sync::Arc;

use domino_formula::{EvalEnv, Formula};
use domino_security::{can_edit_document, can_read_document, AccessLevel, Directory};
use domino_types::{Clock, DominoError, ItemFlags, NoteId, Result, Unid, Value};

use crate::db::Database;
use crate::note::Note;

/// Item stamped with the creating user (used for Author-level edit checks).
pub const ITEM_FROM: &str = "From";

/// Item accumulating the editors of each revision (bounded, like Notes'
/// `$UpdatedBy`).
pub const ITEM_UPDATED_BY: &str = "$UpdatedBy";

const MAX_UPDATED_BY: usize = 32;

fn stamp_updated_by(note: &mut Note, user: &str) {
    let mut editors: Vec<String> = match note.get(ITEM_UPDATED_BY) {
        Some(v) => v.iter_scalars().iter().map(|s| s.to_text()).collect(),
        None => Vec::new(),
    };
    if editors.last().map(|l| l.eq_ignore_ascii_case(user)) != Some(true) {
        editors.push(user.to_string());
        if editors.len() > MAX_UPDATED_BY {
            let drop = editors.len() - MAX_UPDATED_BY;
            editors.drain(..drop);
        }
        note.set(ITEM_UPDATED_BY, Value::TextList(editors));
    }
}

/// A user's handle on a database.
pub struct Session {
    db: Arc<Database>,
    user: String,
    directory: Directory,
}

impl Session {
    pub fn new(db: Arc<Database>, user: &str, directory: Directory) -> Session {
        Session {
            db,
            user: user.to_string(),
            directory,
        }
    }

    pub fn user(&self) -> &str {
        &self.user
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Formula environment for this user (deterministic `@Now`).
    pub fn env(&self) -> EvalEnv {
        EvalEnv {
            username: self.user.clone(),
            now: self.db.clock().peek(),
            db_title: self.db.title(),
            ..EvalEnv::default()
        }
    }

    fn access(&self) -> Result<domino_security::acl::EffectiveAccess> {
        Ok(self.db.acl()?.effective(&self.directory, &self.user))
    }

    fn names(&self) -> Vec<String> {
        self.directory.names_of(&self.user)
    }

    /// Open a note, enforcing reader access. Reads come from a pinned
    /// snapshot and never wait on writers.
    pub fn open_note(&self, id: NoteId) -> Result<Note> {
        let note = self.db.snapshot().open_note(id)?;
        self.check_readable(&note)?;
        Ok(note)
    }

    pub fn open_by_unid(&self, unid: Unid) -> Result<Note> {
        let note = self.db.snapshot().open_by_unid(unid)?;
        self.check_readable(&note)?;
        Ok(note)
    }

    fn check_readable(&self, note: &Note) -> Result<()> {
        let access = self.access()?;
        let mut names = self.names();
        // A user always reads documents they authored (Notes behaviour for
        // author-restricted drafts).
        names.push(self.user.to_lowercase());
        if can_read_document(&access, &names, &note.readers()) {
            Ok(())
        } else {
            Err(DominoError::AccessDenied(format!(
                "{} may not read {}",
                self.user,
                note.unid()
            )))
        }
    }

    /// Save (create or update) with create/edit enforcement. Creations are
    /// stamped with a `From` item naming the author. If a form design
    /// matching the note's `Form` item is stored in the database, its
    /// default/computed/validation formulas run first.
    pub fn save(&self, note: &mut Note) -> Result<()> {
        let access = self.access()?;
        if note.is_draft() {
            if !access.level.can_create() {
                return Err(DominoError::AccessDenied(format!(
                    "{} ({}) may not create documents",
                    self.user,
                    access.level.name()
                )));
            }
            if !note.has(ITEM_FROM) {
                note.set(ITEM_FROM, Value::text(self.user.clone()));
            }
            stamp_updated_by(note, &self.user);
            if let Some(form) = crate::form::form_for(&self.db, note)? {
                form.process(note, &self.env(), true)?;
            }
            return self.db.save(note);
        }
        stamp_updated_by(note, &self.user);
        if let Some(form) = crate::form::form_for(&self.db, note)? {
            form.process(note, &self.env(), false)?;
        }

        // Update path: check edit rights against the stored copy.
        let stored = self.db.open_note(note.id)?;
        self.check_readable(&stored)?;
        let author = stored.get_text(ITEM_FROM).unwrap_or_default();
        if !can_edit_document(&access, &self.names(), &stored.authors(), &author) {
            return Err(DominoError::AccessDenied(format!(
                "{} may not edit {}",
                self.user,
                note.unid()
            )));
        }
        // Author-level users may not alter protected items.
        if !access.level.can_edit_any() {
            for old in stored.items_raw() {
                if old.flags.contains(ItemFlags::PROTECTED) {
                    let changed = match note
                        .items_raw()
                        .iter()
                        .find(|n| n.name.eq_ignore_ascii_case(&old.name))
                    {
                        Some(new) => new.value != old.value,
                        None => true,
                    };
                    if changed {
                        return Err(DominoError::AccessDenied(format!(
                            "item {} is protected",
                            old.name
                        )));
                    }
                }
            }
        }
        self.db.save(note)
    }

    /// Delete with enforcement (Editor+, or the document's author).
    pub fn delete(&self, id: NoteId) -> Result<()> {
        let access = self.access()?;
        let stored = self.db.open_note(id)?;
        self.check_readable(&stored)?;
        let author = stored.get_text(ITEM_FROM).unwrap_or_default();
        let may = access.level.can_delete()
            || (access.level == AccessLevel::Author
                && self.names().iter().any(|n| n.eq_ignore_ascii_case(&author)));
        if !may {
            return Err(DominoError::AccessDenied(format!(
                "{} may not delete {}",
                self.user, id
            )));
        }
        self.db.delete(id)?;
        Ok(())
    }

    /// Search, returning only documents the user may read. Runs against
    /// one snapshot, so results are a consistent point-in-time answer.
    pub fn search(&self, formula: &Formula) -> Result<Vec<Note>> {
        let all = self.db.snapshot().search(formula, &self.env())?;
        let access = self.access()?;
        if !access.level.can_read() {
            return Err(DominoError::AccessDenied(format!(
                "{} may not read {}",
                self.user,
                self.db.title()
            )));
        }
        let names = self.names();
        Ok(all
            .into_iter()
            .filter(|n| can_read_document(&access, &names, &n.readers()))
            .collect())
    }

    /// Unread documents for this user (readable ones only).
    pub fn unread(&self) -> Result<Vec<Unid>> {
        let unids = self.db.unread_unids(&self.user)?;
        let access = self.access()?;
        let names = self.names();
        let snap = self.db.snapshot();
        let mut out = Vec::new();
        for unid in unids {
            let note = snap.open_by_unid(unid)?;
            if can_read_document(&access, &names, &note.readers()) {
                out.push(unid);
            }
        }
        Ok(out)
    }

    /// Mark a document read for this user.
    pub fn mark_read(&self, unid: Unid) {
        self.db.mark_read(&self.user, unid);
    }
}
