//! Abstract syntax of formulas.

use domino_types::Value;

/// Binary operators. Arithmetic and comparison use pairwise list semantics;
/// `PermEq`/`PermNe` compare every combination of elements (`*=` / `*<>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PermEq,
    PermNe,
    And,
    Or,
    /// `:` — list concatenation.
    Concat,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::PermEq => "*=",
            BinOp::PermNe => "*<>",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Concat => ":",
        }
    }

    /// Is this a comparison producing a boolean (1/0) result?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::PermEq
                | BinOp::PermNe
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation (pairwise over lists).
    Neg,
    /// Logical not.
    Not,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value (number or string from source text).
    Lit(Value),
    /// Reference to an item or temporary variable by (case-insensitive)
    /// name. Variables shadow items, as in Notes.
    Ref(String),
    /// `name := expr` — bind a temporary variable.
    Assign(String, Box<Expr>),
    /// `FIELD name := expr` — write an item on the document being computed.
    FieldAssign(String, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `@name(arg; arg; ...)` — `@`-function call. For functions like
    /// `@If`, argument evaluation is lazy (handled by the evaluator).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Walk the tree, calling `f` on every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Ref(_) => {}
            Expr::Assign(_, e) | Expr::FieldAssign(_, e) | Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }
}

/// One statement of a formula program.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain expression; its value becomes the program result if it is
    /// the last statement.
    Expr(Expr),
    /// `SELECT expr` — the selection predicate for view/replication use.
    Select(Expr),
}

/// A compiled formula: a `;`-separated list of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub statements: Vec<Statement>,
}

impl Program {
    /// Index of the `SELECT` statement, if any.
    pub fn select_index(&self) -> Option<usize> {
        self.statements
            .iter()
            .position(|s| matches!(s, Statement::Select(_)))
    }

    /// Does any expression call the named @-function (lowercase name)?
    pub fn mentions_function(&self, name: &str) -> bool {
        let mut found = false;
        for st in &self.statements {
            let e = match st {
                Statement::Expr(e) | Statement::Select(e) => e,
            };
            e.visit(&mut |node| {
                if let Expr::Call(n, _) = node {
                    if n == name {
                        found = true;
                    }
                }
            });
        }
        found
    }

    /// All item/variable names referenced (for dependency tracking in view
    /// maintenance: a view only needs refreshing for items it reads).
    pub fn referenced_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for st in &self.statements {
            let e = match st {
                Statement::Expr(e) | Statement::Select(e) => e,
            };
            e.visit(&mut |node| {
                if let Expr::Ref(n) = node {
                    names.push(n.to_lowercase());
                }
            });
        }
        names.sort_unstable();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Ref("a".into())),
            Box::new(Expr::Call(
                "sum".into(),
                vec![Expr::Lit(Value::Number(1.0))],
            )),
        );
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn referenced_names_dedup_and_fold_case() {
        let p = Program {
            statements: vec![
                Statement::Expr(Expr::Binary(
                    BinOp::Add,
                    Box::new(Expr::Ref("Total".into())),
                    Box::new(Expr::Ref("TOTAL".into())),
                )),
                Statement::Select(Expr::Ref("Form".into())),
            ],
        };
        assert_eq!(
            p.referenced_names(),
            vec!["form".to_string(), "total".to_string()]
        );
    }

    #[test]
    fn select_index_found() {
        let p = Program {
            statements: vec![
                Statement::Expr(Expr::Lit(Value::Number(1.0))),
                Statement::Select(Expr::Lit(Value::Number(1.0))),
            ],
        };
        assert_eq!(p.select_index(), Some(1));
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::PermNe.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Concat.is_comparison());
    }
}
