//! Process-wide compiled-formula cache.
//!
//! View selection formulas are compiled from the same source string over
//! and over: every view open, every rebuild of a design reloaded from its
//! design note, every replica applying the same selective-replication
//! formula. Parsing is pure, so the compiled [`Program`] can be shared —
//! this module interns `source → Arc<Program>` once per process and hands
//! out cheap clones.
//!
//! [`compile_cached`] reports whether the lookup hit so callers (the view
//! index surfaces this in its `ViewStats`) can account cache behavior;
//! [`stats`] exposes the process-wide totals. Failed parses are not
//! cached: errors are rare, and callers treat them as hard failures
//! anyway.
//!
//! The hit/miss counters are registry-backed (`Formula.Cache.Hits` /
//! `Formula.Cache.Misses` in `domino-obs`), with `Formula.Cache.Entries`
//! a gauge of the interned-program count. Both the process-wide counters
//! here and the per-view counters in `ViewStats` derive from the *same*
//! `compile_cached` outcome — one lookup, one verdict, counted once at
//! each granularity — which is what keeps the two surfaces correlatable.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use domino_obs as obs;
use domino_types::Result;

use crate::ast::Program;
use crate::parser::parse;
use crate::Formula;

struct Cache {
    programs: Mutex<HashMap<String, Arc<Program>>>,
    hits: &'static obs::Counter,
    misses: &'static obs::Counter,
    entries: &'static obs::Gauge,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Cache {
        programs: Mutex::new(HashMap::new()),
        hits: obs::counter("Formula.Cache.Hits"),
        misses: obs::counter("Formula.Cache.Misses"),
        entries: obs::gauge("Formula.Cache.Entries"),
    })
}

/// Snapshot of the process-wide cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Distinct formula sources currently interned.
    pub entries: usize,
}

/// Compile via the cache; the `bool` is true on a cache hit.
pub fn compile_cached(source: &str) -> Result<(Formula, bool)> {
    let c = cache();
    if let Some(program) = c.programs.lock().expect("formula cache lock").get(source) {
        c.hits.inc();
        return Ok((
            Formula {
                source: source.to_string(),
                program: Arc::clone(program),
            },
            true,
        ));
    }
    // Parse outside the lock: compilation can be slow and other threads
    // should not queue behind it. Two racing threads may both parse; the
    // first insert wins and both results are equivalent.
    let program = Arc::new(parse(source)?);
    c.misses.inc();
    let program = {
        let mut map = c.programs.lock().expect("formula cache lock");
        let program = Arc::clone(map.entry(source.to_string()).or_insert(program));
        c.entries.set(map.len() as i64);
        program
    };
    Ok((
        Formula {
            source: source.to_string(),
            program,
        },
        false,
    ))
}

/// Process-wide hit/miss/entry counts — a thin shim over the registry
/// counters (`Formula.Cache.*`), kept so existing call sites stay green.
pub fn stats() -> CacheStats {
    let c = cache();
    CacheStats {
        hits: c.hits.get(),
        misses: c.misses.get(),
        entries: c.programs.lock().expect("formula cache lock").len(),
    }
}

/// Drop all interned programs (counters keep running). Outstanding
/// `Formula` clones stay valid — they own `Arc`s into the parse.
pub fn clear() {
    let c = cache();
    let mut map = c.programs.lock().expect("formula cache lock");
    map.clear();
    c.entries.set(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalEnv, MapDoc};
    use domino_types::Value;

    // One test drives the full hit/miss/clear lifecycle: `clear()` wipes
    // the whole process-wide map, so running it concurrently with other
    // cache tests would make their hit assertions racy.
    #[test]
    fn cache_lifecycle() {
        // A source unique to this test so other crates' cache traffic
        // cannot interfere with the hit/miss assertions.
        let src = "1 + 2 + 39000";
        let (a, hit_a) = compile_cached(src).unwrap();
        let (b, hit_b) = compile_cached(src).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a.program, &b.program));
        assert_eq!(
            b.eval(&MapDoc::new(), &EvalEnv::default()).unwrap(),
            Value::Number(39003.0)
        );
        let s = stats();
        assert!(s.hits >= 1 && s.misses >= 1 && s.entries >= 1);

        // Parse errors are reported every time, never cached.
        assert!(compile_cached("@@@ not a formula %%%").is_err());
        assert!(compile_cached("@@@ not a formula %%%").is_err());

        // Clearing drops entries but outstanding formulas keep their
        // Arc'd programs.
        clear();
        assert_eq!(
            a.eval(&MapDoc::new(), &EvalEnv::default()).unwrap(),
            Value::Number(39003.0)
        );
        let (_, hit) = compile_cached(src).unwrap();
        assert!(!hit, "cleared entry must miss on recompile");
    }

    #[test]
    fn formula_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Formula>();
        assert_send_sync::<EvalEnv>();
    }
}
