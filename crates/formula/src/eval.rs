//! Formula evaluation.
//!
//! An [`Evaluator`] walks a [`Program`] against anything that implements
//! [`DocContext`]. Infix operators use Notes *pairwise* list semantics:
//! operating on two lists pairs their elements (reusing the shorter list's
//! last element when lengths differ); non-permuted comparisons succeed if
//! *any* pair satisfies them, and the permuted forms (`*=`, `*<>`) compare
//! every combination.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Program, Statement, UnOp};
use crate::functions;
use domino_types::{DateTime, DominoError, Result, Timestamp, Value};

/// Read-only view of a document as formulas see it.
///
/// Item lookup is case-insensitive (Notes item names are). The default
/// metadata methods let simple doc types skip implementing them.
pub trait DocContext {
    /// Fetch an item value by case-insensitive name.
    fn item(&self, name: &str) -> Option<Value>;

    /// Creation time (`@Created`).
    fn created(&self) -> Timestamp {
        Timestamp::ZERO
    }

    /// Last-modified time (`@Modified`).
    fn modified(&self) -> Timestamp {
        Timestamp::ZERO
    }

    /// Universal id rendered as hex (`@DocUniqueID`); empty if unknown.
    fn unid_text(&self) -> String {
        String::new()
    }

    /// Is this a response document (`@IsResponseDoc`)?
    fn is_response(&self) -> bool {
        false
    }
}

/// A plain in-memory document, used in tests and anywhere a formula must be
/// evaluated against ad-hoc data.
#[derive(Debug, Clone, Default)]
pub struct MapDoc {
    items: HashMap<String, Value>,
    created: Timestamp,
    modified: Timestamp,
}

impl MapDoc {
    pub fn new() -> MapDoc {
        MapDoc::default()
    }

    pub fn with(mut self, name: &str, value: Value) -> MapDoc {
        self.items.insert(name.to_lowercase(), value);
        self
    }

    pub fn with_times(mut self, created: Timestamp, modified: Timestamp) -> MapDoc {
        self.created = created;
        self.modified = modified;
        self
    }

    pub fn set(&mut self, name: &str, value: Value) {
        self.items.insert(name.to_lowercase(), value);
    }
}

impl DocContext for MapDoc {
    fn item(&self, name: &str) -> Option<Value> {
        self.items.get(&name.to_lowercase()).cloned()
    }

    fn created(&self) -> Timestamp {
        self.created
    }

    fn modified(&self) -> Timestamp {
        self.modified
    }
}

/// Ambient evaluation environment: who is asking and what time it is.
#[derive(Debug, Clone)]
pub struct EvalEnv {
    /// The effective user (`@UserName`).
    pub username: String,
    /// "Now" for `@Now` — injected so evaluation stays deterministic.
    pub now: Timestamp,
    /// Title of the containing database (`@DbTitle`).
    pub db_title: String,
    /// Workstation environment variables (`@Environment` /
    /// `@SetEnvironment` — notes.ini settings in real Notes). Writes made
    /// during a run surface in [`EvalOutput::environment_writes`]; the
    /// caller persists them into the next run's environment.
    pub environment: std::collections::HashMap<String, String>,
}

impl Default for EvalEnv {
    fn default() -> EvalEnv {
        EvalEnv {
            username: "Anonymous".to_string(),
            now: Timestamp::ZERO,
            db_title: String::new(),
            environment: Default::default(),
        }
    }
}

impl EvalEnv {
    pub fn user(username: impl Into<String>) -> EvalEnv {
        EvalEnv {
            username: username.into(),
            ..EvalEnv::default()
        }
    }
}

/// Everything a formula run produced.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// Value of the last evaluated statement.
    pub value: Value,
    /// Verdict of the `SELECT` statement, or the truthiness of `value` when
    /// no `SELECT` is present (non-boolean results count as not selected).
    pub selected: bool,
    /// `FIELD x := ...` writes, in execution order.
    pub field_writes: Vec<(String, Value)>,
    /// `@AllDescendants` was invoked (view should pull in all responses of
    /// selected ancestors).
    pub include_descendants: bool,
    /// `@AllChildren` was invoked (immediate responses only).
    pub include_children: bool,
    /// `@SetEnvironment` writes, in execution order.
    pub environment_writes: Vec<(String, String)>,
}

/// The tree-walking interpreter. Cheap to construct; holds per-run state
/// (temporary variables, field writes).
pub struct Evaluator<'e> {
    pub(crate) env: &'e EvalEnv,
    pub(crate) vars: HashMap<String, Value>,
    pub(crate) field_writes: Vec<(String, Value)>,
    pub(crate) environment_writes: Vec<(String, String)>,
    pub(crate) include_descendants: bool,
    pub(crate) include_children: bool,
}

impl<'e> Evaluator<'e> {
    pub fn new(env: &'e EvalEnv) -> Evaluator<'e> {
        Evaluator {
            env,
            vars: HashMap::new(),
            field_writes: Vec::new(),
            environment_writes: Vec::new(),
            include_descendants: false,
            include_children: false,
        }
    }

    /// Run a whole program against a document.
    pub fn run(mut self, program: &Program, doc: &dyn DocContext) -> Result<EvalOutput> {
        let mut last = Value::text("");
        let mut selected: Option<bool> = None;
        for st in &program.statements {
            match st {
                Statement::Expr(e) => {
                    last = self.eval_expr(e, doc)?;
                }
                Statement::Select(e) => {
                    let v = self.eval_expr(e, doc)?;
                    selected = Some(v.as_bool().unwrap_or(false));
                }
            }
        }
        let selected = selected.unwrap_or_else(|| last.as_bool().unwrap_or(false));
        Ok(EvalOutput {
            value: last,
            selected,
            field_writes: self.field_writes,
            environment_writes: self.environment_writes,
            include_descendants: self.include_descendants,
            include_children: self.include_children,
        })
    }

    pub(crate) fn eval_expr(&mut self, e: &Expr, doc: &dyn DocContext) -> Result<Value> {
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Ref(name) => {
                let key = name.to_lowercase();
                if let Some(v) = self.vars.get(&key) {
                    return Ok(v.clone());
                }
                // A pending FIELD write shadows the stored item.
                if let Some((_, v)) = self
                    .field_writes
                    .iter()
                    .rev()
                    .find(|(n, _)| n.eq_ignore_ascii_case(name))
                {
                    return Ok(v.clone());
                }
                // Missing items read as "" — the Notes convention that lets
                // `SELECT Status = ""` match docs without the field.
                Ok(doc.item(name).unwrap_or_else(|| Value::text("")))
            }
            Expr::Assign(name, rhs) => {
                let v = self.eval_expr(rhs, doc)?;
                self.vars.insert(name.to_lowercase(), v.clone());
                Ok(v)
            }
            Expr::FieldAssign(name, rhs) => {
                let v = self.eval_expr(rhs, doc)?;
                self.field_writes.push((name.clone(), v.clone()));
                Ok(v)
            }
            Expr::Unary(op, inner) => {
                let v = self.eval_expr(inner, doc)?;
                match op {
                    UnOp::Neg => map_numeric(&v, |n| -n),
                    UnOp::Not => Ok(Value::from(!v.as_bool()?)),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let a = self.eval_expr(lhs, doc)?;
                // Short-circuit & and |.
                match op {
                    BinOp::And => {
                        if !a.as_bool()? {
                            return Ok(Value::from(false));
                        }
                        let b = self.eval_expr(rhs, doc)?;
                        return Ok(Value::from(b.as_bool()?));
                    }
                    BinOp::Or => {
                        if a.as_bool()? {
                            return Ok(Value::from(true));
                        }
                        let b = self.eval_expr(rhs, doc)?;
                        return Ok(Value::from(b.as_bool()?));
                    }
                    _ => {}
                }
                let b = self.eval_expr(rhs, doc)?;
                apply_binary(*op, &a, &b)
            }
            Expr::Call(name, args) => functions::call(self, name, args, doc),
        }
    }
}

/// Apply `f` to every numeric element (scalar or list).
fn map_numeric(v: &Value, f: impl Fn(f64) -> f64) -> Result<Value> {
    match v {
        Value::Number(n) => Ok(Value::Number(f(*n))),
        Value::NumberList(v) => Ok(Value::NumberList(v.iter().map(|n| f(*n)).collect())),
        other => Err(DominoError::FormulaEval(format!(
            "numeric operator applied to {:?}",
            other.value_type()
        ))),
    }
}

/// Pair elements of two values. When lengths differ the shorter side's last
/// element is reused — Notes' documented list-pairing rule.
fn pairs(a: &Value, b: &Value) -> Vec<(Value, Value)> {
    let xs = a.iter_scalars();
    let ys = b.iter_scalars();
    if xs.is_empty() || ys.is_empty() {
        return Vec::new();
    }
    let n = xs.len().max(ys.len());
    (0..n)
        .map(|i| {
            let x = xs.get(i).unwrap_or_else(|| xs.last().expect("nonempty"));
            let y = ys.get(i).unwrap_or_else(|| ys.last().expect("nonempty"));
            (x.clone(), y.clone())
        })
        .collect()
}

/// Compare two scalar values. Text compares case-insensitively (the Notes
/// default); mixed scalar types are an evaluation error.
pub(crate) fn compare_scalars(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => Ok(x.partial_cmp(y).unwrap_or(Ordering::Equal)),
        (Value::Text(x), Value::Text(y)) => Ok(x.to_lowercase().cmp(&y.to_lowercase())),
        (Value::DateTime(x), Value::DateTime(y)) => Ok(x.cmp(y)),
        _ => Err(DominoError::FormulaEval(format!(
            "cannot compare {:?} with {:?}",
            a.value_type(),
            b.value_type()
        ))),
    }
}

fn apply_binary(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    use std::cmp::Ordering;
    match op {
        BinOp::Concat => {
            let mut items = a.iter_scalars();
            items.extend(b.iter_scalars());
            // `:` always yields a list, even for two scalars.
            match Value::from_scalars(items.clone())? {
                v @ (Value::NumberList(_) | Value::TextList(_) | Value::DateTimeList(_)) => Ok(v),
                Value::Number(n) => Ok(Value::NumberList(vec![n])),
                Value::Text(s) => Ok(Value::TextList(vec![s])),
                Value::DateTime(d) => Ok(Value::DateTimeList(vec![d])),
                other => Ok(other),
            }
        }
        BinOp::Add => pairwise_each(a, b, |x, y| match (x, y) {
            (Value::Text(s), y) => Ok(Value::Text(format!("{s}{}", y.to_text()))),
            (x, Value::Text(s)) => Ok(Value::Text(format!("{}{s}", x.to_text()))),
            (Value::DateTime(d), Value::Number(n)) => {
                Ok(Value::DateTime(DateTime(d.0 + *n as i64)))
            }
            (Value::Number(n), Value::DateTime(d)) => {
                Ok(Value::DateTime(DateTime(d.0 + *n as i64)))
            }
            (x, y) => Ok(Value::Number(x.as_number()? + y.as_number()?)),
        }),
        BinOp::Sub => pairwise_each(a, b, |x, y| match (x, y) {
            (Value::DateTime(p), Value::DateTime(q)) => Ok(Value::Number((p.0 - q.0) as f64)),
            (Value::DateTime(d), Value::Number(n)) => {
                Ok(Value::DateTime(DateTime(d.0 - *n as i64)))
            }
            (x, y) => Ok(Value::Number(x.as_number()? - y.as_number()?)),
        }),
        BinOp::Mul => pairwise_each(a, b, |x, y| {
            Ok(Value::Number(x.as_number()? * y.as_number()?))
        }),
        BinOp::Div => pairwise_each(a, b, |x, y| {
            let d = y.as_number()?;
            if d == 0.0 {
                return Err(DominoError::FormulaEval("division by zero".into()));
            }
            Ok(Value::Number(x.as_number()? / d))
        }),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let want = |ord: Ordering| match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            // Comparing against an empty ("no value") side: only equality
            // with another empty value holds.
            let ps = pairs(a, b);
            if ps.is_empty() {
                let both_empty = a.iter_scalars().is_empty() && b.iter_scalars().is_empty();
                return Ok(Value::from(match op {
                    BinOp::Eq => both_empty,
                    BinOp::Ne => !both_empty,
                    _ => false,
                }));
            }
            for (x, y) in &ps {
                if want(compare_scalars(x, y)?) {
                    return Ok(Value::from(true));
                }
            }
            Ok(Value::from(false))
        }
        BinOp::PermEq | BinOp::PermNe => {
            let xs = a.iter_scalars();
            let ys = b.iter_scalars();
            for x in &xs {
                for y in &ys {
                    let ord = compare_scalars(x, y)?;
                    let hit = match op {
                        BinOp::PermEq => ord == Ordering::Equal,
                        BinOp::PermNe => ord != Ordering::Equal,
                        _ => unreachable!(),
                    };
                    if hit {
                        return Ok(Value::from(true));
                    }
                }
            }
            Ok(Value::from(false))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited in eval_expr"),
    }
}

/// Apply `f` pairwise and rebuild a scalar or list result.
fn pairwise_each(
    a: &Value,
    b: &Value,
    f: impl Fn(&Value, &Value) -> Result<Value>,
) -> Result<Value> {
    let ps = pairs(a, b);
    if ps.is_empty() {
        return Ok(Value::TextList(Vec::new()));
    }
    if ps.len() == 1 {
        return f(&ps[0].0, &ps[0].1);
    }
    let mut out = Vec::with_capacity(ps.len());
    for (x, y) in &ps {
        out.push(f(x, y)?);
    }
    Value::from_scalars(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Formula;

    fn eval(src: &str) -> Value {
        eval_doc(src, &MapDoc::new())
    }

    fn eval_doc(src: &str, doc: &MapDoc) -> Value {
        Formula::compile(src)
            .unwrap()
            .eval(doc, &EvalEnv::default())
            .unwrap()
    }

    fn eval_err(src: &str) -> DominoError {
        Formula::compile(src)
            .unwrap()
            .eval(&MapDoc::new(), &EvalEnv::default())
            .unwrap_err()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3"), Value::Number(7.0));
        assert_eq!(eval("(1 + 2) * 3"), Value::Number(9.0));
        assert_eq!(eval("10 / 4"), Value::Number(2.5));
        assert_eq!(eval("-5 + 2"), Value::Number(-3.0));
    }

    #[test]
    fn division_by_zero_errors() {
        assert_eq!(eval_err("1 / 0").kind(), "formula_eval");
    }

    #[test]
    fn text_plus_concatenates() {
        assert_eq!(eval(r#""foo" + "bar""#), Value::text("foobar"));
        assert_eq!(eval(r#""n=" + 5"#), Value::text("n=5"));
    }

    #[test]
    fn list_concat_operator() {
        assert_eq!(
            eval(r#""a" : "b" : "c""#),
            Value::text_list(["a", "b", "c"])
        );
        assert_eq!(eval("1 : 2"), Value::NumberList(vec![1.0, 2.0]));
    }

    #[test]
    fn pairwise_arithmetic_extends_shorter_list() {
        // (1:2:3) + (10:20) => 11 : 22 : 23   (last element 20 reused)
        assert_eq!(
            eval("(1 : 2 : 3) + (10 : 20)"),
            Value::NumberList(vec![11.0, 22.0, 23.0])
        );
        // scalar broadcasts across the list
        assert_eq!(
            eval("(1 : 2 : 3) * 2"),
            Value::NumberList(vec![2.0, 4.0, 6.0])
        );
    }

    #[test]
    fn pairwise_text_concat_lists() {
        assert_eq!(eval(r#"("a" : "b") + "x""#), Value::text_list(["ax", "bx"]));
    }

    #[test]
    fn equality_any_pair_semantics() {
        let doc = MapDoc::new().with("Tags", Value::text_list(["red", "blue"]));
        assert_eq!(eval_doc(r#"Tags = "blue""#, &doc), Value::from(true));
        assert_eq!(eval_doc(r#"Tags = "green""#, &doc), Value::from(false));
        // <> is "any pair differs"
        assert_eq!(eval_doc(r#"Tags <> "red""#, &doc), Value::from(true));
    }

    #[test]
    fn permuted_equality() {
        assert_eq!(eval(r#"("a" : "b") *= ("x" : "b")"#), Value::from(true));
        assert_eq!(eval(r#"("a" : "b") *= ("x" : "y")"#), Value::from(false));
    }

    #[test]
    fn text_comparison_case_insensitive() {
        assert_eq!(eval(r#""Apple" = "APPLE""#), Value::from(true));
        assert_eq!(eval(r#""a" < "B""#), Value::from(true));
    }

    #[test]
    fn mixed_type_comparison_errors() {
        assert_eq!(eval_err(r#"1 = "one""#).kind(), "formula_eval");
    }

    #[test]
    fn logic_short_circuits() {
        // RHS would divide by zero; && must not evaluate it.
        assert_eq!(eval("0 & (1 / 0)"), Value::from(false));
        assert_eq!(eval("1 | (1 / 0)"), Value::from(true));
        assert_eq!(eval("!0"), Value::from(true));
    }

    #[test]
    fn missing_items_read_as_empty_text() {
        assert_eq!(eval(r#"Missing = """#), Value::from(true));
        assert_eq!(eval(r#"Missing <> """#), Value::from(false));
    }

    #[test]
    fn variables_shadow_items() {
        let doc = MapDoc::new().with("x", Value::Number(100.0));
        assert_eq!(eval_doc("x := 2; x * 3", &doc), Value::Number(6.0));
        assert_eq!(eval_doc("x * 3", &doc), Value::Number(300.0));
    }

    #[test]
    fn variable_names_case_insensitive() {
        assert_eq!(eval("Total := 4; TOTAL + 1"), Value::Number(5.0));
    }

    #[test]
    fn field_writes_recorded_and_visible() {
        let f = Formula::compile(r#"FIELD Status := "Done"; Status"#).unwrap();
        let out = f.eval_full(&MapDoc::new(), &EvalEnv::default()).unwrap();
        assert_eq!(out.value, Value::text("Done"));
        assert_eq!(
            out.field_writes,
            vec![("Status".to_string(), Value::text("Done"))]
        );
    }

    #[test]
    fn select_verdict() {
        let doc = MapDoc::new().with("Form", Value::text("Memo"));
        let f = Formula::compile(r#"SELECT Form = "Memo""#).unwrap();
        assert!(f.selects(&doc, &EvalEnv::default()).unwrap());
        let g = Formula::compile(r#"SELECT Form = "Order""#).unwrap();
        assert!(!g.selects(&doc, &EvalEnv::default()).unwrap());
    }

    #[test]
    fn datetime_arithmetic() {
        let doc = MapDoc::new().with("When", Value::DateTime(DateTime(100)));
        assert_eq!(eval_doc("When + 5", &doc), Value::DateTime(DateTime(105)));
        assert_eq!(eval_doc("When - 40", &doc), Value::DateTime(DateTime(60)));
        let doc2 = doc.with("Then", Value::DateTime(DateTime(30)));
        assert_eq!(eval_doc("When - Then", &doc2), Value::Number(70.0));
    }

    #[test]
    fn comparing_against_empty_list() {
        let doc = MapDoc::new().with("Tags", Value::TextList(vec![]));
        assert_eq!(eval_doc(r#"Tags = """#, &doc), Value::from(false));
        assert_eq!(eval_doc("Tags = Tags", &doc), Value::from(true));
    }
}
