//! The built-in `@`-function library.
//!
//! Over fifty functions covering every class the views, selective
//! replication, and agent machinery need: control flow (`@If`, `@Select`),
//! logic constants, text manipulation, list manipulation, arithmetic
//! aggregates, and document metadata. Names arrive lowercased from the
//! lexer. `@If` and `@Select` evaluate their arguments lazily.

use crate::ast::Expr;
use crate::eval::{compare_scalars, DocContext, Evaluator};
use domino_types::{DateTime, DominoError, Result, Value};

/// Dispatch an @-function call.
pub fn call(ev: &mut Evaluator, name: &str, args: &[Expr], doc: &dyn DocContext) -> Result<Value> {
    // --- lazily-evaluated control functions -----------------------------
    match name {
        "if" => return fn_if(ev, args, doc),
        "select" => return fn_select(ev, args, doc),
        "_default" => return fn_default(ev, args, doc),
        "isavailable" | "isunavailable" => {
            let avail = availability(ev, args, doc, name)?;
            return Ok(Value::from(if name == "isavailable" {
                avail
            } else {
                !avail
            }));
        }
        _ => {}
    }

    // --- everything else evaluates its arguments eagerly ----------------
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(ev.eval_expr(a, doc)?);
    }
    let v = vals.as_slice();

    match name {
        // logic constants & selection helpers
        "true" | "yes" => Ok(Value::from(true)),
        "false" | "no" => Ok(Value::from(false)),
        "success" => Ok(Value::from(true)),
        "failure" => {
            arity(name, v, 1)?;
            Ok(v[0].clone())
        }
        "all" => Ok(Value::from(true)),
        "alldescendants" => {
            ev.include_descendants = true;
            Ok(Value::from(false))
        }
        "allchildren" => {
            ev.include_children = true;
            Ok(Value::from(false))
        }

        // text
        "text" => {
            min_arity(name, v, 1)?;
            Ok(Value::Text(v[0].to_text()))
        }
        "texttonumber" => {
            arity(name, v, 1)?;
            Ok(Value::Number(v[0].as_number()?))
        }
        "char" => {
            arity(name, v, 1)?;
            let code = v[0].as_number()? as u32;
            let c = char::from_u32(code)
                .ok_or_else(|| DominoError::FormulaEval(format!("@Char: invalid code {code}")))?;
            Ok(Value::Text(c.to_string()))
        }
        "length" => {
            arity(name, v, 1)?;
            map_text(&v[0], |s| Value::Number(s.chars().count() as f64))
        }
        "lowercase" => {
            arity(name, v, 1)?;
            map_text(&v[0], |s| Value::Text(s.to_lowercase()))
        }
        "uppercase" => {
            arity(name, v, 1)?;
            map_text(&v[0], |s| Value::Text(s.to_uppercase()))
        }
        "propercase" => {
            arity(name, v, 1)?;
            map_text(&v[0], |s| Value::Text(proper_case(&s)))
        }
        "trim" => {
            arity(name, v, 1)?;
            fn_trim(&v[0])
        }
        "left" => fn_left_right(name, v, true),
        "right" => fn_left_right(name, v, false),
        "middle" => {
            arity(name, v, 3)?;
            let s = v[0].to_text();
            let start = v[1].as_number()? as usize;
            let len = v[2].as_number()? as usize;
            let chars: Vec<char> = s.chars().collect();
            let out: String = chars.iter().skip(start).take(len).collect();
            Ok(Value::Text(out))
        }
        "contains" => fn_scan(name, v, |hay, needle| hay.contains(needle)),
        "begins" => fn_scan(name, v, |hay, needle| hay.starts_with(needle)),
        "ends" => fn_scan(name, v, |hay, needle| hay.ends_with(needle)),
        "word" => {
            arity(name, v, 3)?;
            let sep = v[1].to_text();
            let n = v[2].as_number()? as i64;
            map_text(&v[0], |s| {
                let words: Vec<&str> = if sep.is_empty() {
                    vec![&s[..]]
                } else {
                    s.split(&sep).collect()
                };
                let idx = if n >= 0 {
                    (n - 1) as usize
                } else {
                    // Negative index counts from the end, as in Notes.
                    match words.len().checked_sub(n.unsigned_abs() as usize) {
                        Some(i) => i,
                        None => return Value::text(""),
                    }
                };
                Value::Text(words.get(idx).copied().unwrap_or("").to_string())
            })
        }
        "implode" => {
            min_arity(name, v, 1)?;
            let sep = if v.len() > 1 {
                v[1].to_text()
            } else {
                " ".to_string()
            };
            let parts: Vec<String> = v[0].iter_scalars().iter().map(|x| x.to_text()).collect();
            Ok(Value::Text(parts.join(&sep)))
        }
        "explode" => {
            min_arity(name, v, 1)?;
            let seps = if v.len() > 1 {
                v[1].to_text()
            } else {
                " ,;".to_string()
            };
            let text = v[0].to_text();
            let parts: Vec<String> = text
                .split(|c: char| seps.contains(c))
                .filter(|s| !s.is_empty())
                .map(|s| s.to_string())
                .collect();
            Ok(Value::TextList(parts))
        }
        "replacesubstring" => {
            arity(name, v, 3)?;
            let froms: Vec<String> = v[1].iter_scalars().iter().map(|x| x.to_text()).collect();
            let tos: Vec<String> = v[2].iter_scalars().iter().map(|x| x.to_text()).collect();
            map_text(&v[0], |mut s| {
                for (i, from) in froms.iter().enumerate() {
                    if from.is_empty() {
                        continue;
                    }
                    let to = tos
                        .get(i)
                        .or_else(|| tos.last())
                        .map(|t| t.as_str())
                        .unwrap_or("");
                    s = s.replace(from, to);
                }
                Value::Text(s)
            })
        }
        "repeat" => {
            arity(name, v, 2)?;
            let n = v[1].as_number()?;
            if n < 0.0 {
                return Err(DominoError::FormulaEval("@Repeat: negative count".into()));
            }
            map_text(&v[0], |s| Value::Text(s.repeat(n as usize)))
        }
        "matches" => {
            arity(name, v, 2)?;
            let pat = v[1].to_text();
            let any = v[0]
                .iter_scalars()
                .iter()
                .any(|x| wildcard_match(&x.to_text(), &pat));
            Ok(Value::from(any))
        }
        "keywords" => {
            arity(name, v, 2)?;
            let hay = v[0].to_text().to_lowercase();
            let words: Vec<String> = hay
                .split(|c: char| !c.is_alphanumeric())
                .filter(|w| !w.is_empty())
                .map(|w| w.to_string())
                .collect();
            let hits: Vec<String> = v[1]
                .iter_scalars()
                .iter()
                .map(|k| k.to_text())
                .filter(|k| words.contains(&k.to_lowercase()))
                .collect();
            Ok(Value::TextList(hits))
        }

        // lists
        "elements" => {
            arity(name, v, 1)?;
            let n = if v[0].is_empty() && v[0].elements() <= 1 && matches!(v[0], Value::TextList(_))
            {
                0
            } else {
                v[0].elements()
            };
            Ok(Value::Number(n as f64))
        }
        "subset" => {
            arity(name, v, 2)?;
            let n = v[1].as_number()? as i64;
            let items = v[0].iter_scalars();
            if n == 0 {
                return Err(DominoError::FormulaEval(
                    "@Subset: count may not be 0".into(),
                ));
            }
            let picked: Vec<Value> = if n > 0 {
                items.into_iter().take(n as usize).collect()
            } else {
                let k = n.unsigned_abs() as usize;
                let skip = items.len().saturating_sub(k);
                items.into_iter().skip(skip).collect()
            };
            Value::from_scalars(picked)
        }
        "member" => {
            arity(name, v, 2)?;
            let needle = &v[0];
            let pos = v[1].iter_scalars().iter().position(|x| {
                compare_scalars(x, needle)
                    .map(|o| o.is_eq())
                    .unwrap_or(false)
            });
            Ok(Value::Number(pos.map(|p| p + 1).unwrap_or(0) as f64))
        }
        "ismember" | "isnotmember" => {
            arity(name, v, 2)?;
            let found = v[0].iter_scalars().iter().all(|needle| {
                v[1].iter_scalars().iter().any(|x| {
                    compare_scalars(x, needle)
                        .map(|o| o.is_eq())
                        .unwrap_or(false)
                })
            });
            Ok(Value::from(if name == "ismember" { found } else { !found }))
        }
        "unique" => {
            arity(name, v, 1)?;
            let mut seen: Vec<Value> = Vec::new();
            for x in v[0].iter_scalars() {
                let dup = seen
                    .iter()
                    .any(|s| compare_scalars(s, &x).map(|o| o.is_eq()).unwrap_or(false));
                if !dup {
                    seen.push(x);
                }
            }
            Value::from_scalars(seen)
        }
        "sort" => {
            min_arity(name, v, 1)?;
            let descending = v
                .get(1)
                .map(|o| o.to_text().eq_ignore_ascii_case("descending"))
                .unwrap_or(false);
            let mut items = v[0].iter_scalars();
            items.sort_by(|a, b| a.collate(b));
            if descending {
                items.reverse();
            }
            Value::from_scalars(items)
        }
        "replace" => {
            arity(name, v, 3)?;
            let froms = v[1].iter_scalars();
            let tos = v[2].iter_scalars();
            let out: Vec<Value> = v[0]
                .iter_scalars()
                .into_iter()
                .map(|x| {
                    for (i, f) in froms.iter().enumerate() {
                        if compare_scalars(&x, f).map(|o| o.is_eq()).unwrap_or(false) {
                            return tos
                                .get(i)
                                .or_else(|| tos.last())
                                .cloned()
                                .unwrap_or_else(|| Value::text(""));
                        }
                    }
                    x
                })
                .collect();
            Value::from_scalars(out)
        }

        // arithmetic aggregates
        "sum" => fold_numbers(name, v, 0.0, |acc, n| acc + n),
        "min" => {
            let nums = numbers_of(name, v)?;
            nums.into_iter()
                .reduce(f64::min)
                .map(Value::Number)
                .ok_or_else(|| DominoError::FormulaEval("@Min of nothing".into()))
        }
        "max" => {
            let nums = numbers_of(name, v)?;
            nums.into_iter()
                .reduce(f64::max)
                .map(Value::Number)
                .ok_or_else(|| DominoError::FormulaEval("@Max of nothing".into()))
        }
        "abs" => {
            arity(name, v, 1)?;
            map_num(&v[0], f64::abs)
        }
        "sign" => {
            arity(name, v, 1)?;
            map_num(&v[0], |n| {
                if n > 0.0 {
                    1.0
                } else if n < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            })
        }
        "integer" => {
            arity(name, v, 1)?;
            map_num(&v[0], f64::trunc)
        }
        "round" => {
            min_arity(name, v, 1)?;
            let unit = if v.len() > 1 { v[1].as_number()? } else { 1.0 };
            if unit <= 0.0 {
                return Err(DominoError::FormulaEval("@Round: unit must be > 0".into()));
            }
            map_num(&v[0], |n| (n / unit).round() * unit)
        }
        "modulo" => {
            arity(name, v, 2)?;
            let b = v[1].as_number()?;
            if b == 0.0 {
                return Err(DominoError::FormulaEval("@Modulo by zero".into()));
            }
            map_num(&v[0], |a| (a as i64 % b as i64) as f64)
        }
        "sqrt" => {
            arity(name, v, 1)?;
            map_num(&v[0], f64::sqrt)
        }
        "power" => {
            arity(name, v, 2)?;
            let e = v[1].as_number()?;
            map_num(&v[0], |b| b.powf(e))
        }

        // date / time (ticks are civil seconds — see domino_types::datetime)
        "date" => {
            if v.len() != 3 && v.len() != 6 {
                return Err(DominoError::FormulaEval(
                    "@Date takes (y; m; d) or (y; m; d; h; m; s)".into(),
                ));
            }
            let y = v[0].as_number()? as i64;
            let mo = v[1].as_number()? as u8;
            let d = v[2].as_number()? as u8;
            if !(1..=12).contains(&mo) || d < 1 || d > domino_types::days_in_month(y, mo) {
                return Err(DominoError::FormulaEval(format!(
                    "@Date: {y}-{mo}-{d} is not a valid date"
                )));
            }
            let (h, mi, se) = if v.len() == 6 {
                (
                    v[3].as_number()? as u8,
                    v[4].as_number()? as u8,
                    v[5].as_number()? as u8,
                )
            } else {
                (0, 0, 0)
            };
            Ok(Value::DateTime(DateTime::from_civil(y, mo, d, h, mi, se)))
        }
        "year" | "month" | "day" | "hour" | "minute" | "second" | "weekday" => {
            arity(name, v, 1)?;
            map_datetime(name, &v[0], |d| {
                let c = d.civil();
                Value::Number(match name {
                    "year" => c.year as f64,
                    "month" => c.month as f64,
                    "day" => c.day as f64,
                    "hour" => c.hour as f64,
                    "minute" => c.minute as f64,
                    "second" => c.second as f64,
                    _ => d.weekday() as f64,
                })
            })
        }
        "adjust" => {
            arity(name, v, 7)?;
            let deltas: Vec<i64> = v[1..]
                .iter()
                .map(|x| x.as_number().map(|n| n as i64))
                .collect::<Result<_>>()?;
            map_datetime(name, &v[0], |d| {
                Value::DateTime(d.adjust(
                    deltas[0], deltas[1], deltas[2], deltas[3], deltas[4], deltas[5],
                ))
            })
        }
        "today" => {
            let now = ev.env.now.0 as i64;
            Ok(Value::DateTime(DateTime(
                now - now.rem_euclid(domino_types::SECONDS_PER_DAY),
            )))
        }

        // pattern / phonetic matching
        "like" => {
            arity(name, v, 2)?;
            let pat = v[1].to_text();
            let hit = v[0]
                .iter_scalars()
                .iter()
                .any(|x| sql_like(&x.to_text(), &pat));
            Ok(Value::from(hit))
        }
        "soundex" => {
            arity(name, v, 1)?;
            map_text(&v[0], |s| Value::Text(soundex(&s)))
        }

        // field access by computed name
        "getfield" => {
            arity(name, v, 1)?;
            let field = v[0].to_text();
            ev.eval_expr(&Expr::Ref(field), doc)
        }
        "setfield" => {
            arity(name, v, 2)?;
            let field = v[0].to_text();
            ev.field_writes.push((field, v[1].clone()));
            Ok(v[1].clone())
        }

        // workstation environment variables (notes.ini style)
        "environment" => {
            min_arity(name, v, 1)?;
            if v.len() == 2 {
                // Two-argument form assigns, as in Notes.
                let key = v[0].to_text();
                let val = v[1].to_text();
                ev.environment_writes.push((key, val.clone()));
                return Ok(Value::Text(val));
            }
            let key = v[0].to_text();
            // Pending writes from this run shadow the ambient environment.
            let pending = ev
                .environment_writes
                .iter()
                .rev()
                .find(|(k, _)| k.eq_ignore_ascii_case(&key))
                .map(|(_, val)| val.clone());
            let stored = ev.env.environment.iter().find_map(|(k, val)| {
                if k.eq_ignore_ascii_case(&key) {
                    Some(val.clone())
                } else {
                    None
                }
            });
            Ok(Value::Text(pending.or(stored).unwrap_or_default()))
        }
        "setenvironment" => {
            arity(name, v, 2)?;
            let key = v[0].to_text();
            let val = v[1].to_text();
            ev.environment_writes.push((key, val.clone()));
            Ok(Value::Text(val))
        }

        // document / environment metadata
        "created" => Ok(Value::DateTime(DateTime::from_ticks(doc.created().0))),
        "modified" => Ok(Value::DateTime(DateTime::from_ticks(doc.modified().0))),
        "now" => Ok(Value::DateTime(DateTime::from_ticks(ev.env.now.0))),
        "username" => Ok(Value::Text(ev.env.username.clone())),
        "dbtitle" => Ok(Value::Text(ev.env.db_title.clone())),
        "docuniqueid" => Ok(Value::Text(doc.unid_text())),
        "isresponsedoc" => Ok(Value::from(doc.is_response())),

        other => Err(DominoError::FormulaEval(format!(
            "unknown function @{other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// lazily-evaluated functions
// ---------------------------------------------------------------------------

/// `@If(c1; v1; c2; v2; ...; else)` — odd argument count, lazy.
fn fn_if(ev: &mut Evaluator, args: &[Expr], doc: &dyn DocContext) -> Result<Value> {
    if args.len() < 3 || args.len().is_multiple_of(2) {
        return Err(DominoError::FormulaEval(format!(
            "@If takes an odd number of arguments >= 3, got {}",
            args.len()
        )));
    }
    let mut i = 0;
    while i + 1 < args.len() {
        let cond = ev.eval_expr(&args[i], doc)?;
        if cond.as_bool()? {
            return ev.eval_expr(&args[i + 1], doc);
        }
        i += 2;
    }
    ev.eval_expr(args.last().expect("else branch"), doc)
}

/// `@Select(n; v1; ...; vk)` — evaluates only the chosen branch; out-of-range
/// indexes clamp to the nearest branch (the Notes behaviour).
fn fn_select(ev: &mut Evaluator, args: &[Expr], doc: &dyn DocContext) -> Result<Value> {
    if args.len() < 2 {
        return Err(DominoError::FormulaEval(
            "@Select needs an index and at least one value".into(),
        ));
    }
    let idx = ev.eval_expr(&args[0], doc)?.as_number()? as i64;
    let clamped = idx.clamp(1, (args.len() - 1) as i64) as usize;
    ev.eval_expr(&args[clamped], doc)
}

/// Desugared `DEFAULT name := expr`: binds the variable to the item's stored
/// value when present, else to the (lazily evaluated) default.
fn fn_default(ev: &mut Evaluator, args: &[Expr], doc: &dyn DocContext) -> Result<Value> {
    let name = match &args[0] {
        Expr::Lit(Value::Text(s)) => s.clone(),
        _ => {
            return Err(DominoError::FormulaEval(
                "DEFAULT needs a field name".into(),
            ))
        }
    };
    let value = match doc.item(&name) {
        Some(v) => v,
        None => ev.eval_expr(&args[1], doc)?,
    };
    ev.vars.insert(name.to_lowercase(), value.clone());
    Ok(value)
}

/// `@IsAvailable(field)` / `@IsUnavailable(field)`. The argument is usually
/// a bare field reference; a text expression naming the field also works.
fn availability(
    ev: &mut Evaluator,
    args: &[Expr],
    doc: &dyn DocContext,
    name: &str,
) -> Result<bool> {
    if args.len() != 1 {
        return Err(DominoError::FormulaEval(format!(
            "@{name} takes 1 argument"
        )));
    }
    let field = match &args[0] {
        Expr::Ref(n) => n.clone(),
        other => {
            let v = ev.eval_expr(other, doc)?;
            v.to_text()
        }
    };
    Ok(doc.item(&field).is_some())
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn arity(name: &str, v: &[Value], n: usize) -> Result<()> {
    if v.len() != n {
        return Err(DominoError::FormulaEval(format!(
            "@{name} takes {n} argument(s), got {}",
            v.len()
        )));
    }
    Ok(())
}

fn min_arity(name: &str, v: &[Value], n: usize) -> Result<()> {
    if v.len() < n {
        return Err(DominoError::FormulaEval(format!(
            "@{name} takes at least {n} argument(s), got {}",
            v.len()
        )));
    }
    Ok(())
}

/// Apply a text transform to every element (scalar stays scalar).
fn map_text(v: &Value, f: impl Fn(String) -> Value) -> Result<Value> {
    let out: Vec<Value> = v.iter_scalars().iter().map(|x| f(x.to_text())).collect();
    Value::from_scalars(out)
}

/// Apply a numeric transform to every element.
fn map_num(v: &Value, f: impl Fn(f64) -> f64) -> Result<Value> {
    let mut out = Vec::with_capacity(v.elements());
    for x in v.iter_scalars() {
        out.push(Value::Number(f(x.as_number()?)));
    }
    Value::from_scalars(out)
}

/// Flatten all arguments to numbers.
fn numbers_of(name: &str, v: &[Value]) -> Result<Vec<f64>> {
    min_arity(name, v, 1)?;
    let mut out = Vec::new();
    for val in v {
        for x in val.iter_scalars() {
            out.push(x.as_number()?);
        }
    }
    Ok(out)
}

fn fold_numbers(name: &str, v: &[Value], init: f64, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    let nums = numbers_of(name, v)?;
    Ok(Value::Number(nums.into_iter().fold(init, f)))
}

/// `@Trim`: strip leading/trailing/redundant interior whitespace from each
/// element and drop now-empty elements from lists.
fn fn_trim(v: &Value) -> Result<Value> {
    let cleaned: Vec<Value> = v
        .iter_scalars()
        .iter()
        .map(|x| x.to_text().split_whitespace().collect::<Vec<_>>().join(" "))
        .filter(|s| !s.is_empty())
        .map(Value::Text)
        .collect();
    if cleaned.is_empty() {
        return Ok(Value::text(""));
    }
    if v.elements() == 1 && cleaned.len() == 1 && !matches!(v, Value::TextList(_)) {
        return Ok(cleaned.into_iter().next().expect("len 1"));
    }
    Ok(Value::TextList(
        cleaned.into_iter().map(|c| c.to_text()).collect(),
    ))
}

/// `@Left`/`@Right` with either a character count or a search substring.
fn fn_left_right(name: &str, v: &[Value], left: bool) -> Result<Value> {
    arity(name, v, 2)?;
    match &v[1] {
        Value::Number(n) => {
            let k = (*n).max(0.0) as usize;
            map_text(&v[0], |s| {
                let chars: Vec<char> = s.chars().collect();
                let out: String = if left {
                    chars.iter().take(k).collect()
                } else {
                    let skip = chars.len().saturating_sub(k);
                    chars.iter().skip(skip).collect()
                };
                Value::Text(out)
            })
        }
        sub => {
            let needle = sub.to_text();
            map_text(&v[0], |s| {
                let out = if left {
                    s.find(&needle).map(|i| s[..i].to_string())
                } else {
                    s.find(&needle).map(|i| s[i + needle.len()..].to_string())
                };
                Value::Text(out.unwrap_or_default())
            })
        }
    }
}

/// `@Contains` / `@Begins` / `@Ends`: true if any element of arg0 matches any
/// element of arg1 under `pred`.
fn fn_scan(name: &str, v: &[Value], pred: impl Fn(&str, &str) -> bool) -> Result<Value> {
    arity(name, v, 2)?;
    let hays = v[0].iter_scalars();
    let needles = v[1].iter_scalars();
    let hit = hays.iter().any(|h| {
        let h = h.to_text();
        needles.iter().any(|n| pred(&h, &n.to_text()))
    });
    Ok(Value::from(hit))
}

/// Apply a DateTime transform to every element.
fn map_datetime(name: &str, v: &Value, f: impl Fn(DateTime) -> Value) -> Result<Value> {
    let mut out = Vec::with_capacity(v.elements());
    for x in v.iter_scalars() {
        match x {
            Value::DateTime(d) => out.push(f(d)),
            other => {
                return Err(DominoError::FormulaEval(format!(
                    "@{name} needs a date/time, got {:?}",
                    other.value_type()
                )))
            }
        }
    }
    Value::from_scalars(out)
}

/// SQL-style LIKE: `%` matches any run, `_` one character, `\` escapes.
fn sql_like(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|k| rec(&t[k..], &p[1..])),
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some('\\') if p.len() > 1 => !t.is_empty() && t[0] == p[1] && rec(&t[1..], &p[2..]),
            Some(c) => !t.is_empty() && t[0] == *c && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// Classic 4-character Soundex code (empty input yields "").
fn soundex(s: &str) -> String {
    fn code(c: char) -> u8 {
        match c.to_ascii_lowercase() {
            'b' | 'f' | 'p' | 'v' => b'1',
            'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => b'2',
            'd' | 't' => b'3',
            'l' => b'4',
            'm' | 'n' => b'5',
            'r' => b'6',
            _ => 0, // vowels & h/w/y: separators
        }
    }
    let mut chars = s.chars().filter(|c| c.is_ascii_alphabetic());
    let Some(first) = chars.next() else {
        return String::new();
    };
    let mut out = String::new();
    out.push(first.to_ascii_uppercase());
    let mut prev = code(first);
    for c in chars {
        let k = code(c);
        // h and w do not reset the previous code; vowels do.
        if matches!(c.to_ascii_lowercase(), 'h' | 'w') {
            continue;
        }
        if k != 0 && k != prev {
            out.push(k as char);
            if out.len() == 4 {
                break;
            }
        }
        prev = k;
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

fn proper_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut at_word_start = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            if at_word_start {
                out.extend(c.to_uppercase());
            } else {
                out.extend(c.to_lowercase());
            }
            at_word_start = false;
        } else {
            out.push(c);
            at_word_start = true;
        }
    }
    out
}

/// Notes `@Matches` patterns: `?` matches one char, `*` any run, `\`
/// escapes. Matching is case-insensitive, like Notes.
fn wildcard_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('*') => (0..=t.len()).any(|k| rec(&t[k..], &p[1..])),
            Some('?') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some('\\') if p.len() > 1 => !t.is_empty() && t[0] == p[1] && rec(&t[1..], &p[2..]),
            Some(c) => !t.is_empty() && t[0] == *c && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use crate::eval::{EvalEnv, MapDoc};
    use crate::Formula;
    use domino_types::{DateTime, Timestamp, Value};

    fn eval(src: &str) -> Value {
        eval_doc(src, &MapDoc::new())
    }

    fn eval_doc(src: &str, doc: &MapDoc) -> Value {
        Formula::compile(src)
            .unwrap()
            .eval(doc, &EvalEnv::default())
            .unwrap()
    }

    fn fails(src: &str) {
        assert!(
            Formula::compile(src)
                .unwrap()
                .eval(&MapDoc::new(), &EvalEnv::default())
                .is_err(),
            "expected failure: {src}"
        );
    }

    #[test]
    fn at_if_branches_and_laziness() {
        assert_eq!(eval(r#"@If(1; "yes"; "no")"#), Value::text("yes"));
        assert_eq!(eval(r#"@If(0; "yes"; "no")"#), Value::text("no"));
        assert_eq!(eval(r#"@If(0; "a"; 1; "b"; "c")"#), Value::text("b"));
        // Untaken branches must not evaluate (1/0 would error).
        assert_eq!(eval(r#"@If(1; "ok"; 1/0)"#), Value::text("ok"));
        fails("@If(1; 2)");
        fails("@If(1; 2; 3; 4)");
    }

    #[test]
    fn at_select_clamps() {
        assert_eq!(eval(r#"@Select(2; "a"; "b"; "c")"#), Value::text("b"));
        assert_eq!(eval(r#"@Select(99; "a"; "b")"#), Value::text("b"));
        assert_eq!(eval(r#"@Select(-1; "a"; "b")"#), Value::text("a"));
    }

    #[test]
    fn text_functions() {
        assert_eq!(eval(r#"@Uppercase("aBc")"#), Value::text("ABC"));
        assert_eq!(eval(r#"@Lowercase("aBc")"#), Value::text("abc"));
        assert_eq!(
            eval(r#"@ProperCase("john von neumann")"#),
            Value::text("John Von Neumann")
        );
        assert_eq!(eval(r#"@Length("héllo")"#), Value::Number(5.0));
        assert_eq!(eval(r#"@Trim("  a   b  ")"#), Value::text("a b"));
        assert_eq!(eval(r#"@Text(42)"#), Value::text("42"));
        assert_eq!(eval(r#"@TextToNumber("42")"#), Value::Number(42.0));
        assert_eq!(eval(r#"@Char(65)"#), Value::text("A"));
        assert_eq!(eval(r#"@Repeat("ab"; 3)"#), Value::text("ababab"));
    }

    #[test]
    fn trim_drops_empty_list_elements() {
        assert_eq!(
            eval(r#"@Trim("a" : "" : " b ")"#),
            Value::text_list(["a", "b"])
        );
    }

    #[test]
    fn left_right_middle() {
        assert_eq!(eval(r#"@Left("domino"; 3)"#), Value::text("dom"));
        assert_eq!(eval(r#"@Right("domino"; 3)"#), Value::text("ino"));
        assert_eq!(eval(r#"@Left("a=b"; "=")"#), Value::text("a"));
        assert_eq!(eval(r#"@Right("a=b"; "=")"#), Value::text("b"));
        assert_eq!(eval(r#"@Middle("abcdef"; 2; 3)"#), Value::text("cde"));
        assert_eq!(eval(r#"@Left("xyz"; "q")"#), Value::text(""));
    }

    #[test]
    fn scanning_predicates() {
        assert_eq!(
            eval(r#"@Contains("hello world"; "lo w")"#),
            Value::from(true)
        );
        assert_eq!(eval(r#"@Contains("hello"; "xyz")"#), Value::from(false));
        assert_eq!(eval(r#"@Begins("hello"; "he")"#), Value::from(true));
        assert_eq!(eval(r#"@Ends("hello"; "lo")"#), Value::from(true));
        // any-element semantics over lists
        assert_eq!(
            eval(r#"@Contains("red" : "green"; "ree")"#),
            Value::from(true)
        );
    }

    #[test]
    fn word_indexing() {
        assert_eq!(eval(r#"@Word("a,b,c"; ","; 2)"#), Value::text("b"));
        assert_eq!(eval(r#"@Word("a,b,c"; ","; -1)"#), Value::text("c"));
        assert_eq!(eval(r#"@Word("a,b,c"; ","; 9)"#), Value::text(""));
    }

    #[test]
    fn implode_explode_roundtrip() {
        assert_eq!(
            eval(r#"@Implode("a" : "b" : "c"; "-")"#),
            Value::text("a-b-c")
        );
        assert_eq!(
            eval(r#"@Explode("a-b-c"; "-")"#),
            Value::text_list(["a", "b", "c"])
        );
        assert_eq!(
            eval(r#"@Explode("one two,three")"#),
            Value::text_list(["one", "two", "three"])
        );
    }

    #[test]
    fn replace_substring() {
        assert_eq!(
            eval(r#"@ReplaceSubstring("hello world"; "world"; "notes")"#),
            Value::text("hello notes")
        );
        assert_eq!(
            eval(r#"@ReplaceSubstring("a.b,c"; "." : ","; "-")"#),
            Value::text("a-b-c")
        );
    }

    #[test]
    fn matches_wildcards() {
        assert_eq!(
            eval(r#"@Matches("report-2024"; "report*")"#),
            Value::from(true)
        );
        assert_eq!(eval(r#"@Matches("cat"; "c?t")"#), Value::from(true));
        assert_eq!(eval(r#"@Matches("cart"; "c?t")"#), Value::from(false));
        assert_eq!(eval(r#"@Matches("CAT"; "cat")"#), Value::from(true));
    }

    #[test]
    fn keywords_extracts_hits() {
        assert_eq!(
            eval(r#"@Keywords("the quick brown fox"; "fox" : "dog" : "quick")"#),
            Value::text_list(["fox", "quick"])
        );
    }

    #[test]
    fn list_functions() {
        assert_eq!(eval(r#"@Elements("a" : "b" : "c")"#), Value::Number(3.0));
        assert_eq!(eval(r#"@Elements(5)"#), Value::Number(1.0));
        assert_eq!(
            eval(r#"@Subset("a" : "b" : "c"; 2)"#),
            Value::text_list(["a", "b"])
        );
        assert_eq!(eval(r#"@Subset("a" : "b" : "c"; -1)"#), Value::text("c"));
        assert_eq!(eval(r#"@Member("b"; "a" : "b")"#), Value::Number(2.0));
        assert_eq!(eval(r#"@Member("z"; "a" : "b")"#), Value::Number(0.0));
        assert_eq!(eval(r#"@IsMember("b"; "a" : "b")"#), Value::from(true));
        assert_eq!(eval(r#"@IsNotMember("z"; "a" : "b")"#), Value::from(true));
        assert_eq!(
            eval(r#"@Unique("a" : "b" : "a")"#),
            Value::text_list(["a", "b"])
        );
        assert_eq!(
            eval(r#"@Sort(3 : 1 : 2)"#),
            Value::NumberList(vec![1.0, 2.0, 3.0])
        );
        assert_eq!(
            eval(r#"@Sort("b" : "a"; "descending")"#),
            Value::text_list(["b", "a"])
        );
        assert_eq!(
            eval(r#"@Replace("a" : "b"; "a"; "x")"#),
            Value::text_list(["x", "b"])
        );
    }

    #[test]
    fn subset_zero_errors() {
        fails(r#"@Subset("a"; 0)"#);
    }

    #[test]
    fn math_functions() {
        assert_eq!(eval("@Sum(1; 2; 3 : 4)"), Value::Number(10.0));
        assert_eq!(eval("@Min(3; 1; 2)"), Value::Number(1.0));
        assert_eq!(eval("@Max(3 : 9; 1)"), Value::Number(9.0));
        assert_eq!(eval("@Abs(-4)"), Value::Number(4.0));
        assert_eq!(eval("@Sign(-4)"), Value::Number(-1.0));
        assert_eq!(eval("@Integer(3.9)"), Value::Number(3.0));
        assert_eq!(eval("@Round(3.46)"), Value::Number(3.0));
        assert_eq!(eval("@Round(3.46; 0.1)"), Value::Number(3.5));
        assert_eq!(eval("@Modulo(10; 3)"), Value::Number(1.0));
        assert_eq!(eval("@Sqrt(16)"), Value::Number(4.0));
        assert_eq!(eval("@Power(2; 10)"), Value::Number(1024.0));
        fails("@Modulo(1; 0)");
        fails("@Round(1; 0)");
    }

    #[test]
    fn numeric_functions_map_over_lists() {
        assert_eq!(
            eval("@Abs(-1 : 2 : -3)"),
            Value::NumberList(vec![1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn availability() {
        let doc = MapDoc::new().with("Subject", Value::text("hi"));
        assert_eq!(eval_doc("@IsAvailable(Subject)", &doc), Value::from(true));
        assert_eq!(eval_doc("@IsAvailable(Missing)", &doc), Value::from(false));
        assert_eq!(eval_doc("@IsUnavailable(Missing)", &doc), Value::from(true));
    }

    #[test]
    fn metadata_functions() {
        let doc = MapDoc::new().with_times(Timestamp(7), Timestamp(9));
        assert_eq!(eval_doc("@Created", &doc), Value::DateTime(DateTime(7)));
        assert_eq!(eval_doc("@Modified", &doc), Value::DateTime(DateTime(9)));
        let env = EvalEnv {
            username: "Ada Lovelace".into(),
            now: Timestamp(55),
            db_title: "Orders".into(),
            ..EvalEnv::default()
        };
        let f = Formula::compile("@UserName + \" @ \" + @DbTitle").unwrap();
        assert_eq!(
            f.eval(&MapDoc::new(), &env).unwrap(),
            Value::text("Ada Lovelace @ Orders")
        );
        let g = Formula::compile("@Now").unwrap();
        assert_eq!(
            g.eval(&MapDoc::new(), &env).unwrap(),
            Value::DateTime(DateTime(55))
        );
    }

    #[test]
    fn logic_constants() {
        assert_eq!(eval("@True"), Value::from(true));
        assert_eq!(eval("@False"), Value::from(false));
        assert_eq!(eval("@All"), Value::from(true));
        assert_eq!(eval("@Success"), Value::from(true));
        assert_eq!(eval(r#"@Failure("bad")"#), Value::text("bad"));
    }

    #[test]
    fn descendant_flags_set() {
        let f = Formula::compile("SELECT @False | @AllDescendants").unwrap();
        let out = f.eval_full(&MapDoc::new(), &EvalEnv::default()).unwrap();
        assert!(out.include_descendants);
        assert!(!out.include_children);
    }

    #[test]
    fn unknown_function_errors() {
        fails("@NoSuchThing(1)");
    }

    #[test]
    fn date_construction_and_parts() {
        assert_eq!(eval("@Year(@Date(2024; 2; 29))"), Value::Number(2024.0));
        assert_eq!(eval("@Month(@Date(2024; 2; 29))"), Value::Number(2.0));
        assert_eq!(eval("@Day(@Date(2024; 2; 29))"), Value::Number(29.0));
        assert_eq!(
            eval("@Hour(@Date(2024; 1; 1; 13; 5; 9))"),
            Value::Number(13.0)
        );
        assert_eq!(
            eval("@Minute(@Date(2024; 1; 1; 13; 5; 9))"),
            Value::Number(5.0)
        );
        assert_eq!(
            eval("@Second(@Date(2024; 1; 1; 13; 5; 9))"),
            Value::Number(9.0)
        );
        // 2000-01-01 was a Saturday (weekday 7).
        assert_eq!(eval("@Weekday(@Date(2000; 1; 1))"), Value::Number(7.0));
        fails("@Date(2023; 2; 29)");
        fails("@Date(2023; 13; 1)");
        fails("@Year(5)");
    }

    #[test]
    fn date_comparison_and_adjust() {
        assert_eq!(
            eval("@Date(2024; 1; 1) < @Date(2024; 6; 1)"),
            Value::from(true)
        );
        assert_eq!(
            eval("@Adjust(@Date(2024; 1; 31); 0; 1; 0; 0; 0; 0) = @Date(2024; 2; 29)"),
            Value::from(true)
        );
        assert_eq!(
            eval("@Adjust(@Date(2024; 1; 1); 0; 0; -1; 0; 0; 0) = @Date(2023; 12; 31)"),
            Value::from(true)
        );
    }

    #[test]
    fn today_truncates_now() {
        use domino_types::SECONDS_PER_DAY;
        let env = EvalEnv {
            now: Timestamp(3 * SECONDS_PER_DAY as u64 + 12_345),
            ..EvalEnv::default()
        };
        let f = Formula::compile("@Today").unwrap();
        assert_eq!(
            f.eval(&MapDoc::new(), &env).unwrap(),
            Value::DateTime(DateTime(3 * SECONDS_PER_DAY))
        );
    }

    #[test]
    fn like_patterns() {
        assert_eq!(eval(r#"@Like("domino"; "dom%")"#), Value::from(true));
        assert_eq!(eval(r#"@Like("domino"; "d_mino")"#), Value::from(true));
        assert_eq!(eval(r#"@Like("domino"; "d_m")"#), Value::from(false));
        assert_eq!(eval(r#"@Like("100%"; "100\%")"#), Value::from(true));
        assert_eq!(
            eval(r#"@Like("Domino"; "dom%")"#),
            Value::from(false),
            "case-sensitive"
        );
    }

    #[test]
    fn soundex_codes() {
        assert_eq!(eval(r#"@Soundex("Robert")"#), Value::text("R163"));
        assert_eq!(eval(r#"@Soundex("Rupert")"#), Value::text("R163"));
        assert_eq!(eval(r#"@Soundex("Ashcraft")"#), Value::text("A261"));
        assert_eq!(eval(r#"@Soundex("Tymczak")"#), Value::text("T522"));
        assert_eq!(eval(r#"@Soundex("Pfister")"#), Value::text("P236"));
        assert_eq!(eval(r#"@Soundex("")"#), Value::text(""));
    }

    #[test]
    fn get_and_set_field_by_computed_name() {
        let doc = MapDoc::new().with("Score_3", Value::Number(42.0));
        assert_eq!(
            eval_doc(r#"@GetField("Score_" + @Text(3))"#, &doc),
            Value::Number(42.0)
        );
        let f = Formula::compile(r#"@SetField("Out_" + @Text(1 + 1); 7)"#).unwrap();
        let out = f.eval_full(&MapDoc::new(), &EvalEnv::default()).unwrap();
        assert_eq!(
            out.field_writes,
            vec![("Out_2".to_string(), Value::Number(7.0))]
        );
        // @GetField sees pending @SetField writes.
        let g = Formula::compile(r#"@SetField("X"; 5); @GetField("X")"#).unwrap();
        assert_eq!(
            g.eval(&MapDoc::new(), &EvalEnv::default()).unwrap(),
            Value::Number(5.0)
        );
    }

    #[test]
    fn environment_variables() {
        let mut env = EvalEnv::default();
        env.environment.insert("Region".into(), "west".into());
        let f = Formula::compile(r#"@Environment("Region")"#).unwrap();
        assert_eq!(f.eval(&MapDoc::new(), &env).unwrap(), Value::text("west"));
        // Unset reads as "".
        let g = Formula::compile(r#"@Environment("Missing")"#).unwrap();
        assert_eq!(g.eval(&MapDoc::new(), &env).unwrap(), Value::text(""));
        // Writes surface in the output and shadow subsequent reads.
        let h = Formula::compile(r#"@SetEnvironment("Region"; "east"); @Environment("Region")"#)
            .unwrap();
        let out = h.eval_full(&MapDoc::new(), &env).unwrap();
        assert_eq!(out.value, Value::text("east"));
        assert_eq!(
            out.environment_writes,
            vec![("Region".to_string(), "east".to_string())]
        );
        // The two-argument @Environment form also assigns.
        let k = Formula::compile(r#"@Environment("Quota"; "9")"#).unwrap();
        let out = k.eval_full(&MapDoc::new(), &env).unwrap();
        assert_eq!(
            out.environment_writes,
            vec![("Quota".to_string(), "9".to_string())]
        );
    }

    #[test]
    fn default_uses_item_when_present() {
        let doc = MapDoc::new().with("Status", Value::text("Open"));
        assert_eq!(
            eval_doc(r#"DEFAULT Status := "New"; Status"#, &doc),
            Value::text("Open")
        );
        assert_eq!(
            eval(r#"DEFAULT Status := "New"; Status"#),
            Value::text("New")
        );
    }
}
