//! The Notes formula language.
//!
//! Domino's views, selective replication, agents, and computed fields are
//! all driven by *formulas*: small expressions over a document's items,
//! built from `@`-functions, infix operators with list ("pairwise")
//! semantics, temporary variables (`x := ...`), field writes
//! (`FIELD x := ...`), and an optional `SELECT` statement that turns the
//! formula into a document predicate.
//!
//! ```
//! use domino_formula::{Formula, EvalEnv, MapDoc};
//! use domino_types::Value;
//!
//! let f = Formula::compile(r#"SELECT Form = "Order" & Total > 100"#).unwrap();
//! let doc = MapDoc::new()
//!     .with("Form", Value::text("Order"))
//!     .with("Total", Value::Number(250.0));
//! assert!(f.selects(&doc, &EvalEnv::default()).unwrap());
//! ```
//!
//! The implementation is a classic pipeline: [`token`] lexes source text,
//! [`parser`] builds the [`ast`], and [`eval`] walks it against any type
//! implementing [`DocContext`]. The ~45 built-in `@`-functions live in
//! [`functions`].

pub mod ast;
pub mod cache;
pub mod eval;
pub mod functions;
pub mod parser;
pub mod token;

pub use ast::{BinOp, Expr, Program, UnOp};
pub use cache::CacheStats;
pub use eval::{DocContext, EvalEnv, EvalOutput, Evaluator, MapDoc};
pub use parser::parse;

use std::sync::Arc;

use domino_types::{Result, Value};

/// A compiled, reusable formula.
///
/// Compile once with [`Formula::compile`], then evaluate against many
/// documents. Compilation is pure parsing; all name resolution happens at
/// evaluation time (Notes items are schemaless).
///
/// The compiled [`Program`] sits behind an `Arc`, so cloning a `Formula`
/// (to hand to parallel view-index workers, say) shares the parse rather
/// than repeating it. `Formula` is `Send + Sync`: programs are plain data
/// and evaluation never mutates them.
#[derive(Debug, Clone)]
pub struct Formula {
    source: String,
    program: Arc<Program>,
}

impl Formula {
    /// Parse `source` into a reusable formula.
    pub fn compile(source: &str) -> Result<Formula> {
        let program = Arc::new(parse(source)?);
        Ok(Formula {
            source: source.to_string(),
            program,
        })
    }

    /// Like [`Formula::compile`], but consults the process-wide compile
    /// cache: the first compilation of a source string is shared by every
    /// later caller (see [`cache`]). Returns the formula and whether it
    /// was a cache hit.
    pub fn compile_cached(source: &str) -> Result<(Formula, bool)> {
        cache::compile_cached(source)
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Evaluate the formula against `doc`, returning the full output
    /// (result value, field writes, selection verdict, response-inclusion
    /// flags).
    pub fn eval_full(&self, doc: &dyn DocContext, env: &EvalEnv) -> Result<EvalOutput> {
        Evaluator::new(env).run(&self.program, doc)
    }

    /// Evaluate and return just the result value (the value of the last
    /// statement, as in Notes column formulas).
    pub fn eval(&self, doc: &dyn DocContext, env: &EvalEnv) -> Result<Value> {
        Ok(self.eval_full(doc, env)?.value)
    }

    /// Does this formula select `doc`? Uses the `SELECT` statement if
    /// present, otherwise the truthiness of the final value (matching how
    /// Notes treats selection formulas without an explicit `SELECT`).
    pub fn selects(&self, doc: &dyn DocContext, env: &EvalEnv) -> Result<bool> {
        Ok(self.eval_full(doc, env)?.selected)
    }

    /// True if the formula contains `@AllDescendants`/`@AllChildren`, i.e.
    /// a view using it must include response documents of selected parents.
    pub fn wants_descendants(&self) -> bool {
        self.program.mentions_function("alldescendants")
            || self.program.mentions_function("allchildren")
    }
}

/// Shorthand: compile and evaluate a one-off formula against a document.
pub fn eval_str(source: &str, doc: &dyn DocContext, env: &EvalEnv) -> Result<Value> {
    Formula::compile(source)?.eval(doc, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_types::Value;

    #[test]
    fn compile_eval_roundtrip() {
        let f = Formula::compile("1 + 2").unwrap();
        assert_eq!(f.source(), "1 + 2");
        let out = f.eval(&MapDoc::new(), &EvalEnv::default()).unwrap();
        assert_eq!(out, Value::Number(3.0));
    }

    #[test]
    fn selects_without_select_uses_truthiness() {
        let doc = MapDoc::new().with("N", Value::Number(5.0));
        let env = EvalEnv::default();
        assert!(Formula::compile("N > 1")
            .unwrap()
            .selects(&doc, &env)
            .unwrap());
        assert!(!Formula::compile("N > 9")
            .unwrap()
            .selects(&doc, &env)
            .unwrap());
    }

    #[test]
    fn wants_descendants_detected() {
        let f = Formula::compile(r#"SELECT Form = "Main" | @AllDescendants"#).unwrap();
        assert!(f.wants_descendants());
        let g = Formula::compile(r#"SELECT Form = "Main""#).unwrap();
        assert!(!g.wants_descendants());
    }

    #[test]
    fn eval_str_shorthand() {
        let v = eval_str("@Uppercase(\"abc\")", &MapDoc::new(), &EvalEnv::default()).unwrap();
        assert_eq!(v, Value::text("ABC"));
    }
}
