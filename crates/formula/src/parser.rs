//! Recursive-descent parser for formulas.
//!
//! Operator precedence (loosest to tightest), mirroring Notes:
//!
//! ```text
//! |            logical or
//! &            logical and
//! = <> < <= > >= *= *<>   comparison
//! + -          add / subtract (also text concatenation for `+`)
//! * /          multiply / divide
//! - ! +        unary
//! :            list concatenation
//! literals, refs, @calls, ( )
//! ```
//!
//! Statements are separated by `;`: plain expressions, `x := e` variable
//! bindings, `FIELD f := e` item writes, `SELECT e`, and `REM "comment"`.

use crate::ast::{BinOp, Expr, Program, Statement, UnOp};
use crate::token::{lex, Token, TokenKind};
use domino_types::{DominoError, Result, Value};

/// Parse formula source into a [`Program`].
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(&format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn error(&self, msg: &str) -> DominoError {
        DominoError::FormulaParse(format!(
            "{msg} (at offset {})",
            self.tokens[self.pos].offset
        ))
    }

    fn program(&mut self) -> Result<Program> {
        let mut statements = Vec::new();
        loop {
            // Allow empty statements / trailing semicolons.
            while *self.peek() == TokenKind::Semi {
                self.bump();
            }
            if *self.peek() == TokenKind::Eof {
                break;
            }
            if let Some(st) = self.statement()? {
                statements.push(st);
            }
            match self.peek() {
                TokenKind::Semi => {
                    self.bump();
                }
                TokenKind::Eof => break,
                other => {
                    return Err(self.error(&format!(
                        "expected `;` or end of formula, found {}",
                        other.describe()
                    )))
                }
            }
        }
        if statements.is_empty() {
            return Err(DominoError::FormulaParse("empty formula".into()));
        }
        Ok(Program { statements })
    }

    /// Parse one statement. `REM` comments return `None`.
    fn statement(&mut self) -> Result<Option<Statement>> {
        if let TokenKind::Ident(word) = self.peek() {
            match word.to_ascii_uppercase().as_str() {
                "SELECT" => {
                    self.bump();
                    let e = self.expr()?;
                    return Ok(Some(Statement::Select(e)));
                }
                "FIELD" => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(&TokenKind::Assign)?;
                    let e = self.expr()?;
                    return Ok(Some(Statement::Expr(Expr::FieldAssign(name, Box::new(e)))));
                }
                "REM" => {
                    self.bump();
                    // REM takes one string literal and produces nothing.
                    if let TokenKind::Str(_) = self.peek() {
                        self.bump();
                    }
                    return Ok(None);
                }
                "DEFAULT" => {
                    // DEFAULT f := e — use e only when item f is absent.
                    self.bump();
                    let name = self.ident()?;
                    self.expect(&TokenKind::Assign)?;
                    let e = self.expr()?;
                    return Ok(Some(Statement::Expr(Expr::Call(
                        "_default".into(),
                        vec![Expr::Lit(Value::Text(name)), e],
                    ))));
                }
                _ => {}
            }
            // `name := expr` variable binding.
            if *self.peek2() == TokenKind::Assign {
                let name = self.ident()?;
                self.bump(); // :=
                let e = self.expr()?;
                return Ok(Some(Statement::Expr(Expr::Assign(name, Box::new(e)))));
            }
        }
        Ok(Some(Statement::Expr(self.expr()?)))
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(&format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::Or {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == TokenKind::And {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::PermEq => BinOp::PermEq,
                TokenKind::PermNe => BinOp::PermNe,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            TokenKind::Plus => {
                self.bump();
                self.unary_expr()
            }
            TokenKind::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.concat_expr(),
        }
    }

    fn concat_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.primary()?;
        while *self.peek() == TokenKind::Colon {
            self.bump();
            let rhs = self.concat_operand()?;
            lhs = Expr::Binary(BinOp::Concat, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Operand on the right of `:`. Allows a sign prefix so lists like
    /// `1 : -3` parse element-wise (the leading element's sign is handled
    /// at the `unary` level and distributes over the whole list, as in
    /// Notes).
    fn concat_operand(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.concat_operand()?)))
            }
            TokenKind::Plus => {
                self.bump();
                self.concat_operand()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::Number(n) => Ok(Expr::Lit(Value::Number(n))),
            TokenKind::Str(s) => Ok(Expr::Lit(Value::Text(s))),
            TokenKind::Ident(name) => Ok(Expr::Ref(name)),
            TokenKind::AtName(name) => {
                let mut args = Vec::new();
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == TokenKind::Semi {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(Expr::Call(name, args))
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(&format!("expected a value, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr_of(src: &str) -> Expr {
        let p = parse(src).unwrap();
        match p.statements.into_iter().next().unwrap() {
            Statement::Expr(e) => e,
            Statement::Select(e) => e,
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr_of("1 + 2 * 3");
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Lit(Value::Number(1.0))),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Lit(Value::Number(2.0))),
                    Box::new(Expr::Lit(Value::Number(3.0)))
                ))
            )
        );
    }

    #[test]
    fn precedence_cmp_over_and_over_or() {
        // a = 1 & b = 2 | c = 3  =>  ((a=1) & (b=2)) | (c=3)
        let e = expr_of("a = 1 & b = 2 | c = 3");
        match e {
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::And, _, _)));
                assert!(matches!(*rhs, Expr::Binary(BinOp::Eq, _, _)));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn concat_binds_tighter_than_math() {
        // "a" : "b" is a primary-level list.
        let e = expr_of("x : y = z");
        assert!(matches!(e, Expr::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn select_statement() {
        let p = parse(r#"SELECT Form = "Memo""#).unwrap();
        assert_eq!(p.select_index(), Some(0));
    }

    #[test]
    fn select_keyword_case_insensitive() {
        assert_eq!(parse("select 1").unwrap().select_index(), Some(0));
    }

    #[test]
    fn field_assignment() {
        let p = parse(r#"FIELD Status := "Done""#).unwrap();
        match &p.statements[0] {
            Statement::Expr(Expr::FieldAssign(name, _)) => assert_eq!(name, "Status"),
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn variable_assignment_and_use() {
        let p = parse("x := 2; x * 3").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(matches!(
            &p.statements[0],
            Statement::Expr(Expr::Assign(n, _)) if n == "x"
        ));
    }

    #[test]
    fn rem_statements_are_skipped() {
        let p = parse(r#"REM "a comment"; 1 + 1"#).unwrap();
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn default_statement_desugars() {
        let p = parse(r#"DEFAULT Status := "New"; Status"#).unwrap();
        assert!(matches!(
            &p.statements[0],
            Statement::Expr(Expr::Call(n, _)) if n == "_default"
        ));
    }

    #[test]
    fn at_function_no_args_no_parens() {
        let e = expr_of("@Now");
        assert_eq!(e, Expr::Call("now".into(), vec![]));
    }

    #[test]
    fn at_function_with_args() {
        let e = expr_of("@Left(Subject; 3)");
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "left");
                assert_eq!(args.len(), 2);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn nested_calls_and_parens() {
        let e = expr_of("@Max(@Min(1;2); (3 + 4))");
        assert!(matches!(e, Expr::Call(ref n, ref a) if n == "max" && a.len() == 2));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            expr_of("-x"),
            Expr::Unary(UnOp::Neg, Box::new(Expr::Ref("x".into())))
        );
        assert_eq!(
            expr_of("!x"),
            Expr::Unary(UnOp::Not, Box::new(Expr::Ref("x".into())))
        );
        assert_eq!(expr_of("+5"), Expr::Lit(Value::Number(5.0)));
    }

    #[test]
    fn permuted_equality_parses() {
        assert!(matches!(
            expr_of("a *= b"),
            Expr::Binary(BinOp::PermEq, _, _)
        ));
        assert!(matches!(
            expr_of("a *<> b"),
            Expr::Binary(BinOp::PermNe, _, _)
        ));
    }

    #[test]
    fn trailing_semicolons_ok() {
        assert!(parse("1;;").is_ok());
        assert!(parse(";1").is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("(1").is_err());
        assert!(parse("@Left(1; 2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("FIELD := 1").is_err());
    }

    #[test]
    fn error_mentions_offset() {
        let err = parse("1 $").unwrap_err();
        assert!(err.to_string().contains("offset"));
    }
}
