//! Lexer for the formula language.
//!
//! Notes formula syntax: identifiers (item/variable names, case-insensitive),
//! `@Function` names, string literals in `"..."` or `{...}`, numbers, and the
//! operator set `+ - * / = <> < <= > >= & | ! : := ( ) ;` plus the permuted
//! comparison `*=` and list subtraction-friendly unary minus. `REM "..."`
//! statements are comments and are skipped by the parser.

use domino_types::{DominoError, Result};

/// One lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Item / variable / keyword name (stored as written; compared
    /// case-insensitively).
    Ident(String),
    /// `@Name` — the `@` is stripped and the name lowercased.
    AtName(String),
    Number(f64),
    Str(String),
    Plus,
    Minus,
    Star,
    Slash,
    Assign, // :=
    Colon,  // : (list concatenation)
    Semi,   // ;
    LParen,
    RParen,
    Eq, // =
    Ne, // <> or !=
    Lt,
    Le,
    Gt,
    Ge,
    PermEq, // *= permuted equality
    PermNe, // *<> permuted inequality
    And,    // &
    Or,     // |
    Not,    // !
    Eof,
}

impl TokenKind {
    /// Human-readable token name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::AtName(s) => format!("@{s}"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Str(_) => "string literal".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Assign => "`:=`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`<>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::PermEq => "`*=`".into(),
            TokenKind::PermNe => "`*<>`".into(),
            TokenKind::And => "`&`".into(),
            TokenKind::Or => "`|`".into(),
            TokenKind::Not => "`!`".into(),
            TokenKind::Eof => "end of formula".into(),
        }
    }
}

/// Tokenize formula source. Returns the token stream terminated by `Eof`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semi,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '&' => {
                out.push(Token {
                    kind: TokenKind::And,
                    offset: start,
                });
                i += 1;
            }
            '|' => {
                out.push(Token {
                    kind: TokenKind::Or,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                // `*=` / `*<>` are the permuted comparisons; bare `*` is multiply.
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::PermEq,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'<') && bytes.get(i + 2) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::PermNe,
                        offset: start,
                    });
                    i += 3;
                } else {
                    out.push(Token {
                        kind: TokenKind::Star,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Not,
                        offset: start,
                    });
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Assign,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Colon,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' => {
                let (s, next) = lex_quoted(src, i, '"', '"')?;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
                i = next;
            }
            '{' => {
                let (s, next) = lex_quoted(src, i, '{', '}')?;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
                i = next;
            }
            '@' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(DominoError::FormulaParse(format!(
                        "bare `@` at offset {start}"
                    )));
                }
                out.push(Token {
                    kind: TokenKind::AtName(src[i + 1..j].to_lowercase()),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut j = i;
                let mut seen_dot = false;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() {
                        j += 1;
                    } else if b == '.' && !seen_dot {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                // Exponent suffix like 1e9 / 2.5E-3.
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        while k < bytes.len() && bytes[k].is_ascii_digit() {
                            k += 1;
                        }
                        j = k;
                    }
                }
                let n: f64 = src[i..j].parse().map_err(|_| {
                    DominoError::FormulaParse(format!(
                        "bad number literal {:?} at offset {start}",
                        &src[i..j]
                    ))
                })?;
                out.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'$')
                {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(DominoError::FormulaParse(format!(
                    "unexpected character {other:?} at offset {start}"
                )));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(out)
}

/// Lex a quoted string starting at `start` (which holds `open`). `""` inside
/// a `"` string and `\`-escapes are honoured the way Notes does.
fn lex_quoted(src: &str, start: usize, open: char, close: char) -> Result<(String, usize)> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[start] as char, open);
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == close {
            // Doubled quote = literal quote (only for `"` strings).
            if close == '"' && bytes.get(i + 1) == Some(&b'"') {
                s.push('"');
                i += 2;
                continue;
            }
            return Ok((s, i + 1));
        }
        if c == '\\' && close == '"' && i + 1 < bytes.len() {
            // The escaped character may be multi-byte; step by its real
            // width so the cursor stays on a char boundary.
            let esc = src[i + 1..].chars().next().expect("bytes remain");
            match esc {
                'n' => s.push('\n'),
                't' => s.push('\t'),
                '\\' => s.push('\\'),
                '"' => s.push('"'),
                other => {
                    s.push('\\');
                    s.push(other);
                }
            }
            i += 1 + esc.len_utf8();
            continue;
        }
        // Multi-byte UTF-8: copy the full scalar.
        let ch_len = src[i..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
        s.push_str(&src[i..i + ch_len]);
        i += ch_len;
    }
    Err(DominoError::FormulaParse(format!(
        "unterminated string starting at offset {start}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("+ - * / = <> < <= > >= & | ! : := ; ( ) *="),
            vec![
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Not,
                TokenKind::Colon,
                TokenKind::Assign,
                TokenKind::Semi,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::PermEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("3"), vec![TokenKind::Number(3.0), TokenKind::Eof]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Number(3.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1e3"),
            vec![TokenKind::Number(1000.0), TokenKind::Eof]
        );
        assert_eq!(
            kinds("2.5E-1"),
            vec![TokenKind::Number(0.25), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b""#),
            vec![TokenKind::Str("a\"b".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds(r#""he said ""hi""""#),
            vec![TokenKind::Str("he said \"hi\"".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("{curly string}"),
            vec![TokenKind::Str("curly string".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_unicode_strings() {
        assert_eq!(
            kinds("\"héllo ☃\""),
            vec![TokenKind::Str("héllo ☃".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_at_names_case_folded() {
        assert_eq!(
            kinds("@IsAvailable(Subject)"),
            vec![
                TokenKind::AtName("isavailable".into()),
                TokenKind::LParen,
                TokenKind::Ident("Subject".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dollar_names_are_idents() {
        assert_eq!(
            kinds("$Readers"),
            vec![TokenKind::Ident("$Readers".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("\"oops").is_err());
        assert!(lex("{oops").is_err());
    }

    #[test]
    fn errors_on_bare_at_and_junk() {
        assert!(lex("@ ").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn bang_equals_is_ne() {
        assert_eq!(kinds("!="), vec![TokenKind::Ne, TokenKind::Eof]);
    }

    #[test]
    fn offsets_track_source() {
        let toks = lex("a + b").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 2);
        assert_eq!(toks[2].offset, 4);
    }
}
