//! The inverted index and query execution.

use std::collections::HashMap;
use std::sync::OnceLock;

use domino_core::Note;
use domino_obs as obs;
use domino_types::{Unid, Value};

use crate::query::QueryNode;
use crate::tokenizer::tokenize;

/// Registry handles for full-text telemetry. `Ft.Index.Documents` is a
/// gauge summed across every index in the process.
struct Metrics {
    indexed: &'static obs::Counter,
    removed: &'static obs::Counter,
    documents: &'static obs::Gauge,
    queries: &'static obs::Counter,
    query_micros: &'static obs::Histogram,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        indexed: obs::counter("Ft.Notes.Indexed"),
        removed: obs::counter("Ft.Notes.Removed"),
        documents: obs::gauge("Ft.Index.Documents"),
        queries: obs::counter("Ft.Queries"),
        query_micros: obs::histogram("Ft.Query.Micros"),
    })
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    pub unid: Unid,
    /// Term-frequency score, normalized by document length.
    pub score: f32,
}

/// Index size counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtStats {
    pub documents: usize,
    pub terms: usize,
    /// Total (term, document) pairs.
    pub postings: usize,
    /// Total positions stored.
    pub positions: usize,
}

/// Posting list for one term: document → ascending positions.
type Postings = HashMap<Unid, Vec<u32>>;

/// The in-memory inverted index.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    terms: HashMap<String, Postings>,
    /// Document → total indexed tokens (for score normalization) and the
    /// terms it contains (for cheap removal).
    docs: HashMap<Unid, (u32, Vec<String>)>,
}

impl InvertedIndex {
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Extract all indexable text of a note: every text-ish item value,
    /// concatenated in item order (positions therefore never match across
    /// item boundaries — each item's text is offset past the previous).
    fn text_of(note: &Note) -> String {
        let mut out = String::new();
        for item in note.items() {
            if item.is_system() {
                continue;
            }
            match &item.value {
                Value::Text(_) | Value::TextList(_) | Value::RichText(_) => {
                    out.push_str(&item.value.to_text());
                    out.push('\n');
                }
                _ => {}
            }
        }
        out
    }

    /// Add or refresh one note.
    pub fn index_note(&mut self, note: &Note) {
        self.remove(note.unid());
        let unid = note.unid();
        let tokens = tokenize(&Self::text_of(note));
        let total = tokens.len() as u32;
        let mut terms_here: Vec<String> = Vec::new();
        for (word, pos) in tokens {
            let postings = self.terms.entry(word.clone()).or_default();
            let positions = postings.entry(unid).or_default();
            if positions.is_empty() {
                terms_here.push(word);
            }
            positions.push(pos);
        }
        self.docs.insert(unid, (total.max(1), terms_here));
        m().indexed.inc();
        m().documents.add(1);
    }

    /// Remove one document entirely.
    pub fn remove(&mut self, unid: Unid) {
        let Some((_, terms)) = self.docs.remove(&unid) else {
            return;
        };
        m().removed.inc();
        m().documents.add(-1);
        for term in terms {
            if let Some(postings) = self.terms.get_mut(&term) {
                postings.remove(&unid);
                if postings.is_empty() {
                    self.terms.remove(&term);
                }
            }
        }
    }

    pub fn stats(&self) -> FtStats {
        FtStats {
            documents: self.docs.len(),
            terms: self.terms.len(),
            postings: self.terms.values().map(|p| p.len()).sum(),
            positions: self
                .terms
                .values()
                .flat_map(|p| p.values())
                .map(|v| v.len())
                .sum(),
        }
    }

    // ------------------------------------------------------------------
    // execution
    // ------------------------------------------------------------------

    /// Run a parsed query; hits sorted by descending score.
    pub fn execute(&self, q: &QueryNode) -> Vec<SearchHit> {
        let _span = obs::span!("Ft.Query");
        let started = std::time::Instant::now();
        m().queries.inc();
        let matches = self.eval(q);
        let mut hits: Vec<SearchHit> = matches
            .into_iter()
            .map(|(unid, tf)| {
                let len = self.docs.get(&unid).map(|(n, _)| *n).unwrap_or(1);
                SearchHit {
                    unid,
                    score: tf as f32 / len as f32,
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.unid.0.cmp(&b.unid.0))
        });
        m().query_micros.record_micros(started.elapsed());
        hits
    }

    /// Evaluate to document → matched-term-occurrence count.
    fn eval(&self, q: &QueryNode) -> HashMap<Unid, u32> {
        match q {
            QueryNode::Term(w) => self
                .terms
                .get(w)
                .map(|p| {
                    p.iter()
                        .map(|(unid, positions)| (*unid, positions.len() as u32))
                        .collect()
                })
                .unwrap_or_default(),
            QueryNode::Phrase(words) => self.eval_phrase(words),
            QueryNode::And(a, b) => {
                let (small, large) = {
                    let ra = self.eval(a);
                    let rb = self.eval(b);
                    if ra.len() <= rb.len() {
                        (ra, rb)
                    } else {
                        (rb, ra)
                    }
                };
                small
                    .into_iter()
                    .filter_map(|(unid, tf)| large.get(&unid).map(|tf2| (unid, tf + tf2)))
                    .collect()
            }
            QueryNode::Or(a, b) => {
                let mut out = self.eval(a);
                for (unid, tf) in self.eval(b) {
                    *out.entry(unid).or_insert(0) += tf;
                }
                out
            }
            QueryNode::Not(a, b) => {
                let excluded = self.eval(b);
                self.eval(a)
                    .into_iter()
                    .filter(|(unid, _)| !excluded.contains_key(unid))
                    .collect()
            }
        }
    }

    fn eval_phrase(&self, words: &[String]) -> HashMap<Unid, u32> {
        let Some(first) = words.first() else {
            return HashMap::new();
        };
        let Some(first_postings) = self.terms.get(first) else {
            return HashMap::new();
        };
        let mut out = HashMap::new();
        'docs: for (unid, first_positions) in first_postings {
            // Every subsequent word must appear at position +k.
            let mut rest: Vec<&Vec<u32>> = Vec::with_capacity(words.len() - 1);
            for w in &words[1..] {
                match self.terms.get(w).and_then(|p| p.get(unid)) {
                    Some(pos) => rest.push(pos),
                    None => continue 'docs,
                }
            }
            let mut count = 0u32;
            for start in first_positions {
                let aligned = rest
                    .iter()
                    .enumerate()
                    .all(|(k, pos)| pos.binary_search(&(start + k as u32 + 1)).is_ok());
                if aligned {
                    count += 1;
                }
            }
            if count > 0 {
                out.insert(*unid, count * words.len() as u32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use domino_types::NoteClass;

    fn note(unid: u128, text: &str) -> Note {
        let mut n = Note::new(NoteClass::Document);
        n.oid.unid = Unid(unid);
        n.set("Body", Value::text(text));
        n
    }

    fn index(texts: &[(u128, &str)]) -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        for (unid, text) in texts {
            ix.index_note(&note(*unid, text));
        }
        ix
    }

    fn unids(ix: &InvertedIndex, q: &str) -> Vec<u128> {
        let mut v: Vec<u128> = ix
            .execute(&parse_query(q).unwrap())
            .into_iter()
            .map(|h| h.unid.0)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn term_lookup() {
        let ix = index(&[(1, "red green"), (2, "green blue")]);
        assert_eq!(unids(&ix, "green"), vec![1, 2]);
        assert_eq!(unids(&ix, "red"), vec![1]);
        assert_eq!(unids(&ix, "purple"), Vec::<u128>::new());
    }

    #[test]
    fn reindex_replaces_old_terms() {
        let mut ix = index(&[(1, "alpha beta")]);
        ix.index_note(&note(1, "gamma delta"));
        assert_eq!(unids(&ix, "alpha"), Vec::<u128>::new());
        assert_eq!(unids(&ix, "gamma"), vec![1]);
        assert_eq!(ix.stats().documents, 1);
    }

    #[test]
    fn remove_cleans_empty_posting_lists() {
        let mut ix = index(&[(1, "solo word")]);
        ix.remove(Unid(1));
        let s = ix.stats();
        assert_eq!(s.documents, 0);
        assert_eq!(s.terms, 0);
        assert_eq!(s.postings, 0);
    }

    #[test]
    fn phrase_counts_multiple_occurrences() {
        let ix = index(&[(1, "big cat big cat big dog")]);
        let hits = ix.execute(&parse_query("\"big cat\"").unwrap());
        assert_eq!(hits.len(), 1);
        // two aligned occurrences * 2 words
        let raw = ix.eval(&parse_query("\"big cat\"").unwrap());
        assert_eq!(raw[&Unid(1)], 4);
    }

    #[test]
    fn system_items_not_indexed() {
        let mut n = note(1, "visible");
        n.set("$Secret", Value::text("hiddenword"));
        let mut ix = InvertedIndex::new();
        ix.index_note(&n);
        assert!(unids(&ix, "hiddenword").is_empty());
        assert_eq!(unids(&ix, "visible"), vec![1]);
    }

    #[test]
    fn numeric_items_ignored() {
        let mut n = note(1, "text");
        n.set("Total", Value::Number(12345.0));
        let mut ix = InvertedIndex::new();
        ix.index_note(&n);
        assert!(unids(&ix, "12345").is_empty());
    }
}
