//! Per-database full-text indexing.
//!
//! Domino attaches an optional inverted index to each database (the paper
//! notes the engine was licensed; ours is built from scratch — see
//! DESIGN.md §2). The index covers the text of every item of every
//! document, updates incrementally from change events, and answers word,
//! boolean (`AND`/`OR`/`NOT`), and quoted-phrase queries ranked by term
//! frequency.
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note};
//! use domino_types::{LogicalClock, ReplicaId, Value};
//! use domino_ftindex::FtIndex;
//!
//! let db = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Docs", ReplicaId(1), ReplicaId(2)),
//!     LogicalClock::new(),
//! ).unwrap());
//! let ft = FtIndex::attach(&db).unwrap();
//! let mut n = Note::document("Memo");
//! n.set("Body", Value::text("the quarterly revenue report"));
//! db.save(&mut n).unwrap();
//! let hits = ft.search("revenue AND report").unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod index;
pub mod query;
pub mod tokenizer;

pub use index::{FtStats, InvertedIndex, SearchHit};
pub use query::{parse_query, QueryNode};
pub use tokenizer::{tokenize, STOPWORDS};

use std::sync::Arc;

use parking_lot::RwLock;

use domino_core::{ChangeEvent, Database, Note};
use domino_types::Result;

/// A live full-text index bound to a database.
pub struct FtIndex {
    state: Arc<RwLock<InvertedIndex>>,
}

impl FtIndex {
    /// Index the current contents and stay current via change events.
    pub fn attach(db: &Arc<Database>) -> Result<FtIndex> {
        let ft = FtIndex {
            state: Arc::new(RwLock::new(InvertedIndex::new())),
        };
        ft.rebuild(db)?;
        let state = ft.state.clone();
        db.subscribe(Arc::new(move |event: &ChangeEvent| {
            let mut g = state.write();
            match event {
                ChangeEvent::Saved { new, .. } => g.index_note(new),
                ChangeEvent::Deleted { old, .. } => g.remove(old.unid()),
            }
        }));
        Ok(ft)
    }

    /// An empty, manually-maintained index.
    pub fn detached() -> FtIndex {
        FtIndex {
            state: Arc::new(RwLock::new(InvertedIndex::new())),
        }
    }

    /// Re-index everything from one pinned snapshot: the result is the
    /// database exactly as of the snapshot's change sequence, with no
    /// writer lock held while tokenizing.
    pub fn rebuild(&self, db: &Database) -> Result<()> {
        let snap = db.snapshot();
        let mut g = self.state.write();
        *g = InvertedIndex::new();
        for note in snap.documents() {
            g.index_note(note.as_ref());
        }
        Ok(())
    }

    /// Index one note manually.
    pub fn index_note(&self, note: &Note) {
        self.state.write().index_note(note);
    }

    /// Search with the query language: bare words (implicit AND), `AND`,
    /// `OR`, `NOT`, parentheses, and `"quoted phrases"`.
    pub fn search(&self, query: &str) -> Result<Vec<SearchHit>> {
        let ast = parse_query(query)?;
        Ok(self.state.read().execute(&ast))
    }

    pub fn stats(&self) -> FtStats {
        self.state.read().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::DbConfig;
    use domino_types::{LogicalClock, ReplicaId, Unid, Value};

    fn db() -> Arc<Database> {
        Arc::new(
            Database::open_in_memory(
                DbConfig::new("T", ReplicaId(1), ReplicaId(3)),
                LogicalClock::new(),
            )
            .unwrap(),
        )
    }

    fn doc(db: &Database, subject: &str, body: &str) -> Unid {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(subject));
        n.set_body("Body", Value::RichText(body.as_bytes().to_vec()));
        db.save(&mut n).unwrap();
        n.unid()
    }

    #[test]
    fn attach_indexes_existing_and_new_documents() {
        let db = db();
        let before = doc(&db, "old doc", "about elephants");
        let ft = FtIndex::attach(&db).unwrap();
        let after = doc(&db, "new doc", "about giraffes");
        let e = ft.search("elephants").unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].unid, before);
        let g = ft.search("giraffes").unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].unid, after);
    }

    #[test]
    fn boolean_queries() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        let a = doc(&db, "alpha", "cats and dogs");
        let b = doc(&db, "beta", "cats and birds");
        let c = doc(&db, "gamma", "only birds");
        assert_eq!(ft.search("cats").unwrap().len(), 2);
        let and = ft.search("cats AND birds").unwrap();
        assert_eq!(and.len(), 1);
        assert_eq!(and[0].unid, b);
        let or = ft.search("dogs OR birds").unwrap();
        assert_eq!(or.len(), 3);
        let not = ft.search("cats NOT birds").unwrap();
        assert_eq!(not.len(), 1);
        assert_eq!(not[0].unid, a);
        let complex = ft.search("(dogs OR birds) NOT cats").unwrap();
        assert_eq!(complex.len(), 1);
        assert_eq!(complex[0].unid, c);
    }

    #[test]
    fn phrase_queries_respect_adjacency() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        let hit = doc(&db, "a", "the quick brown fox jumps");
        let _miss = doc(&db, "b", "the brown quick fox naps");
        let r = ft.search("\"quick brown fox\"").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].unid, hit);
    }

    #[test]
    fn phrase_spans_stopwords() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        let hit = doc(&db, "a", "state of the art engine");
        let r = ft.search("\"state art\"").unwrap();
        // "of the" are stopwords and never indexed; positions still line up
        // because stopwords are dropped before position assignment.
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].unid, hit);
    }

    #[test]
    fn updates_and_deletes_keep_index_current() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        let unid = doc(&db, "s", "original wording");
        assert_eq!(ft.search("original").unwrap().len(), 1);
        let mut n = db.open_by_unid(unid).unwrap();
        n.set_body("Body", Value::RichText(b"revised wording".to_vec()));
        db.save(&mut n).unwrap();
        assert_eq!(ft.search("original").unwrap().len(), 0);
        assert_eq!(ft.search("revised").unwrap().len(), 1);
        db.delete(n.id).unwrap();
        assert_eq!(ft.search("revised").unwrap().len(), 0);
        assert_eq!(ft.search("wording").unwrap().len(), 0);
    }

    #[test]
    fn ranking_prefers_higher_term_frequency() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        let heavy = doc(&db, "h", "storage storage storage engine");
        let light = doc(&db, "l", "storage notes");
        let r = ft.search("storage").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].unid, heavy);
        assert_eq!(r[1].unid, light);
        assert!(r[0].score > r[1].score);
    }

    #[test]
    fn stopwords_not_searchable() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        doc(&db, "s", "the and of it");
        // A stopword-only query is rejected outright...
        assert!(ft.search("the").is_err());
        // ...and no stopword was indexed: only the Form item's "memo".
        assert_eq!(ft.stats().terms, 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        doc(&db, "a", "unique tokens here");
        let s = ft.stats();
        assert_eq!(s.documents, 1);
        assert!(s.terms >= 3);
        assert!(s.postings >= 3);
    }

    #[test]
    fn empty_and_bad_queries() {
        let db = db();
        let ft = FtIndex::attach(&db).unwrap();
        assert!(ft.search("").is_err());
        assert!(ft.search("(unbalanced").is_err());
        assert!(ft.search("\"unterminated").is_err());
    }
}
