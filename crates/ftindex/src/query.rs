//! The full-text query language.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query  := or
//! or     := and ( "OR" and )*
//! and    := not ( ("AND")? not )*        adjacency = implicit AND
//! not    := term ( "NOT" term )*
//! term   := word | "\"" phrase "\"" | "(" query ")"
//! ```

use domino_types::{DominoError, Result};

use crate::tokenizer::normalize_word;

/// Parsed query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryNode {
    Term(String),
    Phrase(Vec<String>),
    And(Box<QueryNode>, Box<QueryNode>),
    Or(Box<QueryNode>, Box<QueryNode>),
    /// Matches of `left` minus matches of `right`.
    Not(Box<QueryNode>, Box<QueryNode>),
}

#[derive(Debug, PartialEq)]
enum Tok {
    Word(String),
    Phrase(Vec<String>),
    And,
    Or,
    Not,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {}
            '(' => out.push(Tok::LParen),
            ')' => out.push(Tok::RParen),
            '"' => {
                let start = i + 1;
                let mut end = None;
                for (j, d) in chars.by_ref() {
                    if d == '"' {
                        end = Some(j);
                        break;
                    }
                }
                let Some(end) = end else {
                    return Err(DominoError::InvalidArgument(
                        "unterminated phrase quote".into(),
                    ));
                };
                let words: Vec<String> = src[start..end]
                    .split_whitespace()
                    .filter_map(normalize_word)
                    .collect();
                if words.is_empty() {
                    return Err(DominoError::InvalidArgument(
                        "phrase has no searchable words".into(),
                    ));
                }
                out.push(Tok::Phrase(words));
            }
            _ => {
                let mut word = String::new();
                word.push(c);
                while let Some((_, d)) = chars.peek() {
                    if d.is_whitespace() || *d == '(' || *d == ')' || *d == '"' {
                        break;
                    }
                    word.push(*d);
                    chars.next();
                }
                match word.to_ascii_uppercase().as_str() {
                    "AND" | "&" => out.push(Tok::And),
                    "OR" | "|" => out.push(Tok::Or),
                    "NOT" | "!" => out.push(Tok::Not),
                    _ => match normalize_word(&word) {
                        Some(w) => out.push(Tok::Word(w)),
                        None => {
                            return Err(DominoError::InvalidArgument(format!(
                                "{word:?} is too short or a stopword"
                            )))
                        }
                    },
                }
            }
        }
    }
    Ok(out)
}

/// Parse a query string.
pub fn parse_query(src: &str) -> Result<QueryNode> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err(DominoError::InvalidArgument("empty query".into()));
    }
    let mut p = Parser { toks, pos: 0 };
    let node = p.or()?;
    if p.pos != p.toks.len() {
        return Err(DominoError::InvalidArgument(
            "trailing tokens in query".into(),
        ));
    }
    Ok(node)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn or(&mut self) -> Result<QueryNode> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = QueryNode::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<QueryNode> {
        let mut lhs = self.not()?;
        loop {
            match self.peek() {
                Some(Tok::And) => {
                    self.pos += 1;
                    let rhs = self.not()?;
                    lhs = QueryNode::And(Box::new(lhs), Box::new(rhs));
                }
                // Implicit AND on adjacency.
                Some(Tok::Word(_)) | Some(Tok::Phrase(_)) | Some(Tok::LParen) => {
                    let rhs = self.not()?;
                    lhs = QueryNode::And(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn not(&mut self) -> Result<QueryNode> {
        let mut lhs = self.term()?;
        while matches!(self.peek(), Some(Tok::Not)) {
            self.pos += 1;
            let rhs = self.term()?;
            lhs = QueryNode::Not(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<QueryNode> {
        match self.toks.get(self.pos) {
            Some(Tok::Word(w)) => {
                let node = QueryNode::Term(w.clone());
                self.pos += 1;
                Ok(node)
            }
            Some(Tok::Phrase(ws)) => {
                let node = if ws.len() == 1 {
                    QueryNode::Term(ws[0].clone())
                } else {
                    QueryNode::Phrase(ws.clone())
                };
                self.pos += 1;
                Ok(node)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let node = self.or()?;
                if !matches!(self.toks.get(self.pos), Some(Tok::RParen)) {
                    return Err(DominoError::InvalidArgument("missing `)` in query".into()));
                }
                self.pos += 1;
                Ok(node)
            }
            other => Err(DominoError::InvalidArgument(format!(
                "expected a term, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word() {
        assert_eq!(
            parse_query("Elephants").unwrap(),
            QueryNode::Term("elephants".into())
        );
    }

    #[test]
    fn implicit_and() {
        let q = parse_query("cats dogs").unwrap();
        assert_eq!(
            q,
            QueryNode::And(
                Box::new(QueryNode::Term("cats".into())),
                Box::new(QueryNode::Term("dogs".into()))
            )
        );
    }

    #[test]
    fn explicit_operators_and_precedence() {
        // NOT binds tighter than AND binds tighter than OR.
        let q = parse_query("cats AND dogs OR birds NOT fish").unwrap();
        assert_eq!(
            q,
            QueryNode::Or(
                Box::new(QueryNode::And(
                    Box::new(QueryNode::Term("cats".into())),
                    Box::new(QueryNode::Term("dogs".into()))
                )),
                Box::new(QueryNode::Not(
                    Box::new(QueryNode::Term("birds".into())),
                    Box::new(QueryNode::Term("fish".into()))
                ))
            )
        );
    }

    #[test]
    fn parens_override() {
        let q = parse_query("(cats OR dogs) birds").unwrap();
        assert!(matches!(q, QueryNode::And(_, _)));
    }

    #[test]
    fn phrases() {
        let q = parse_query("\"Quick Brown fox\"").unwrap();
        assert_eq!(
            q,
            QueryNode::Phrase(vec!["quick".into(), "brown".into(), "fox".into()])
        );
        // One-word phrase degrades to a term.
        assert_eq!(
            parse_query("\"fox\"").unwrap(),
            QueryNode::Term("fox".into())
        );
    }

    #[test]
    fn symbol_operators() {
        let q = parse_query("cats & dogs | birds").unwrap();
        assert!(matches!(q, QueryNode::Or(_, _)));
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("(cats").is_err());
        assert!(parse_query("\"oops").is_err());
        assert!(parse_query("cats AND").is_err());
        assert!(parse_query("the").is_err(), "stopword-only query");
        assert!(parse_query("\"the of\"").is_err(), "stopword-only phrase");
    }
}
