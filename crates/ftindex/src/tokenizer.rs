//! Tokenization: text → indexed word stream.
//!
//! Words are maximal alphanumeric runs, lowercased; single characters and
//! stopwords are dropped *before* positions are assigned, so phrases match
//! across stopwords ("state of the art" matches the phrase "state art").

/// Common English stopwords (the short list Domino's index options used).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "if", "in", "is", "it", "its", "not", "of", "on", "or", "she", "that",
    "the", "their", "they", "this", "to", "was", "we", "were", "which", "will", "with", "you",
];

fn is_stopword(w: &str) -> bool {
    STOPWORDS.binary_search(&w).is_ok()
}

/// Split text into `(word, position)` pairs.
pub fn tokenize(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut pos = 0u32;
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.len() < 2 {
            continue;
        }
        let w = raw.to_lowercase();
        if is_stopword(&w) {
            continue;
        }
        out.push((w, pos));
        pos += 1;
    }
    out
}

/// Tokenize a query word the same way documents are (single normalization
/// path keeps query and index consistent).
pub fn normalize_word(word: &str) -> Option<String> {
    let w: String = word
        .chars()
        .filter(|c| c.is_alphanumeric())
        .collect::<String>()
        .to_lowercase();
    if w.len() < 2 || is_stopword(&w) {
        None
    } else {
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn tokenize_basic() {
        let toks = tokenize("The quick-brown FOX!");
        assert_eq!(
            toks,
            vec![
                ("quick".to_string(), 0),
                ("brown".to_string(), 1),
                ("fox".to_string(), 2)
            ]
        );
    }

    #[test]
    fn stopwords_and_short_words_dropped_before_positions() {
        let toks = tokenize("state of the art x engine");
        assert_eq!(
            toks,
            vec![
                ("state".to_string(), 0),
                ("art".to_string(), 1),
                ("engine".to_string(), 2)
            ]
        );
    }

    #[test]
    fn numbers_are_tokens() {
        let toks = tokenize("q3 revenue 2024");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[2].0, "2024");
    }

    #[test]
    fn normalize_word_matches_tokenizer() {
        assert_eq!(normalize_word("FOX!"), Some("fox".to_string()));
        assert_eq!(normalize_word("the"), None);
        assert_eq!(normalize_word("x"), None);
    }

    #[test]
    fn unicode_text_survives() {
        let toks = tokenize("naïve café systems");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].0, "naïve");
    }
}
