//! Network fault injection: the flaky-dial-up-link model.
//!
//! The tutorial's claim is that Notes replication is epidemic and
//! eventually consistent *even over unreliable links*. This module gives
//! the simulator the vocabulary to prove it, mirroring the storage
//! layer's `FaultDisk`/`FaultPlan` style: a seeded deterministic RNG
//! ([`FaultClock`]) drives per-message drops and transient link flaps
//! declared on [`LinkSpec`](crate::LinkSpec), plus scheduled per-server
//! [`Outage`] windows — and every injected fault is accounted so E14 can
//! report convergence cost as a function of loss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use domino_replica::splitmix64;

/// A seeded deterministic RNG shared by every fault decision in a
/// [`Network`](crate::Network). Clones share state (like `FaultPlan`), so
/// a transport handed to a replicator draws from the same stream as the
/// scheduler that created it — runs are reproducible tick-for-tick from
/// the seed alone.
#[derive(Debug, Clone)]
pub struct FaultClock {
    state: Arc<AtomicU64>,
}

impl Default for FaultClock {
    fn default() -> FaultClock {
        FaultClock::seeded(0xD011_1E7E)
    }
}

impl FaultClock {
    /// A fault clock whose whole decision stream is determined by `seed`.
    pub fn seeded(seed: u64) -> FaultClock {
        FaultClock {
            state: Arc::new(AtomicU64::new(seed)),
        }
    }

    /// Next raw 64-bit draw (SplitMix64 over a shared counter).
    pub fn next_u64(&self) -> u64 {
        let s = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(s)
    }

    /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
    pub fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Uniform draw in `[0, max]`.
    pub fn jitter(&self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            self.next_u64() % (max + 1)
        }
    }
}

/// A scheduled per-server outage window: the server neither replicates nor
/// routes mail while `from <= now < until` (reboot, crash, maintenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Index of the affected server.
    pub server: usize,
    /// First tick of the outage (inclusive).
    pub from: u64,
    /// End of the outage (exclusive).
    pub until: u64,
}

impl Outage {
    /// Is the window active at `now`?
    pub fn active_at(&self, now: u64) -> bool {
        self.from <= now && now < self.until
    }
}

/// Per-link fault accounting (companion to
/// [`LinkTraffic`](crate::LinkTraffic)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Messages lost in flight (per-message drop sampling).
    pub dropped: u64,
    /// Replication passes skipped because the link flapped down.
    pub flaps: u64,
    /// Passes (or mail hops) blocked by a server outage window.
    pub outages: u64,
    /// Passes abandoned with the retry policy exhausted.
    pub aborted_passes: u64,
}

impl LinkFaults {
    /// Fold another link's counters into this one.
    pub fn merge_from(&mut self, other: &LinkFaults) {
        self.dropped += other.dropped;
        self.flaps += other.flaps;
        self.outages += other.outages;
        self.aborted_passes += other.aborted_passes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let a = FaultClock::seeded(42);
        let b = FaultClock::seeded(42);
        let da: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let db: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(da, db);
        assert_ne!(
            da,
            (0..16)
                .map(|_| FaultClock::seeded(43).next_u64())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn clones_share_the_stream() {
        let a = FaultClock::seeded(7);
        let b = a.clone();
        let x = a.next_u64();
        let y = b.next_u64();
        assert_ne!(x, y, "clone advanced the shared state");
    }

    #[test]
    fn chance_extremes() {
        let c = FaultClock::seeded(1);
        assert!(!c.chance(0.0));
        assert!(c.chance(1.0));
        // A 30% coin lands true roughly 30% of the time.
        let hits = (0..10_000).filter(|_| c.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn outage_window_bounds() {
        let o = Outage {
            server: 1,
            from: 100,
            until: 200,
        };
        assert!(!o.active_at(99));
        assert!(o.active_at(100));
        assert!(o.active_at(199));
        assert!(!o.active_at(200));
    }
}
