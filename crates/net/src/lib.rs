//! A deterministic multi-server Domino deployment, in one process.
//!
//! Real Domino evaluations need racks of servers; this crate substitutes a
//! discrete-time simulation (DESIGN.md §2): a [`Network`] of servers
//! connected by a [`Topology`] with per-link latency/bandwidth, hosting
//! database replica sets, scheduled replication, cluster replication, and
//! the mail router ([`MailRouter`]). Time is a shared logical clock, so
//! every run is reproducible tick-for-tick.
//!
//! Links can be made unreliable — and replication still converges, which
//! is the paper's central operational claim:
//!
//! ```
//! use domino_net::{LinkSpec, Network, Topology};
//! use domino_replica::RetryPolicy;
//! use domino_types::LogicalClock;
//!
//! // Two servers joined by a link that loses 20% of messages.
//! let lossy = LinkSpec::default().with_drop_rate(0.20);
//! let mut net = Network::new(2, Topology::Mesh, lossy, LogicalClock::new());
//! net.set_fault_seed(7);                       // reproducible faults
//! net.set_retry_policy(RetryPolicy::standard()); // ride out the drops
//! net.create_replica_set("disc").unwrap();
//!
//! // 40 documents authored on server 0 ...
//! for i in 0..40 {
//!     let mut n = domino_core::Note::document("Memo");
//!     n.set("Subject", domino_types::Value::text(format!("memo {i}")));
//!     net.db(0, "disc").unwrap().save(&mut n).unwrap();
//! }
//!
//! // ... still reach server 1, despite the drops (retry + resume cursors).
//! let rounds = net.run_until_converged("disc", 50).unwrap();
//! assert!(rounds >= 1);
//! assert!(net.converged("disc").unwrap());
//! ```

#![deny(missing_docs)]

pub mod fault;
pub mod mail;
pub mod sim;
pub mod topology;

pub use fault::{FaultClock, LinkFaults, Outage};
pub use mail::{MailRouter, MailStats, MailUser, MAILBOX};
pub use sim::{LinkSpec, LinkTraffic, Network, Server};
pub use topology::{all_pairs_next_hop, Topology};

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::Note;
    use domino_replica::{Cluster, ReplicationOptions};
    use domino_types::{Clock, LogicalClock, Value};

    /// End-to-end: a discussion database converges across a hub-spoke
    /// network while mail flows over the same links.
    #[test]
    fn groupware_deployment_smoke() {
        let clock = LogicalClock::new();
        let mut net = Network::new(4, Topology::HubSpoke, LinkSpec::default(), clock);
        net.create_replica_set("disc").unwrap();
        net.schedule_replication("disc", 50, ReplicationOptions::default());
        let mut router = MailRouter::setup(
            &mut net,
            &[
                MailUser {
                    name: "ann".into(),
                    home_server: 1,
                },
                MailUser {
                    name: "bea".into(),
                    home_server: 3,
                },
            ],
        )
        .unwrap();

        // Post a topic on spoke 1; mail bea about it.
        let db1 = net.db(1, "disc").unwrap();
        let mut topic = Note::document("Topic");
        topic.set("Subject", Value::text("launch plan"));
        db1.save(&mut topic).unwrap();
        router
            .send(&net, 1, "ann", "bea", "see the launch plan", "in disc")
            .unwrap();

        // Let scheduled replication fire a few times and route mail.
        for _ in 0..5 {
            net.step(50).unwrap();
            router.step(&mut net).unwrap();
        }
        router.run_until_delivered(&mut net, 100).unwrap();

        assert!(net.converged("disc").unwrap());
        assert_eq!(
            router.inbox(&net, "bea").unwrap(),
            vec!["see the launch plan"]
        );
        assert!(net.total_traffic().bytes > 0);
    }

    /// Cluster failover: event-driven push keeps a mate current; scheduled
    /// replication lags by up to its interval.
    #[test]
    fn cluster_vs_scheduled_staleness() {
        let clock = LogicalClock::new();
        let mut net = Network::new(3, Topology::Mesh, LinkSpec::default(), clock.clone());
        net.create_replica_set("app").unwrap();
        // Servers 0+1 form a cluster; server 2 relies on scheduled
        // replication every 500 ticks.
        let members = [net.db(0, "app").unwrap(), net.db(1, "app").unwrap()];
        let _cluster = Cluster::join(&members).unwrap();
        net.schedule_replication("app", 500, ReplicationOptions::default());

        let mut doc = Note::document("Order");
        doc.set("Total", Value::Number(42.0));
        net.db(0, "app").unwrap().save(&mut doc).unwrap();

        // Immediately after the save: cluster mate has it, spoke does not.
        assert!(net.db(1, "app").unwrap().open_by_unid(doc.unid()).is_ok());
        assert!(net.db(2, "app").unwrap().open_by_unid(doc.unid()).is_err());
        let before = clock.peek().0;
        net.step(600).unwrap();
        assert!(net.db(2, "app").unwrap().open_by_unid(doc.unid()).is_ok());
        assert!(clock.peek().0 - before >= 500, "scheduled lag is real time");
    }
}
