//! Mail routing: the groupware workload.
//!
//! Notes mail is "just documents plus routing": a memo is an ordinary
//! document deposited in the sender's server's `mail.box`; the router
//! forwards it hop-by-hop along the topology to the recipient's home
//! server, where it lands in the recipient's mail database. Each hop costs
//! link latency + transfer time, which is what E13 measures across
//! topologies.

use std::sync::OnceLock;

use domino_core::Note;
use domino_obs as obs;
use domino_types::{Clock, DominoError, NoteId, ReplicaId, Result, Unid, Value};

use crate::sim::Network;

/// Registry handles for router telemetry. `Mail.Delivery.Ticks` records
/// per-message end-to-end latency in simulated clock ticks.
struct Metrics {
    sent: &'static obs::Counter,
    forwarded: &'static obs::Counter,
    delivered: &'static obs::Counter,
    dead_lettered: &'static obs::Counter,
    delivery_ticks: &'static obs::Histogram,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        sent: obs::counter("Mail.Sent"),
        forwarded: obs::counter("Mail.Forwarded"),
        delivered: obs::counter("Mail.Delivered"),
        dead_lettered: obs::counter("Mail.DeadLettered"),
        delivery_ticks: obs::histogram("Mail.Delivery.Ticks"),
    })
}

/// Database name of a server's router queue.
pub const MAILBOX: &str = "mail.box";

fn mail_file(user: &str) -> String {
    format!("mail.{user}")
}

/// A registered mail user.
#[derive(Debug, Clone)]
pub struct MailUser {
    /// Short name the router addresses messages by.
    pub name: String,
    /// Index of the server holding this user's mail file.
    pub home_server: usize,
}

/// Router statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailStats {
    /// Messages accepted into an originating mail.box.
    pub sent: u64,
    /// Hop-by-hop forwards between mail.boxes.
    pub forwarded: u64,
    /// Messages placed in a recipient's mail file.
    pub delivered: u64,
    /// Messages discarded as unroutable.
    pub dead_lettered: u64,
    /// Sum of delivery latencies in ticks (divide by delivered for mean).
    pub total_latency: u64,
    /// Slowest single delivery in ticks.
    pub max_latency: u64,
}

/// The mail router spanning all servers of a network.
pub struct MailRouter {
    users: Vec<MailUser>,
    stats: MailStats,
    next_lineage: u64,
}

impl MailRouter {
    /// Create `mail.box` queues on every server and a mail file on each
    /// user's home server.
    pub fn setup(net: &mut Network, users: &[MailUser]) -> Result<MailRouter> {
        for i in 0..net.len() {
            // Each mail.box is standalone (its own lineage); router
            // movement, not replication, carries the messages.
            let lineage = ReplicaId(0xABCD_0000 + i as u64);
            net.create_replica_on(i, MAILBOX, lineage)?;
        }
        for (k, u) in users.iter().enumerate() {
            if u.home_server >= net.len() {
                return Err(DominoError::InvalidArgument(format!(
                    "user {} on nonexistent server {}",
                    u.name, u.home_server
                )));
            }
            let lineage = ReplicaId(0xFEED_0000 + k as u64);
            net.create_replica_on(u.home_server, &mail_file(&u.name), lineage)?;
        }
        Ok(MailRouter {
            users: users.to_vec(),
            stats: MailStats::default(),
            next_lineage: 0,
        })
    }

    /// Cumulative router statistics.
    pub fn stats(&self) -> MailStats {
        self.stats
    }

    fn user(&self, name: &str) -> Option<&MailUser> {
        self.users
            .iter()
            .find(|u| u.name.eq_ignore_ascii_case(name))
    }

    /// Deposit a memo into `from_server`'s mail.box.
    pub fn send(
        &mut self,
        net: &Network,
        from_server: usize,
        from: &str,
        to: &str,
        subject: &str,
        body: &str,
    ) -> Result<Unid> {
        let recipient = self
            .user(to)
            .ok_or_else(|| DominoError::NotFound(format!("no mail user {to:?}")))?;
        let now = net.clock().peek().0;
        let mut memo = Note::document("Memo");
        memo.set("From", Value::text(from));
        memo.set("SendTo", Value::text(&recipient.name));
        memo.set("DestServer", Value::Number(recipient.home_server as f64));
        memo.set("Subject", Value::text(subject));
        memo.set_body("Body", Value::text(body));
        memo.set("SentAt", Value::Number(now as f64));
        memo.set("ReadyAt", Value::Number(now as f64));
        memo.set("Hops", Value::Number(0.0));
        net.db(from_server, MAILBOX)?.save(&mut memo)?;
        self.stats.sent += 1;
        m().sent.inc();
        Ok(memo.unid())
    }

    /// Run one routing pass over every server: deliver local mail, forward
    /// remote mail one hop. Returns how many messages were delivered.
    pub fn step(&mut self, net: &mut Network) -> Result<u64> {
        let routes = net.routes();
        let now = net.clock().peek().0;
        let mut delivered = 0u64;
        #[allow(clippy::needless_range_loop)]
        for server in 0..net.len() {
            let mailbox = net.db(server, MAILBOX)?;
            let ids: Vec<NoteId> = mailbox.note_ids(Some(domino_types::NoteClass::Document))?;
            for id in ids {
                let memo = mailbox.open_note(id)?;
                let ready = memo
                    .get("ReadyAt")
                    .and_then(|v| v.as_number().ok())
                    .unwrap_or(0.0) as u64;
                if ready > now {
                    continue; // still in transit
                }
                let dest = memo
                    .get("DestServer")
                    .and_then(|v| v.as_number().ok())
                    .unwrap_or(-1.0) as i64;
                if dest == server as i64 {
                    self.deliver(net, server, &memo, now)?;
                    mailbox.delete(id)?;
                    delivered += 1;
                } else {
                    let next = if dest >= 0 && (dest as usize) < net.len() {
                        routes[server][dest as usize]
                    } else {
                        None
                    };
                    let Some(next) = next else {
                        // Unroutable: the destination does not exist.
                        self.stats.dead_lettered += 1;
                        m().dead_lettered.inc();
                        obs::emit(
                            obs::Event::new(
                                obs::EventKind::Misc,
                                obs::Severity::Warning,
                                "Mail.DeadLettered",
                            )
                            .at(now)
                            .with("to", memo.get_text("SendTo").unwrap_or_default())
                            .with("dest_server", dest)
                            .with("at_server", server),
                        );
                        mailbox.delete(id)?;
                        continue;
                    };
                    if !net.is_link_up(server, next) {
                        // The next hop is partitioned off: the message
                        // waits in mail.box and retries next pass (Domino
                        // holds undeliverable mail the same way).
                        continue;
                    }
                    if !net.mail_hop_ready(server, next) {
                        // Outage at either end or the message was dropped
                        // in flight: same hold-and-retry treatment.
                        continue;
                    }
                    self.forward(net, server, next, memo, now)?;
                    mailbox.delete(id)?;
                }
            }
        }
        Ok(delivered)
    }

    fn forward(
        &mut self,
        net: &mut Network,
        from: usize,
        to: usize,
        memo: Note,
        now: u64,
    ) -> Result<()> {
        let bytes = memo.byte_size() as u64;
        let transfer = net.account_bytes(from, to, bytes);
        let hops = memo
            .get("Hops")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0);
        let mut copy = Note::document("Memo");
        for it in memo.items() {
            if !it.is_system() {
                copy.set_item(it.clone());
            }
        }
        copy.set("Hops", Value::Number(hops + 1.0));
        copy.set("ReadyAt", Value::Number((now + transfer) as f64));
        net.db(to, MAILBOX)?.save(&mut copy)?;
        self.stats.forwarded += 1;
        m().forwarded.inc();
        Ok(())
    }

    fn deliver(&mut self, net: &Network, server: usize, memo: &Note, now: u64) -> Result<()> {
        let recipient = memo.get_text("SendTo").unwrap_or_default();
        let file = mail_file(&recipient);
        let inbox = net.db(server, &file)?;
        let mut letter = Note::document("Memo");
        for it in memo.items() {
            if !it.is_system() && !["ReadyAt", "Hops", "DestServer"].contains(&it.name.as_str()) {
                letter.set_item(it.clone());
            }
        }
        letter.set("DeliveredAt", Value::Number(now as f64));
        inbox.save(&mut letter)?;
        let sent = memo
            .get("SentAt")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0) as u64;
        let latency = now.saturating_sub(sent);
        self.stats.delivered += 1;
        self.stats.total_latency += latency;
        self.stats.max_latency = self.stats.max_latency.max(latency);
        let reg = m();
        reg.delivered.inc();
        reg.delivery_ticks.record(latency);
        obs::emit(
            obs::Event::new(obs::EventKind::Misc, obs::Severity::Info, "Mail.Delivered")
                .at(now)
                .with("to", recipient)
                .with(
                    "hops",
                    memo.get("Hops")
                        .and_then(|v| v.as_number().ok())
                        .unwrap_or(0.0) as u64,
                )
                .with("latency_ticks", latency),
        );
        Ok(())
    }

    /// Step (advancing one tick each pass) until all sent mail is
    /// delivered or `max_steps` elapse. Returns ticks taken.
    pub fn run_until_delivered(&mut self, net: &mut Network, max_steps: u64) -> Result<u64> {
        let start = net.clock().peek().0;
        for _ in 0..max_steps {
            self.step(net)?;
            if self.stats.delivered + self.stats.dead_lettered >= self.stats.sent {
                return Ok(net.clock().peek().0 - start);
            }
            net.clock().advance(1);
        }
        Err(DominoError::Replication(format!(
            "{} of {} messages still undelivered after {max_steps} steps",
            self.stats.sent - self.stats.delivered - self.stats.dead_lettered,
            self.stats.sent
        )))
    }

    /// Inbox contents for a user (subjects, in arrival order).
    pub fn inbox(&mut self, net: &Network, user: &str) -> Result<Vec<String>> {
        let u = self
            .user(user)
            .ok_or_else(|| DominoError::NotFound(format!("no mail user {user:?}")))?
            .clone();
        let db = net.db(u.home_server, &mail_file(&u.name))?;
        let mut out = Vec::new();
        for id in db.note_ids(Some(domino_types::NoteClass::Document))? {
            out.push(db.open_note(id)?.get_text("Subject").unwrap_or_default());
        }
        Ok(out)
    }

    /// Reserve a fresh lineage id (unused helper kept for extensions).
    #[allow(dead_code)]
    fn fresh_lineage(&mut self) -> ReplicaId {
        self.next_lineage += 1;
        ReplicaId(0xBEEF_0000 + self.next_lineage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::LinkSpec;
    use crate::topology::Topology;
    use domino_types::LogicalClock;

    fn users() -> Vec<MailUser> {
        vec![
            MailUser {
                name: "alice".into(),
                home_server: 0,
            },
            MailUser {
                name: "bob".into(),
                home_server: 2,
            },
        ]
    }

    fn net(topology: Topology) -> Network {
        Network::new(
            3,
            topology,
            LinkSpec {
                latency: 2,
                bytes_per_tick: 0,
                ..LinkSpec::default()
            },
            LogicalClock::new(),
        )
    }

    #[test]
    fn local_delivery_same_server() {
        let mut n = net(Topology::Mesh);
        let mut router = MailRouter::setup(&mut n, &users()).unwrap();
        router
            .send(&n, 0, "bob", "alice", "hi alice", "body")
            .unwrap();
        router.run_until_delivered(&mut n, 100).unwrap();
        assert_eq!(router.inbox(&n, "alice").unwrap(), vec!["hi alice"]);
        assert_eq!(router.stats().forwarded, 0);
    }

    #[test]
    fn cross_server_mail_routes_over_chain() {
        let mut n = net(Topology::Chain); // 0-1-2
        let mut router = MailRouter::setup(&mut n, &users()).unwrap();
        router
            .send(&n, 0, "alice", "bob", "hello bob", "body")
            .unwrap();
        router.run_until_delivered(&mut n, 200).unwrap();
        assert_eq!(router.inbox(&n, "bob").unwrap(), vec!["hello bob"]);
        let s = router.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.forwarded, 2, "two hops: 0→1, 1→2");
        assert!(s.total_latency >= 4, "two hops x latency 2");
    }

    #[test]
    fn mesh_delivers_faster_than_chain() {
        let run = |topology| {
            let mut n = net(topology);
            let mut router = MailRouter::setup(&mut n, &users()).unwrap();
            router.send(&n, 0, "alice", "bob", "s", "b").unwrap();
            router.run_until_delivered(&mut n, 500).unwrap();
            router.stats().total_latency
        };
        assert!(run(Topology::Mesh) < run(Topology::Chain));
    }

    #[test]
    fn unknown_recipient_rejected() {
        let mut n = net(Topology::Mesh);
        let mut router = MailRouter::setup(&mut n, &users()).unwrap();
        assert!(router.send(&n, 0, "alice", "nobody", "s", "b").is_err());
    }

    #[test]
    fn mail_waits_out_a_partition() {
        let mut n = net(Topology::Chain); // 0-1-2
        let mut router = MailRouter::setup(&mut n, &users()).unwrap();
        n.partition(1, 2);
        router.send(&n, 0, "alice", "bob", "delayed", "b").unwrap();
        // Several passes: the message reaches server 1 and waits there.
        for _ in 0..10 {
            router.step(&mut n).unwrap();
            n.clock().advance(1);
        }
        assert_eq!(router.stats().delivered, 0);
        assert_eq!(router.stats().dead_lettered, 0, "held, not dropped");
        n.heal(1, 2);
        router.run_until_delivered(&mut n, 100).unwrap();
        assert_eq!(router.inbox(&n, "bob").unwrap(), vec!["delayed"]);
    }

    #[test]
    fn many_messages_all_arrive() {
        let mut n = net(Topology::HubSpoke);
        let mut router = MailRouter::setup(&mut n, &users()).unwrap();
        for i in 0..20 {
            let (from_server, from, to) = if i % 2 == 0 {
                (0, "alice", "bob")
            } else {
                (2, "bob", "alice")
            };
            router
                .send(&n, from_server, from, to, &format!("m{i}"), "b")
                .unwrap();
        }
        router.run_until_delivered(&mut n, 1000).unwrap();
        assert_eq!(router.stats().delivered, 20);
        assert_eq!(router.inbox(&n, "alice").unwrap().len(), 10);
        assert_eq!(router.inbox(&n, "bob").unwrap().len(), 10);
    }
}
