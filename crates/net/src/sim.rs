//! The multi-server simulation.
//!
//! A [`Network`] hosts N servers, each holding replicas of named
//! databases, connected by a [`Topology`] with per-link latency and
//! bandwidth. Time is the shared [`LogicalClock`]: `step()` advances it
//! and fires whatever replication passes are due. Link traffic (bytes,
//! messages, transfer ticks) is accounted per link so the experiments can
//! report bandwidth and latency figures.
//!
//! This is the substitution for a real multi-server Domino deployment
//! (DESIGN.md §2): topology, scheduling, message counts, and byte volumes
//! are faithfully modelled; wire protocol framing is not.
//!
//! Links need not be reliable: a [`LinkSpec`] can declare a per-message
//! drop rate and a flap rate, servers can have scheduled
//! [`Outage`] windows, and a [`RetryPolicy`] tells the
//! scheduler how hard to lean on a flaky link. All fault decisions come
//! from one seeded [`FaultClock`], so a faulty run is
//! exactly as reproducible as a clean one.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use domino_core::{Database, DbConfig};
use domino_obs as obs;
use domino_replica::{ReplicationOptions, ReplicationReport, Replicator, RetryPolicy, Transport};
use domino_types::{Clock, DominoError, LogicalClock, ReplicaId, Result};

use crate::fault::{FaultClock, LinkFaults, Outage};
use crate::topology::{all_pairs_next_hop, Topology};

/// Registry handles for network fault telemetry.
struct Metrics {
    dropped: &'static obs::Counter,
    flaps: &'static obs::Counter,
    outages: &'static obs::Counter,
    aborted: &'static obs::Counter,
    mail_drops: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        dropped: obs::counter("Net.Faults.Dropped"),
        flaps: obs::counter("Net.Faults.Flaps"),
        outages: obs::counter("Net.Faults.Outages"),
        aborted: obs::counter("Net.Faults.AbortedPasses"),
        mail_drops: obs::counter("Net.Faults.MailDrops"),
    })
}

/// A link's physical characteristics — including how unreliable it is.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Fixed per-transfer latency in ticks.
    pub latency: u64,
    /// Bytes transferred per tick (0 = infinite).
    pub bytes_per_tick: u64,
    /// Probability each replication message (candidate batch) or mail hop
    /// is lost in flight (0.0 = perfectly reliable).
    pub drop_rate: f64,
    /// Probability a scheduled replication pass finds the link flapped
    /// down for its whole slot (transient carrier loss; the pass retries
    /// at its next slot).
    pub flap_rate: f64,
}

impl Default for LinkSpec {
    fn default() -> LinkSpec {
        LinkSpec {
            latency: 1,
            bytes_per_tick: 0,
            drop_rate: 0.0,
            flap_rate: 0.0,
        }
    }
}

impl LinkSpec {
    /// Ticks a transfer of `bytes` occupies this link.
    pub fn transfer_ticks(&self, bytes: u64) -> u64 {
        let bw = if self.bytes_per_tick == 0 {
            0
        } else {
            bytes.div_ceil(self.bytes_per_tick)
        };
        self.latency + bw
    }

    /// This spec with a per-message drop rate (builder-style, for tests
    /// and experiments).
    pub fn with_drop_rate(mut self, p: f64) -> LinkSpec {
        self.drop_rate = p;
        self
    }

    /// This spec with a per-pass flap rate.
    pub fn with_flap_rate(mut self, p: f64) -> LinkSpec {
        self.flap_rate = p;
        self
    }
}

/// The simulator's [`Transport`]: drops each message with the link's
/// `drop_rate`, drawing from the network's shared [`FaultClock`].
struct SimTransport {
    rng: FaultClock,
    drop_rate: f64,
    dropped: u64,
}

impl Transport for SimTransport {
    fn deliver(&mut self, notes: u64) -> Result<()> {
        if self.rng.chance(self.drop_rate) {
            self.dropped += 1;
            return Err(DominoError::Unavailable(format!(
                "message carrying {notes} note(s) lost in flight"
            )));
        }
        Ok(())
    }
}

/// Per-link accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Completed transfers (replication passes that shipped bytes, plus
    /// mail hops).
    pub transfers: u64,
    /// Total bytes shipped.
    pub bytes: u64,
    /// Ticks the link was busy (latency + bandwidth-limited transfer time).
    pub busy_ticks: u64,
}

/// One simulated server.
pub struct Server {
    /// Display name (`server0`, `server1`, ...).
    pub name: String,
    /// Seed for this server's per-database instance ids.
    pub instance_seed: ReplicaId,
    databases: HashMap<String, Arc<Database>>,
}

impl Server {
    /// The replica of `name` hosted here, if any.
    pub fn database(&self, name: &str) -> Option<&Arc<Database>> {
        self.databases.get(name)
    }

    /// Names of all databases hosted here, sorted.
    pub fn database_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.databases.keys().cloned().collect();
        v.sort();
        v
    }
}

/// A scheduled agent pass for one database replica.
struct AgentSchedule {
    server: usize,
    db: String,
    interval: u64,
    next_at: u64,
}

/// A scheduled replication pass over one link for one database.
struct Schedule {
    a: usize,
    b: usize,
    db: String,
    interval: u64,
    next_at: u64,
    replicator: Replicator,
}

/// The simulated network of Domino servers.
pub struct Network {
    clock: LogicalClock,
    servers: Vec<Server>,
    topology: Topology,
    links: Vec<(usize, usize)>,
    link_specs: HashMap<(usize, usize), LinkSpec>,
    schedules: Vec<Schedule>,
    agent_schedules: Vec<AgentSchedule>,
    traffic: HashMap<(usize, usize), LinkTraffic>,
    /// Links currently considered down (partition testing).
    down: Vec<(usize, usize)>,
    next_replica_lineage: u64,
    /// The shared deterministic fault stream.
    fault_rng: FaultClock,
    /// Scheduled per-server outage windows.
    outages: Vec<Outage>,
    /// How hard replication passes lean on flaky links.
    retry: RetryPolicy,
    /// Per-link fault accounting.
    faults: HashMap<(usize, usize), LinkFaults>,
    /// Persistent replicators for ad-hoc (unscheduled) passes, so their
    /// resume cursors survive interrupted rounds. Keyed by link + db;
    /// full-compare semantics (no history) are preserved.
    adhoc: HashMap<(usize, usize, String), Replicator>,
    /// Options new ad-hoc replicators are built with. Defaults to
    /// history-off (full compare each round) with digest negotiation on;
    /// experiments flip negotiation off to measure the baseline.
    adhoc_options: ReplicationOptions,
}

impl Network {
    /// Build `n` servers connected by `topology`, all links `spec`.
    pub fn new(n: usize, topology: Topology, spec: LinkSpec, clock: LogicalClock) -> Network {
        let servers = (0..n)
            .map(|i| Server {
                name: format!("server{i}"),
                instance_seed: ReplicaId(0x1000 + i as u64),
                databases: HashMap::new(),
            })
            .collect();
        let links = topology.links(n);
        let link_specs = links.iter().map(|l| (*l, spec)).collect();
        Network {
            clock,
            servers,
            topology,
            links,
            link_specs,
            schedules: Vec::new(),
            agent_schedules: Vec::new(),
            traffic: HashMap::new(),
            down: Vec::new(),
            next_replica_lineage: 0xD0_0000,
            fault_rng: FaultClock::default(),
            outages: Vec::new(),
            retry: RetryPolicy::none(),
            faults: HashMap::new(),
            adhoc: HashMap::new(),
            adhoc_options: ReplicationOptions {
                use_history: false,
                ..ReplicationOptions::default()
            },
        }
    }

    /// Replace the options used for ad-hoc (unscheduled) replication
    /// passes, discarding any existing ad-hoc replicators (and their
    /// parked cursors) so every link restarts under the new options.
    pub fn set_adhoc_options(&mut self, options: ReplicationOptions) {
        self.adhoc_options = options;
        self.adhoc.clear();
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the network has no servers.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.clock.peek().0
    }

    /// The wiring diagram.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Server `i` (panics out of range).
    pub fn server(&self, i: usize) -> &Server {
        &self.servers[i]
    }

    /// Next-hop routing table for the current topology.
    pub fn routes(&self) -> Vec<Vec<Option<usize>>> {
        all_pairs_next_hop(self.servers.len(), &self.links)
    }

    // ------------------------------------------------------------------
    // databases & schedules
    // ------------------------------------------------------------------

    /// Create a replica of a new database on every server; returns the
    /// shared lineage id.
    pub fn create_replica_set(&mut self, name: &str) -> Result<ReplicaId> {
        let lineage = ReplicaId(self.next_replica_lineage);
        self.next_replica_lineage += 1;
        for i in 0..self.servers.len() {
            self.create_replica_on(i, name, lineage)?;
        }
        Ok(lineage)
    }

    /// Create one replica on one server (spokes added later, etc.).
    pub fn create_replica_on(
        &mut self,
        server: usize,
        name: &str,
        lineage: ReplicaId,
    ) -> Result<Arc<Database>> {
        let seed = self.servers[server].instance_seed;
        let instance = ReplicaId(seed.0 << 16 | (self.servers[server].databases.len() as u64));
        let db = Arc::new(Database::open_in_memory(
            DbConfig::new(name, lineage, instance),
            self.clock.clone(),
        )?);
        self.servers[server]
            .databases
            .insert(name.to_string(), db.clone());
        Ok(db)
    }

    /// The replica of `name` on `server` (NotFound if absent).
    pub fn db(&self, server: usize, name: &str) -> Result<Arc<Database>> {
        self.servers[server]
            .databases
            .get(name)
            .cloned()
            .ok_or_else(|| {
                DominoError::NotFound(format!("no replica of {name} on server {server}"))
            })
    }

    /// All replicas of a database, in server order.
    pub fn replicas(&self, name: &str) -> Vec<Arc<Database>> {
        self.servers
            .iter()
            .filter_map(|s| s.databases.get(name).cloned())
            .collect()
    }

    /// Schedule replication of `db` over every topology link, every
    /// `interval` ticks.
    pub fn schedule_replication(&mut self, db: &str, interval: u64, options: ReplicationOptions) {
        let start = self.now();
        for (a, b) in self.links.clone() {
            self.schedules.push(Schedule {
                a,
                b,
                db: db.to_string(),
                interval,
                next_at: start + interval,
                replicator: Replicator::new(options.clone()),
            });
        }
    }

    /// Run every stored scheduled agent of `db` on `server` every
    /// `interval` ticks (the Domino agent manager's job).
    pub fn schedule_agents(&mut self, server: usize, db: &str, interval: u64) {
        let start = self.now();
        self.agent_schedules.push(AgentSchedule {
            server,
            db: db.to_string(),
            interval,
            next_at: start + interval,
        });
    }

    /// Run all stored agents of `db` on `server` immediately.
    pub fn run_agents(
        &mut self,
        server: usize,
        db: &str,
    ) -> Result<Vec<domino_core::AgentRunReport>> {
        let database = self.db(server, db)?;
        let mut out = Vec::new();
        for agent in domino_core::stored_agents(&database)? {
            out.push(agent.run(&database, &format!("server{server}"))?);
        }
        Ok(out)
    }

    /// Run the `OnUpdate`-triggered agents of one replica (fired after a
    /// replication pass delivers changes, like Domino's
    /// "after new mail arrives"/"after documents change" agents).
    fn run_on_update_agents(&mut self, server: usize, db: &str) -> Result<()> {
        let database = self.db(server, db)?;
        for agent in domino_core::stored_agents(&database)? {
            if agent.trigger == domino_core::AgentTrigger::OnUpdate {
                agent.run(&database, &format!("server{server}"))?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // partitions
    // ------------------------------------------------------------------

    /// Take a link down (both directions).
    pub fn partition(&mut self, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        if !self.down.contains(&key) {
            self.down.push(key);
        }
    }

    /// Restore a link.
    pub fn heal(&mut self, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        self.down.retain(|l| *l != key);
    }

    /// Is the link between two servers currently up?
    pub fn is_link_up(&self, a: usize, b: usize) -> bool {
        !self.down.contains(&(a.min(b), a.max(b)))
    }

    fn link_up(&self, a: usize, b: usize) -> bool {
        self.is_link_up(a, b)
    }

    // ------------------------------------------------------------------
    // faults
    // ------------------------------------------------------------------

    /// Reseed the deterministic fault stream (call before injecting any
    /// fault to make a run reproducible from the seed alone).
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_rng = FaultClock::seeded(seed);
    }

    /// The retry policy scheduled replication passes use on flaky links.
    /// Defaults to [`RetryPolicy::none`] — the pre-fault behaviour.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replace the spec of one link (e.g. to make just the WAN hop lossy).
    pub fn set_link_spec(&mut self, a: usize, b: usize, spec: LinkSpec) {
        self.link_specs.insert((a.min(b), a.max(b)), spec);
    }

    /// Replace every link's spec (e.g. a uniform drop rate for E14).
    pub fn set_all_link_specs(&mut self, spec: LinkSpec) {
        for l in &self.links {
            self.link_specs.insert(*l, spec);
        }
    }

    /// The spec of a link (default when the pair is not a topology link).
    pub fn link_spec(&self, a: usize, b: usize) -> LinkSpec {
        self.link_specs
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or_default()
    }

    /// Schedule a server outage window: the server neither replicates nor
    /// routes mail while `from <= now < until`.
    pub fn schedule_outage(&mut self, server: usize, from: u64, until: u64) {
        self.outages.push(Outage {
            server,
            from,
            until,
        });
    }

    /// Is `server` outside every scheduled outage window at `now`?
    pub fn server_available(&self, server: usize, now: u64) -> bool {
        !self
            .outages
            .iter()
            .any(|o| o.server == server && o.active_at(now))
    }

    /// Fault counters for one link.
    pub fn link_faults(&self, a: usize, b: usize) -> LinkFaults {
        self.faults
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or_default()
    }

    /// Fault counters summed over all links.
    pub fn total_faults(&self) -> LinkFaults {
        let mut sum = LinkFaults::default();
        for f in self.faults.values() {
            sum.merge_from(f);
        }
        sum
    }

    /// Sample whether a mail hop from `a` to `b` goes through right now:
    /// false when either end is in an outage window or the message is
    /// dropped by the link's `drop_rate` (the router keeps the message
    /// queued and retries next pass either way).
    pub fn mail_hop_ready(&mut self, a: usize, b: usize) -> bool {
        let now = self.now();
        if !self.server_available(a, now) || !self.server_available(b, now) {
            self.faults.entry((a.min(b), a.max(b))).or_default().outages += 1;
            m().outages.inc();
            return false;
        }
        let spec = self.link_spec(a, b);
        if spec.drop_rate > 0.0 && self.fault_rng.chance(spec.drop_rate) {
            self.faults.entry((a.min(b), a.max(b))).or_default().dropped += 1;
            m().mail_drops.inc();
            return false;
        }
        true
    }

    /// Is a replication pass over `(a, b)` able to start right now?
    /// Skipped passes (partition, outage, flap) are not errors: the
    /// schedule simply fires again at its next slot. Outages and flaps are
    /// accounted in [`link_faults`](Network::link_faults).
    fn pass_can_start(&mut self, a: usize, b: usize) -> bool {
        if !self.link_up(a, b) {
            return false;
        }
        let key = (a.min(b), a.max(b));
        let now = self.now();
        if !self.server_available(a, now) || !self.server_available(b, now) {
            self.faults.entry(key).or_default().outages += 1;
            m().outages.inc();
            return false;
        }
        let spec = self.link_spec(a, b);
        if spec.flap_rate > 0.0 && self.fault_rng.chance(spec.flap_rate) {
            self.faults.entry(key).or_default().flaps += 1;
            m().flaps.inc();
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // time
    // ------------------------------------------------------------------

    /// Advance simulated time by `ticks`, firing due replication passes
    /// and scheduled agents, interleaved in due-time order (agents run
    /// before replication at the same instant, so their output ships in
    /// that pass — matching Domino's agent-manager-then-replicator order).
    pub fn step(&mut self, ticks: u64) -> Result<Vec<ReplicationReport>> {
        let target = self.now() + ticks;
        let mut reports = Vec::new();
        loop {
            let next_repl = self
                .schedules
                .iter()
                .enumerate()
                .filter(|(_, s)| s.next_at <= target)
                .min_by_key(|(_, s)| s.next_at)
                .map(|(i, s)| (s.next_at, i));
            let next_agent = self
                .agent_schedules
                .iter()
                .enumerate()
                .filter(|(_, s)| s.next_at <= target)
                .min_by_key(|(_, s)| s.next_at)
                .map(|(i, s)| (s.next_at, i));

            let run_agent = match (next_agent, next_repl) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((ta, _)), Some((tr, _))) => ta <= tr,
            };
            if run_agent {
                let (next_at, i) = next_agent.expect("checked");
                let (server, db_name) = {
                    let s = &self.agent_schedules[i];
                    (s.server, s.db.clone())
                };
                let now = self.now();
                if next_at > now {
                    self.clock.advance(next_at - now);
                }
                self.agent_schedules[i].next_at += self.agent_schedules[i].interval;
                self.run_agents(server, &db_name)?;
            } else {
                let (next_at, i) = next_repl.expect("checked");
                let (a, b, db_name) = {
                    let s = &self.schedules[i];
                    (s.a, s.b, s.db.clone())
                };
                let now = self.now();
                if next_at > now {
                    self.clock.advance(next_at - now);
                }
                self.schedules[i].next_at += self.schedules[i].interval;
                if !self.pass_can_start(a, b) {
                    continue;
                }
                let (Ok(da), Ok(db_)) = (self.db(a, &db_name), self.db(b, &db_name)) else {
                    continue;
                };
                let mut transport = SimTransport {
                    rng: self.fault_rng.clone(),
                    drop_rate: self.link_spec(a, b).drop_rate,
                    dropped: 0,
                };
                let policy = self.retry;
                let result = self.schedules[i].replicator.sync_with_retry(
                    &da,
                    &db_,
                    &mut transport,
                    &policy,
                );
                let Some((into_a, into_b)) = self.settle_pass(a, b, transport.dropped, result)?
                else {
                    continue;
                };
                self.account(a, b, &into_a);
                self.account(a, b, &into_b);
                // Incoming changes fire OnUpdate agents on the receiver.
                if into_a.changed_anything() {
                    self.run_on_update_agents(a, &db_name)?;
                }
                if into_b.changed_anything() {
                    self.run_on_update_agents(b, &db_name)?;
                }
                reports.push(into_a);
                reports.push(into_b);
            }
        }
        let now = self.now();
        if target > now {
            self.clock.advance(target - now);
        }
        Ok(reports)
    }

    /// Run one immediate replication pass over every link for `db`
    /// (ignores schedules). Returns per-pass reports.
    ///
    /// On a faulty link a pass may be skipped (flap, outage) or abandoned
    /// with the retry policy exhausted — the ad-hoc replicator's resume
    /// cursor survives, so the next round continues where this one
    /// stopped instead of restarting.
    pub fn replicate_all_links(&mut self, db: &str) -> Result<Vec<ReplicationReport>> {
        let links = self.links.clone();
        let mut out = Vec::new();
        for (a, b) in links {
            if !self.pass_can_start(a, b) {
                continue;
            }
            // Use the scheduled replicator for this link when present so
            // history accrues; otherwise a persistent full-compare
            // replicator (no history, but its cursor survives faults).
            let idx = self
                .schedules
                .iter()
                .position(|s| s.a == a && s.b == b && s.db == db);
            let (da, db_) = (self.db(a, db)?, self.db(b, db)?);
            let mut transport = SimTransport {
                rng: self.fault_rng.clone(),
                drop_rate: self.link_spec(a, b).drop_rate,
                dropped: 0,
            };
            let policy = self.retry;
            let result = match idx {
                Some(i) => {
                    self.schedules[i]
                        .replicator
                        .sync_with_retry(&da, &db_, &mut transport, &policy)
                }
                None => {
                    let options = self.adhoc_options.clone();
                    self.adhoc
                        .entry((a, b, db.to_string()))
                        .or_insert_with(|| Replicator::new(options))
                        .sync_with_retry(&da, &db_, &mut transport, &policy)
                }
            };
            let Some((ra, rb)) = self.settle_pass(a, b, transport.dropped, result)? else {
                continue;
            };
            self.account(a, b, &ra);
            self.account(a, b, &rb);
            out.push(ra);
            out.push(rb);
        }
        Ok(out)
    }

    /// Shared epilogue for a possibly-faulty replication pass: account the
    /// transport's drops, swallow a transient failure (the cursor is
    /// parked; the pass resumes at its next slot), surface real errors.
    #[allow(clippy::type_complexity)]
    fn settle_pass(
        &mut self,
        a: usize,
        b: usize,
        dropped: u64,
        result: Result<(
            ReplicationReport,
            ReplicationReport,
            domino_replica::RetryStats,
        )>,
    ) -> Result<Option<(ReplicationReport, ReplicationReport)>> {
        let key = (a.min(b), a.max(b));
        if dropped > 0 {
            self.faults.entry(key).or_default().dropped += dropped;
            m().dropped.add(dropped);
        }
        match result {
            Ok((ra, rb, _stats)) => Ok(Some((ra, rb))),
            Err(e) if e.is_transient() => {
                self.faults.entry(key).or_default().aborted_passes += 1;
                m().aborted.inc();
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn account(&mut self, a: usize, b: usize, report: &ReplicationReport) {
        let key = (a.min(b), a.max(b));
        let spec = self.link_specs.get(&key).copied().unwrap_or_default();
        let t = self.traffic.entry(key).or_default();
        if report.bytes_shipped > 0 {
            t.transfers += 1;
            t.bytes += report.bytes_shipped;
            t.busy_ticks += spec.transfer_ticks(report.bytes_shipped);
        }
    }

    /// Record an arbitrary transfer (used by the mail router).
    pub fn account_bytes(&mut self, a: usize, b: usize, bytes: u64) -> u64 {
        let key = (a.min(b), a.max(b));
        let spec = self.link_specs.get(&key).copied().unwrap_or_default();
        let ticks = spec.transfer_ticks(bytes);
        let t = self.traffic.entry(key).or_default();
        t.transfers += 1;
        t.bytes += bytes;
        t.busy_ticks += ticks;
        ticks
    }

    /// Total traffic over all links.
    pub fn total_traffic(&self) -> LinkTraffic {
        let mut sum = LinkTraffic::default();
        for t in self.traffic.values() {
            sum.transfers += t.transfers;
            sum.bytes += t.bytes;
            sum.busy_ticks += t.busy_ticks;
        }
        sum
    }

    /// Traffic counters for one link.
    pub fn link_traffic(&self, a: usize, b: usize) -> LinkTraffic {
        self.traffic
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // convergence
    // ------------------------------------------------------------------

    /// Are all replicas of `db` identical (same docs, same revisions,
    /// same stubs)?
    pub fn converged(&self, db: &str) -> Result<bool> {
        let replicas = self.replicas(db);
        let Some(first) = replicas.first() else {
            return Ok(true);
        };
        let want = signature(first)?;
        for r in &replicas[1..] {
            if signature(r)? != want {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Replicate all links round-by-round until converged; returns the
    /// number of rounds (Err if `max_rounds` is exceeded).
    pub fn run_until_converged(&mut self, db: &str, max_rounds: usize) -> Result<usize> {
        for round in 0..max_rounds {
            if self.converged(db)? {
                return Ok(round);
            }
            self.replicate_all_links(db)?;
        }
        if self.converged(db)? {
            return Ok(max_rounds);
        }
        Err(DominoError::Replication(format!(
            "{db} did not converge within {max_rounds} rounds"
        )))
    }
}

/// Canonical content signature of a replica: every live note's UNID +
/// current revision fingerprint, plus every stub's UNID + seq.
fn signature(db: &Database) -> Result<Vec<(u128, u64)>> {
    let mut sig = Vec::new();
    for id in db.note_ids(None)? {
        let n = db.open_note(id)?;
        let fp = n
            .revision_at(n.oid.seq)
            .map(|(f, _)| f)
            .unwrap_or(n.oid.seq as u64);
        sig.push((n.unid().0, fp));
    }
    for stub in db.stubs()? {
        sig.push((stub.oid.unid.0, 0x5EB0_0000_0000_0000 | stub.oid.seq as u64));
    }
    sig.sort_unstable();
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::Note;
    use domino_types::Value;

    fn doc(db: &Database, text: &str) {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(text));
        db.save(&mut n).unwrap();
    }

    #[test]
    fn link_spec_transfer_math() {
        let inf = LinkSpec {
            latency: 3,
            bytes_per_tick: 0,
            ..LinkSpec::default()
        };
        assert_eq!(inf.transfer_ticks(1_000_000), 3, "0 = infinite bandwidth");
        let slow = LinkSpec {
            latency: 2,
            bytes_per_tick: 100,
            ..LinkSpec::default()
        };
        assert_eq!(slow.transfer_ticks(0), 2);
        assert_eq!(slow.transfer_ticks(1), 3);
        assert_eq!(slow.transfer_ticks(100), 3);
        assert_eq!(slow.transfer_ticks(101), 4);
    }

    #[test]
    fn server_accessors() {
        let mut net = Network::new(2, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("beta").unwrap();
        net.create_replica_set("alpha").unwrap();
        let s = net.server(0);
        assert_eq!(s.name, "server0");
        assert_eq!(
            s.database_names(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        assert!(s.database("alpha").is_some());
        assert!(s.database("gamma").is_none());
        assert!(net.db(0, "gamma").is_err());
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.topology(), Topology::Mesh);
    }

    #[test]
    fn replica_sets_share_lineage_distinct_instances() {
        let mut net = Network::new(3, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("disc").unwrap();
        let dbs = net.replicas("disc");
        assert_eq!(dbs.len(), 3);
        assert_eq!(dbs[0].replica_id(), dbs[1].replica_id());
        assert_ne!(dbs[0].instance_id(), dbs[1].instance_id());
    }

    #[test]
    fn mesh_converges_in_one_round() {
        let mut net = Network::new(4, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        doc(&net.db(1, "d").unwrap(), "hello");
        assert!(!net.converged("d").unwrap());
        let rounds = net.run_until_converged("d", 10).unwrap();
        assert_eq!(rounds, 1);
    }

    #[test]
    fn chain_needs_more_rounds_than_mesh() {
        // Seed at the chain's tail: links replicate in ascending order
        // within a round, so propagation toward server 0 pays one hop per
        // round (the worst case an administrator schedules around).
        let mut chain = Network::new(6, Topology::Chain, LinkSpec::default(), LogicalClock::new());
        chain.create_replica_set("d").unwrap();
        doc(&chain.db(5, "d").unwrap(), "x");
        let chain_rounds = chain.run_until_converged("d", 20).unwrap();

        let mut mesh = Network::new(6, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        mesh.create_replica_set("d").unwrap();
        doc(&mesh.db(5, "d").unwrap(), "x");
        let mesh_rounds = mesh.run_until_converged("d", 20).unwrap();

        assert!(
            chain_rounds > mesh_rounds,
            "{chain_rounds} vs {mesh_rounds}"
        );
        assert_eq!(mesh_rounds, 1);
    }

    #[test]
    fn scheduled_replication_fires_on_interval() {
        let mut net = Network::new(2, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        net.schedule_replication("d", 100, ReplicationOptions::default());
        doc(&net.db(0, "d").unwrap(), "scheduled");
        // Before the interval: nothing.
        net.step(50).unwrap();
        assert!(!net.converged("d").unwrap());
        // Crossing the interval: replicated.
        net.step(60).unwrap();
        assert!(net.converged("d").unwrap());
    }

    #[test]
    fn partition_blocks_until_healed() {
        let mut net = Network::new(2, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        doc(&net.db(0, "d").unwrap(), "stuck");
        net.partition(0, 1);
        net.replicate_all_links("d").unwrap();
        assert!(!net.converged("d").unwrap());
        net.heal(0, 1);
        net.replicate_all_links("d").unwrap();
        assert!(net.converged("d").unwrap());
    }

    #[test]
    fn traffic_accounted_per_link() {
        let mut net = Network::new(
            2,
            Topology::Mesh,
            LinkSpec {
                latency: 5,
                bytes_per_tick: 10,
                ..LinkSpec::default()
            },
            LogicalClock::new(),
        );
        net.create_replica_set("d").unwrap();
        doc(&net.db(0, "d").unwrap(), "bytes!");
        net.replicate_all_links("d").unwrap();
        let t = net.link_traffic(0, 1);
        assert!(t.bytes > 0);
        assert!(t.busy_ticks >= 5 + t.bytes / 10);
        assert_eq!(net.total_traffic(), t);
    }

    #[test]
    fn scheduled_agents_run_and_results_replicate() {
        use domino_core::{save_agent, AgentDesign};
        let mut net = Network::new(2, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        net.schedule_replication("d", 100, domino_replica::ReplicationOptions::default());
        net.schedule_agents(0, "d", 100);

        let db0 = net.db(0, "d").unwrap();
        save_agent(
            &db0,
            &AgentDesign::new(
                "stamp",
                r#"SELECT Form = "Memo" & Stamped != "yes"; FIELD Stamped := "yes""#,
            )
            .unwrap()
            .scheduled(100),
        )
        .unwrap();
        // A document created on server 1: it must replicate to 0, get
        // stamped by the agent there, and the stamp must replicate back.
        let mut n = domino_core::Note::document("Memo");
        net.db(1, "d").unwrap().save(&mut n).unwrap();
        net.step(500).unwrap();
        let stamped = net
            .db(1, "d")
            .unwrap()
            .open_by_unid(n.unid())
            .unwrap()
            .get_text("Stamped");
        assert_eq!(stamped.as_deref(), Some("yes"));
    }

    #[test]
    fn on_update_agents_fire_after_replication_delivers() {
        use domino_core::{save_agent, AgentDesign};
        let mut net = Network::new(2, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        net.schedule_replication("d", 100, domino_replica::ReplicationOptions::default());
        // Server 1 reacts to arriving documents.
        save_agent(
            &net.db(1, "d").unwrap(),
            &AgentDesign::new(
                "greeter",
                r#"SELECT Form = "Memo" & Greeted != "yes"; FIELD Greeted := "yes""#,
            )
            .unwrap()
            .on_update(),
        )
        .unwrap();
        let mut n = domino_core::Note::document("Memo");
        net.db(0, "d").unwrap().save(&mut n).unwrap();
        net.step(150).unwrap();
        assert_eq!(
            net.db(1, "d")
                .unwrap()
                .open_by_unid(n.unid())
                .unwrap()
                .get_text("Greeted")
                .as_deref(),
            Some("yes"),
            "agent fired on arrival, no schedule needed"
        );
    }

    #[test]
    fn lossy_link_converges_with_retry_but_not_without() {
        use domino_replica::RetryPolicy;
        let seed = 0xE14;
        let drop = 0.30;
        let budget = 2; // replication rounds each side gets

        let run = |policy: RetryPolicy| {
            let mut net = Network::new(
                2,
                Topology::Mesh,
                LinkSpec::default().with_drop_rate(drop),
                LogicalClock::new(),
            );
            net.set_fault_seed(seed);
            net.set_retry_policy(policy);
            net.create_replica_set("d").unwrap();
            for i in 0..320 {
                doc(&net.db(0, "d").unwrap(), &format!("memo {i}"));
            }
            for _ in 0..budget {
                net.replicate_all_links("d").unwrap();
            }
            (net.converged("d").unwrap(), net.total_faults())
        };

        let (with_retry, faults) = run(RetryPolicy::standard());
        assert!(with_retry, "retry rides out a 20% drop rate");
        assert!(faults.dropped > 0, "faults really were injected");

        let (without, faults) = run(RetryPolicy::none());
        assert!(!without, "zero retry cannot finish within the same budget");
        assert!(faults.aborted_passes > 0, "passes were abandoned");
    }

    #[test]
    fn aborted_pass_resumes_instead_of_restarting() {
        // Even with zero retry, the ad-hoc replicator's cursor survives
        // the aborted pass: enough rounds always converge.
        let mut net = Network::new(
            2,
            Topology::Mesh,
            LinkSpec::default().with_drop_rate(0.5),
            LogicalClock::new(),
        );
        net.set_fault_seed(99);
        net.create_replica_set("d").unwrap();
        for i in 0..80 {
            doc(&net.db(0, "d").unwrap(), &format!("memo {i}"));
        }
        let rounds = net.run_until_converged("d", 200).unwrap();
        assert!(rounds > 1, "a 50% drop rate forced resumption");
        assert!(net.total_faults().dropped > 0);
    }

    #[test]
    fn outage_window_blocks_scheduled_passes() {
        let mut net = Network::new(2, Topology::Mesh, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        net.schedule_replication("d", 100, ReplicationOptions::default());
        net.schedule_outage(1, 0, 250);
        doc(&net.db(0, "d").unwrap(), "patience");
        // Passes at t=100 and t=200 hit the outage window.
        net.step(220).unwrap();
        assert!(!net.converged("d").unwrap());
        assert_eq!(net.link_faults(0, 1).outages, 2);
        // The pass at t=300 is past the window.
        net.step(100).unwrap();
        assert!(net.converged("d").unwrap());
    }

    #[test]
    fn flapping_link_skips_passes_and_accounts_them() {
        let mut net = Network::new(
            2,
            Topology::Mesh,
            LinkSpec::default().with_flap_rate(1.0),
            LogicalClock::new(),
        );
        net.create_replica_set("d").unwrap();
        doc(&net.db(0, "d").unwrap(), "flappy");
        net.replicate_all_links("d").unwrap();
        net.replicate_all_links("d").unwrap();
        assert!(!net.converged("d").unwrap(), "every pass flapped away");
        assert_eq!(net.link_faults(0, 1).flaps, 2);
        // Calm the link and the backlog drains.
        net.set_all_link_specs(LinkSpec::default());
        net.replicate_all_links("d").unwrap();
        assert!(net.converged("d").unwrap());
    }

    #[test]
    fn convergence_includes_deletions() {
        let mut net = Network::new(3, Topology::Ring, LinkSpec::default(), LogicalClock::new());
        net.create_replica_set("d").unwrap();
        let db0 = net.db(0, "d").unwrap();
        doc(&db0, "temp");
        net.run_until_converged("d", 10).unwrap();
        let id = net.db(2, "d").unwrap().note_ids(None).unwrap()[0];
        net.db(2, "d").unwrap().delete(id).unwrap();
        assert!(!net.converged("d").unwrap());
        net.run_until_converged("d", 10).unwrap();
        for r in net.replicas("d") {
            assert_eq!(r.document_count().unwrap(), 0);
        }
    }
}
