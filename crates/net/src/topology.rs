//! Topologies: which servers talk to which.
//!
//! Domino deployments schedule replication along an administrator-chosen
//! topology — classically hub-and-spoke; rings and meshes trade bandwidth
//! for convergence latency (experiment E6). Links are bidirectional.

use std::collections::VecDeque;

/// A named topology over `n` servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Server 0 is the hub; all others replicate only with it.
    HubSpoke,
    /// Each server replicates with its two ring neighbours.
    Ring,
    /// Every pair replicates directly.
    Mesh,
    /// A line: 0-1-2-...-n.
    Chain,
}

impl Topology {
    /// Every topology, for experiments that sweep them.
    pub const ALL: [Topology; 4] = [
        Topology::HubSpoke,
        Topology::Ring,
        Topology::Mesh,
        Topology::Chain,
    ];

    /// Stable lower-case label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Topology::HubSpoke => "hub-spoke",
            Topology::Ring => "ring",
            Topology::Mesh => "mesh",
            Topology::Chain => "chain",
        }
    }

    /// Bidirectional links `(a, b)` with `a < b`.
    pub fn links(self, n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        match self {
            Topology::HubSpoke => {
                for i in 1..n {
                    out.push((0, i));
                }
            }
            Topology::Ring => {
                if n == 2 {
                    out.push((0, 1));
                } else {
                    for i in 0..n {
                        let j = (i + 1) % n;
                        out.push((i.min(j), i.max(j)));
                    }
                    out.sort_unstable();
                    out.dedup();
                }
            }
            Topology::Mesh => {
                for i in 0..n {
                    for j in i + 1..n {
                        out.push((i, j));
                    }
                }
            }
            Topology::Chain => {
                for i in 1..n {
                    out.push((i - 1, i));
                }
            }
        }
        out
    }

    /// Network diameter in hops (longest shortest path) — the lower bound
    /// on full-propagation rounds.
    pub fn diameter(self, n: usize) -> usize {
        let routes = all_pairs_next_hop(n, &self.links(n));
        let mut max = 0;
        #[allow(clippy::needless_range_loop)]
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let mut hops = 0;
                let mut cur = a;
                while cur != b {
                    cur = routes[cur][b].expect("connected topology");
                    hops += 1;
                }
                max = max.max(hops);
            }
        }
        max
    }
}

/// BFS all-pairs next-hop table: `routes[a][b]` = the neighbour of `a` on a
/// shortest path to `b` (None when a == b or unreachable).
pub fn all_pairs_next_hop(n: usize, links: &[(usize, usize)]) -> Vec<Vec<Option<usize>>> {
    let mut adj = vec![Vec::new(); n];
    for (a, b) in links {
        adj[*a].push(*b);
        adj[*b].push(*a);
    }
    for l in &mut adj {
        l.sort_unstable();
    }
    let mut routes = vec![vec![None; n]; n];
    for dst in 0..n {
        // BFS backwards from dst: predecessor step gives next hops.
        let mut dist = vec![usize::MAX; n];
        let mut q = VecDeque::new();
        dist[dst] = 0;
        q.push_back(dst);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    routes[v][dst] = Some(u);
                    q.push_back(v);
                }
            }
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_counts() {
        assert_eq!(Topology::HubSpoke.links(5).len(), 4);
        assert_eq!(Topology::Ring.links(5).len(), 5);
        assert_eq!(Topology::Ring.links(2).len(), 1);
        assert_eq!(Topology::Mesh.links(5).len(), 10);
        assert_eq!(Topology::Chain.links(5).len(), 4);
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::Mesh.diameter(6), 1);
        assert_eq!(Topology::HubSpoke.diameter(6), 2);
        assert_eq!(Topology::Chain.diameter(6), 5);
        assert_eq!(Topology::Ring.diameter(6), 3);
    }

    #[test]
    fn next_hop_routes_follow_shortest_paths() {
        let links = Topology::Chain.links(4); // 0-1-2-3
        let routes = all_pairs_next_hop(4, &links);
        assert_eq!(routes[0][3], Some(1));
        assert_eq!(routes[1][3], Some(2));
        assert_eq!(routes[3][0], Some(2));
        assert_eq!(routes[2][2], None);
    }

    #[test]
    fn hub_routes_via_hub() {
        let links = Topology::HubSpoke.links(4);
        let routes = all_pairs_next_hop(4, &links);
        assert_eq!(routes[1][2], Some(0), "spoke to spoke goes through hub");
        assert_eq!(routes[1][0], Some(0));
    }
}
