//! The TCP front door: a real `std::net` HTTP/1.1 listener in front of
//! [`DominoServer`].
//!
//! Connection model (Domino's, scaled down): an accept thread admits up
//! to [`HttpConfig::max_connections`] concurrent connections — beyond
//! that it answers `503` on the spot and closes, the connection-level
//! twin of the worker pool's load shed. Each admitted connection gets a
//! thread that only does I/O: it feeds bytes to an incremental
//! [`HttpParser`] and hands every complete
//! request to [`DominoServer::serve`], which is the *bounded* worker-pool
//! front door — a full request queue still answers `503`, exactly as for
//! in-process callers. Keep-alive connections are closed after
//! [`HttpConfig::idle_timeout`] without a byte; a started request must
//! complete its I/O within [`HttpConfig::io_timeout`].
//!
//! Graceful drain ([`HttpListener::drain`], console `tell http quit`):
//! stop accepting, let in-flight requests finish, close idle keep-alive
//! connections, then wait for the worker pool's queue to empty
//! ([`DominoServer::drain`]). Accepted work is never dropped.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use domino_obs as obs;
use domino_server::{DominoServer, Response};
use domino_types::{DominoError, Result};

use crate::parser::{HttpParser, ParseError, ParserLimits};

struct Metrics {
    accepted: &'static obs::Counter,
    active: &'static obs::Gauge,
    rejected: &'static obs::Counter,
    requests: &'static obs::Counter,
    bad_requests: &'static obs::Counter,
    drained: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        accepted: obs::counter("Http.Conn.Accepted"),
        active: obs::gauge("Http.Conn.Active"),
        rejected: obs::counter("Http.Conn.Rejected"),
        requests: obs::counter("Http.Conn.Requests"),
        bad_requests: obs::counter("Http.Conn.BadRequests"),
        drained: obs::counter("Http.Conn.Drained"),
    })
}

/// How often blocked reads wake to check deadlines and the stop flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Sizing and timeout knobs for the listener (OPERATIONS.md §11).
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// `host:port` to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Concurrent connections admitted before 503-and-close (the
    /// connection-level load shed; Domino: `Server_MaxSessions`).
    pub max_connections: usize,
    /// Close a keep-alive connection after this long without a byte.
    pub idle_timeout: Duration,
    /// A request that started must finish its socket I/O within this.
    pub io_timeout: Duration,
    /// Request head/body size caps (`400`/`413` beyond them).
    pub limits: ParserLimits,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 256,
            idle_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            limits: ParserLimits::default(),
        }
    }
}

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections open when the drain began.
    pub connections_at_start: usize,
    /// Connections still open when the wait gave up (0 = clean drain).
    pub remaining: usize,
}

struct HttpShared {
    server: DominoServer,
    config: HttpConfig,
    stop: AtomicBool,
    active: Mutex<usize>,
    all_idle: Condvar,
}

impl HttpShared {
    fn active(&self) -> usize {
        *self.active.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The running HTTP listener task.
pub struct HttpListener {
    addr: std::net::SocketAddr,
    shared: Arc<HttpShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl HttpListener {
    /// Bind and start serving `server` at `config.addr`.
    pub fn start(server: DominoServer, config: HttpConfig) -> Result<HttpListener> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| DominoError::Unavailable(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DominoError::Unavailable(format!("local_addr: {e}")))?;
        let shared = Arc::new(HttpShared {
            server,
            config,
            stop: AtomicBool::new(false),
            active: Mutex::new(0),
            all_idle: Condvar::new(),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = shared.clone();
        let accept_conns = conn_threads.clone();
        let accept_thread = std::thread::Builder::new()
            .name("http-listener".into())
            .spawn(move || accept_loop(&listener, addr, &accept_shared, &accept_conns))
            .map_err(|e| DominoError::Unavailable(format!("spawn http-listener: {e}")))?;
        Ok(HttpListener {
            addr,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
            conn_threads,
        })
    }

    /// The bound address, e.g. `127.0.0.1:41237`.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.shared.active()
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// close idle keep-alive connections, then drain the worker pool.
    /// Waits up to `timeout` for connections to finish; idempotent.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        let connections_at_start = self.shared.active();
        if !self.shared.stop.swap(true, Ordering::SeqCst) {
            // First drain: wake the blocking accept and retire it.
            let _ = TcpStream::connect(self.addr);
            if let Some(t) = self
                .accept_thread
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
            {
                let _ = t.join();
            }
        }
        let deadline = Instant::now() + timeout;
        let mut active = self.shared.active.lock().unwrap_or_else(|p| p.into_inner());
        while *active > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (g, _) = self
                .shared
                .all_idle
                .wait_timeout(active, left)
                .unwrap_or_else(|p| p.into_inner());
            active = g;
        }
        let remaining = *active;
        drop(active);
        if remaining == 0 {
            for t in
                std::mem::take(&mut *self.conn_threads.lock().unwrap_or_else(|p| p.into_inner()))
            {
                let _ = t.join();
            }
            // Finish whatever the connections queued before joining is
            // observable: the pool's explicit drain.
            self.shared.server.drain();
        }
        obs::emit(
            obs::Event::new(obs::EventKind::Http, obs::Severity::Normal, "Http.Drain")
                .with("connections", connections_at_start as u64)
                .with("remaining", remaining as u64),
        );
        DrainReport {
            connections_at_start,
            remaining,
        }
    }
}

impl Drop for HttpListener {
    fn drop(&mut self) {
        self.drain(Duration::from_secs(10));
    }
}

fn accept_loop(
    listener: &TcpListener,
    addr: std::net::SocketAddr,
    shared: &Arc<HttpShared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let task = obs::register_task("http-listener", "HTTP listener");
    task.set_status(&format!("Listen http://{addr}/"));
    obs::emit(
        obs::Event::new(obs::EventKind::Http, obs::Severity::Normal, "Http.Listen")
            .with("addr", addr.to_string()),
    );
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        task.beat();
        {
            let mut active = shared.active.lock().unwrap_or_else(|p| p.into_inner());
            if *active >= shared.config.max_connections {
                drop(active);
                m().rejected.inc();
                obs::emit(
                    obs::Event::new(
                        obs::EventKind::Http,
                        obs::Severity::Warning,
                        "Http.Conn.Rejected",
                    )
                    .with("max", shared.config.max_connections as u64),
                );
                reject_overloaded(stream);
                continue;
            }
            *active += 1;
        }
        m().accepted.inc();
        m().active.add(1);
        let conn_shared = shared.clone();
        match std::thread::Builder::new()
            .name("http-conn".into())
            .spawn(move || {
                let outcome = serve_http_conn(stream, &conn_shared);
                m().active.add(-1);
                let mut active = conn_shared.active.lock().unwrap_or_else(|p| p.into_inner());
                *active -= 1;
                if *active == 0 {
                    conn_shared.all_idle.notify_all();
                }
                drop(active);
                obs::emit(
                    obs::Event::new(
                        obs::EventKind::Http,
                        obs::Severity::Info,
                        "Http.Conn.Closed",
                    )
                    .with("outcome", outcome),
                );
            }) {
            Ok(h) => conns.lock().unwrap_or_else(|p| p.into_inner()).push(h),
            Err(_) => {
                // Could not spawn: undo the admission.
                m().active.add(-1);
                let mut active = shared.active.lock().unwrap_or_else(|p| p.into_inner());
                *active -= 1;
                if *active == 0 {
                    shared.all_idle.notify_all();
                }
            }
        }
    }
    task.set_status("Quit");
}

/// Over the connection cap: answer 503 without admitting the socket.
fn reject_overloaded(mut stream: TcpStream) {
    let body = "server connection limit reached - retry later";
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}

/// One admitted connection: parse → serve → respond until close.
/// Returns a short outcome label for the close event.
fn serve_http_conn(mut stream: TcpStream, shared: &HttpShared) -> &'static str {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let mut parser = HttpParser::new(shared.config.limits);
    let mut buf = [0u8; 8192];
    let mut last_activity = Instant::now();
    let mut request_since: Option<Instant> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) && request_since.is_none() {
            m().drained.inc();
            return "drained";
        }
        match request_since {
            Some(t) if t.elapsed() > shared.config.io_timeout => return "request deadline",
            None if last_activity.elapsed() > shared.config.idle_timeout => return "idle timeout",
            _ => {}
        }
        let fed = match stream.read(&mut buf) {
            Ok(0) => return "peer closed",
            Ok(n) => &buf[..n],
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return "read error",
        };
        last_activity = Instant::now();
        let mut chunk = fed;
        loop {
            match parser.feed(chunk) {
                Ok(Some(parsed)) => {
                    chunk = &[];
                    m().requests.inc();
                    let resp = shared.server.serve(parsed.request);
                    // Honour the client's keep-alive wish unless a drain
                    // is in progress — then close as soon as we're done.
                    let keep = parsed.keep_alive && !shared.stop.load(Ordering::SeqCst);
                    if write_response(&mut stream, &resp, keep).is_err() {
                        return "write error";
                    }
                    request_since = None;
                    last_activity = Instant::now();
                    if !keep {
                        return "closed";
                    }
                }
                Ok(None) => {
                    request_since = if parser.buffered() > 0 {
                        Some(request_since.unwrap_or_else(Instant::now))
                    } else {
                        None
                    };
                    break;
                }
                Err(e) => {
                    m().bad_requests.inc();
                    obs::emit(
                        obs::Event::new(
                            obs::EventKind::Http,
                            obs::Severity::Warning,
                            "Http.Conn.BadRequest",
                        )
                        .with("status", u64::from(e.status_code()))
                        .with("detail", e.detail().to_string()),
                    );
                    let _ = write_parse_error(&mut stream, &e);
                    return "bad request";
                }
            }
        }
    }
}

/// Serialize a typed [`Response`] back onto the wire. The
/// `X-Command-Cache` header surfaces the command-cache diagnostic the
/// in-process `Response` carries as a boolean.
fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
         X-Command-Cache: {}\r\nConnection: {}\r\n\r\n",
        resp.status.code(),
        resp.status.reason(),
        resp.content_type,
        resp.body.len(),
        if resp.from_cache { "hit" } else { "miss" },
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// A request the parser refused never reaches the executor; answer the
/// `400`/`413` directly and close.
fn write_parse_error(stream: &mut TcpStream, e: &ParseError) -> std::io::Result<()> {
    let body = format!("{} {}: {}\n", e.status_code(), e.reason(), e.detail());
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        e.status_code(),
        e.reason(),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
