//! # domino-netio — real sockets for the Domino reproduction
//!
//! The engine underneath (`domino-server`, `domino-replica`) is
//! transport-free by design: requests and replication messages are typed
//! values, so every behaviour is testable in-process. This crate is the
//! missing outer layer — the part of Domino that actually owns port 80
//! and port 1352:
//!
//! * [`HttpListener`] — a `std::net::TcpListener` front for
//!   [`DominoServer`](domino_server::DominoServer): incremental HTTP/1.1
//!   parsing ([`HttpParser`]), keep-alive with idle timeout, per-request
//!   I/O deadlines, a connection cap with on-the-spot `503`, and a
//!   graceful drain wired to the console (`tell http quit`).
//! * [`SocketTransport`] / [`ReplicaListener`] — the NRPC stand-in: the
//!   length-prefixed checksummed framing of
//!   [`domino_types::wire`] on a real TCP connection, as a second
//!   `Transport` impl, so `pull_via`/`pull_with_retry` and their
//!   interrupt/resume guarantees run unchanged over a socket.
//!
//! Both faces speak to the *same* engine as in-process callers — the
//! worker-pool load shed, the command cache, ACL checks, and the pull
//! cursor behave identically whichever door a request came through
//! (DESIGN.md §"Transport equivalence"), and
//! `tests/prop_faulty_replication.rs` proves it property-by-property.

#![deny(missing_docs)]

pub mod httpd;
pub mod parser;
pub mod repl;

pub use httpd::{DrainReport, HttpConfig, HttpListener};
pub use parser::{
    base64_decode, base64_encode, HttpParser, ParseError, ParsedRequest, ParserLimits,
};
pub use repl::{ReplicaListener, SocketTransport};
