//! Incremental HTTP/1.1 request parsing.
//!
//! A socket hands the listener bytes at arbitrary boundaries; the
//! [`HttpParser`] is a resumable state machine that accumulates them
//! until one full request — request line, headers, and a
//! `Content-Length` body — is available, then yields a typed
//! [`domino_server::Request`] plus its keep-alive verdict. Percent
//! decoding of the target is *not* done here: that stays delegated to
//! the existing URL-command parser (`domino_server::url`), exactly as
//! for in-process requests, so both front doors share one grammar.
//!
//! Robustness contract (pinned by `tests/prop_http_parse.rs`): any byte
//! stream either yields requests or a [`ParseError`] mapping to `400`
//! or `413` — never a panic — and buffered memory is bounded by the
//! configured head/body caps no matter what arrives.

use domino_server::{Credentials, Method, Request};

/// Parser limits (defaults mirror Domino's `HTTP.MaxHeaderSize` spirit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserLimits {
    /// Bytes the request line + headers may occupy before `413`.
    pub max_head_bytes: usize,
    /// Bytes a request body may declare before `413`.
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> ParserLimits {
        ParserLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed, with its HTTP answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request — answer `400 Bad Request`.
    Bad(String),
    /// Head or body exceeds the configured cap — answer
    /// `413 Content Too Large`.
    TooLarge(String),
}

impl ParseError {
    /// The status code this error maps to.
    pub fn status_code(&self) -> u16 {
        match self {
            ParseError::Bad(_) => 400,
            ParseError::TooLarge(_) => 413,
        }
    }

    /// The canonical reason phrase for [`ParseError::status_code`].
    pub fn reason(&self) -> &'static str {
        match self {
            ParseError::Bad(_) => "Bad Request",
            ParseError::TooLarge(_) => "Content Too Large",
        }
    }

    /// Human-readable detail.
    pub fn detail(&self) -> &str {
        match self {
            ParseError::Bad(m) | ParseError::TooLarge(m) => m,
        }
    }
}

fn bad(msg: impl Into<String>) -> ParseError {
    ParseError::Bad(msg.into())
}

/// One fully parsed request, ready for the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The typed request the in-process executor consumes.
    pub request: Request,
    /// May the connection carry another request after this one?
    pub keep_alive: bool,
}

#[derive(Debug)]
enum Phase {
    /// Accumulating up to the blank line.
    Head,
    /// Head parsed; waiting for `need` body bytes.
    Body { head: Head, need: usize },
}

#[derive(Debug)]
struct Head {
    method: Method,
    target: String,
    credentials: Credentials,
    keep_alive: bool,
}

/// Resumable HTTP/1.1 request parser (one per connection).
#[derive(Debug)]
pub struct HttpParser {
    limits: ParserLimits,
    buf: Vec<u8>,
    phase: Phase,
}

impl HttpParser {
    /// A fresh parser with the given limits.
    pub fn new(limits: ParserLimits) -> HttpParser {
        HttpParser {
            limits,
            buf: Vec::new(),
            phase: Phase::Head,
        }
    }

    /// Bytes buffered awaiting completion (bounded by the limits).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feed bytes read from the socket; returns a complete request as
    /// soon as one is available. Call with an empty slice to re-poll
    /// (pipelined requests may already be buffered).
    ///
    /// After an `Err` the connection must be closed: the stream position
    /// is no longer trustworthy.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<ParsedRequest>, ParseError> {
        self.buf.extend_from_slice(bytes);
        loop {
            match &self.phase {
                Phase::Head => {
                    let Some(head_end) = find_blank_line(&self.buf) else {
                        if self.buf.len() > self.limits.max_head_bytes {
                            return Err(ParseError::TooLarge(format!(
                                "request head exceeds {} bytes",
                                self.limits.max_head_bytes
                            )));
                        }
                        return Ok(None);
                    };
                    if head_end > self.limits.max_head_bytes {
                        return Err(ParseError::TooLarge(format!(
                            "request head exceeds {} bytes",
                            self.limits.max_head_bytes
                        )));
                    }
                    let head_bytes = &self.buf[..head_end];
                    let (head, content_length) = parse_head(head_bytes, &self.limits)?;
                    self.buf.drain(..head_end + 4);
                    self.phase = Phase::Body {
                        head,
                        need: content_length,
                    };
                }
                Phase::Body { need, .. } => {
                    if self.buf.len() < *need {
                        return Ok(None);
                    }
                    let need = *need;
                    let Phase::Body { head, .. } = std::mem::replace(&mut self.phase, Phase::Head)
                    else {
                        unreachable!("phase checked above");
                    };
                    let body_bytes: Vec<u8> = self.buf.drain(..need).collect();
                    let body = String::from_utf8(body_bytes)
                        .map_err(|_| bad("request body is not UTF-8"))?;
                    return Ok(Some(ParsedRequest {
                        request: Request {
                            method: head.method,
                            target: head.target,
                            credentials: head.credentials,
                            body,
                        },
                        keep_alive: head.keep_alive,
                    }));
                }
            }
        }
    }
}

/// Offset of the `\r\n\r\n` terminating the head, if present.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the head (everything before the blank line) into its typed
/// parts plus the declared body length.
fn parse_head(head: &[u8], limits: &ParserLimits) -> Result<(Head, usize), ParseError> {
    let text = std::str::from_utf8(head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(bad(format!(
                "malformed request line {request_line:?} (want METHOD SP TARGET SP VERSION)"
            )))
        }
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(bad(format!("unsupported method {other:?}"))),
    };
    let default_keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(bad(format!("unsupported protocol version {other:?}"))),
    };
    if !target.starts_with('/') {
        return Err(bad(format!("request target {target:?} must start with /")));
    }

    let mut content_length = 0usize;
    let mut keep_alive = default_keep_alive;
    let mut credentials = Credentials::Anonymous;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') || name.chars().any(|c| c.is_control()) {
            return Err(bad(format!("malformed header name {name:?}")));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: u64 = value
                .parse()
                .map_err(|_| bad(format!("Content-Length {value:?} is not a number")))?;
            if n > limits.max_body_bytes as u64 {
                return Err(ParseError::TooLarge(format!(
                    "declared body of {n} bytes exceeds cap of {}",
                    limits.max_body_bytes
                )));
            }
            content_length = n as usize;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("authorization") {
            credentials = parse_basic_auth(value)?;
        }
    }
    Ok((
        Head {
            method,
            target: target.to_string(),
            credentials,
            keep_alive,
        },
        content_length,
    ))
}

/// `Authorization: Basic base64(user:password)` → typed credentials.
fn parse_basic_auth(value: &str) -> Result<Credentials, ParseError> {
    let Some(encoded) = value
        .strip_prefix("Basic ")
        .or_else(|| value.strip_prefix("basic "))
    else {
        return Err(bad("only Basic authorization is supported"));
    };
    let decoded = base64_decode(encoded.trim())
        .ok_or_else(|| bad("Authorization value is not valid base64"))?;
    let text =
        String::from_utf8(decoded).map_err(|_| bad("Authorization credentials are not UTF-8"))?;
    let Some((user, password)) = text.split_once(':') else {
        return Err(bad("Authorization credentials lack a ':' separator"));
    };
    Ok(Credentials::Basic {
        user: user.to_string(),
        password: password.to_string(),
    })
}

/// Encode bytes as standard base64 (for clients building an
/// `Authorization` header — the example and tests use this).
pub fn base64_encode(bytes: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64 (padding optional). `None` on any invalid
/// character or truncated quantum.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let stripped: &[u8] = s.as_bytes();
    let stripped = match stripped {
        [rest @ .., b'=', b'='] => rest,
        [rest @ .., b'='] => rest,
        rest => rest,
    };
    let mut out = Vec::with_capacity(stripped.len() * 3 / 4);
    for quantum in stripped.chunks(4) {
        if quantum.len() == 1 {
            return None; // a lone 6 bits cannot encode a byte
        }
        let mut acc = 0u32;
        for (i, c) in quantum.iter().enumerate() {
            acc |= val(*c)? << (18 - 6 * i);
        }
        out.push((acc >> 16) as u8);
        if quantum.len() > 2 {
            out.push((acc >> 8) as u8);
        }
        if quantum.len() > 3 {
            out.push(acc as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_whole(raw: &str) -> Result<Option<ParsedRequest>, ParseError> {
        HttpParser::new(ParserLimits::default()).feed(raw.as_bytes())
    }

    #[test]
    fn parses_a_simple_get() {
        let got = parse_whole("GET /db.nsf/v?OpenView HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(got.request.method, Method::Get);
        assert_eq!(got.request.target, "/db.nsf/v?OpenView");
        assert_eq!(got.request.credentials, Credentials::Anonymous);
        assert!(got.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body_and_basic_auth() {
        let auth = base64_encode(b"alice:pw-a");
        let raw = format!(
            "POST /db.nsf/Topic?CreateDocument HTTP/1.1\r\nAuthorization: Basic {auth}\r\n\
             Content-Length: 10\r\nConnection: close\r\n\r\nSubject=hi"
        );
        let got = parse_whole(&raw).unwrap().unwrap();
        assert_eq!(got.request.method, Method::Post);
        assert_eq!(got.request.body, "Subject=hi");
        assert_eq!(
            got.request.credentials,
            Credentials::Basic {
                user: "alice".into(),
                password: "pw-a".into()
            }
        );
        assert!(!got.keep_alive);
    }

    #[test]
    fn resumes_across_arbitrary_splits() {
        let raw = b"GET /a.nsf/v?OpenView HTTP/1.1\r\nHost: h\r\n\r\n";
        for split in 1..raw.len() - 1 {
            let mut p = HttpParser::new(ParserLimits::default());
            assert_eq!(p.feed(&raw[..split]).unwrap(), None, "split at {split}");
            let got = p.feed(&raw[split..]).unwrap().unwrap();
            assert_eq!(got.request.target, "/a.nsf/v?OpenView");
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let raw = b"GET /a.nsf/v?OpenView HTTP/1.1\r\n\r\nGET /b.nsf/w?OpenView HTTP/1.1\r\n\r\n";
        let mut p = HttpParser::new(ParserLimits::default());
        let first = p.feed(raw).unwrap().unwrap();
        assert_eq!(first.request.target, "/a.nsf/v?OpenView");
        let second = p.feed(&[]).unwrap().unwrap();
        assert_eq!(second.request.target, "/b.nsf/w?OpenView");
        assert_eq!(p.feed(&[]).unwrap(), None);
    }

    #[test]
    fn malformed_inputs_are_400() {
        for raw in [
            "FLORP /a.nsf HTTP/1.1\r\n\r\n",
            "GET /a.nsf HTTP/2.0\r\n\r\n",
            "GET/a.nsf HTTP/1.1\r\n\r\n",
            "GET /a.nsf HTTP/1.1 extra\r\n\r\n",
            "GET a.nsf HTTP/1.1\r\n\r\n",
            "GET /a.nsf HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n",
            "GET /a.nsf HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            "GET /a.nsf HTTP/1.1\r\nAuthorization: Basic !!!\r\n\r\n",
            "GET /a.nsf HTTP/1.1\r\nAuthorization: Bearer tok\r\n\r\n",
        ] {
            match parse_whole(raw) {
                Err(e) => assert_eq!(e.status_code(), 400, "{raw:?} -> {e:?}"),
                other => panic!("{raw:?} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_head_and_body_are_413() {
        let limits = ParserLimits {
            max_head_bytes: 128,
            max_body_bytes: 64,
        };
        // A header that never ends.
        let mut p = HttpParser::new(limits);
        let mut err = None;
        for _ in 0..64 {
            match p.feed(b"X-Filler: yes\r\n") {
                Ok(None) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
                Ok(Some(r)) => panic!("unterminated head parsed: {r:?}"),
            }
        }
        let e = err.expect("oversized head must error");
        assert_eq!(e.status_code(), 413);
        assert!(p.buffered() <= 128 + 16, "memory must stay bounded");

        // A declared body over the cap errors before any body byte.
        let mut p = HttpParser::new(limits);
        let e = p
            .feed(b"POST /a.nsf?CreateDocument HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
            .unwrap_err();
        assert_eq!(e.status_code(), 413);
    }

    #[test]
    fn base64_roundtrip_and_rejects() {
        for s in ["", "a", "ab", "abc", "abcd", "alice:pw", "☃ unicode"] {
            assert_eq!(
                base64_decode(&base64_encode(s.as_bytes())).unwrap(),
                s.as_bytes()
            );
        }
        assert!(base64_decode("!!!!").is_none());
        assert!(base64_decode("A").is_none());
    }
}
