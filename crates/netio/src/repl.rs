//! Replication over a real socket: the NRPC stand-in port 1352.
//!
//! Two halves:
//!
//! * [`ReplicaListener`] — the server side. It accepts TCP connections,
//!   answers the [`Frame::hello`] handshake, and acks every
//!   [`Opcode::Deliver`] frame (or nacks scripted ones — see
//!   [`ReplicaListener::fail_deliveries`], the socket analogue of
//!   `ScriptedTransport`).
//! * [`SocketTransport`] — the client side: a second `Transport` impl,
//!   so `Replicator::pull_via`/`pull_with_retry` run *unchanged* over a
//!   real connection. Every transport fault (refused connect, reset,
//!   timeout, corrupt frame, nack) maps to `DominoError::Unavailable`,
//!   the transient error the pull cursor parks on — exactly the contract
//!   the simulated transports implement. The next `deliver` call
//!   reconnects and re-handshakes transparently.
//!
//! Note application stays in-process (the `Replicator` holds both
//! databases); the socket carries the *message round-trips* — one
//! `Deliver`/`Ack` exchange per negotiation round or candidate batch,
//! the unit `Transport::deliver` models. That is what makes the PR 4
//! interrupt/resume proptests runnable over both transports: the fault
//! points line up one-to-one.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use domino_obs as obs;
use domino_replica::Transport;
use domino_types::{DominoError, Frame, FrameDecoder, Opcode, Result};

struct Metrics {
    accepted: &'static obs::Counter,
    active: &'static obs::Gauge,
    frames: &'static obs::Counter,
    delivered: &'static obs::Counter,
    nacked: &'static obs::Counter,
    dropped: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        accepted: obs::counter("Net.Conn.Accepted"),
        active: obs::gauge("Net.Conn.Active"),
        frames: obs::counter("Net.Conn.Frames"),
        delivered: obs::counter("Net.Conn.Delivered"),
        nacked: obs::counter("Net.Conn.Nacked"),
        dropped: obs::counter("Net.Conn.Dropped"),
    })
}

/// How long socket reads/writes may stall before the peer is considered
/// gone (both sides use it as their I/O deadline).
const IO_DEADLINE: Duration = Duration::from_secs(5);

/// The poll tick idle server connections use to notice a shutdown.
const POLL_TICK: Duration = Duration::from_millis(25);

struct ListenerShared {
    stop: AtomicBool,
    /// Global 0-based index of the next `Deliver` frame, across all
    /// connections — the same counting `ScriptedTransport` does over its
    /// lifetime, so a fault plan written for one drives the other.
    deliver_seq: AtomicU64,
    fail_at: Mutex<Vec<u64>>,
}

/// The server side of the replication wire protocol.
///
/// Bound to an ephemeral loopback port by default; hand
/// [`ReplicaListener::addr`] to a [`SocketTransport`].
pub struct ReplicaListener {
    addr: std::net::SocketAddr,
    shared: Arc<ListenerShared>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ReplicaListener {
    /// Bind and start accepting. `addr` is a `host:port` string; port 0
    /// picks an ephemeral port (read it back with
    /// [`ReplicaListener::addr`]).
    pub fn bind(addr: &str) -> Result<ReplicaListener> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DominoError::Unavailable(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| DominoError::Unavailable(format!("local_addr: {e}")))?;
        let shared = Arc::new(ListenerShared {
            stop: AtomicBool::new(false),
            deliver_seq: AtomicU64::new(0),
            fail_at: Mutex::new(Vec::new()),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = shared.clone();
        let accept_conns = conn_threads.clone();
        let accept_thread = std::thread::Builder::new()
            .name("replica-listener".into())
            .spawn(move || {
                let task = obs::register_task("replica-listener", "Replication wire listener");
                task.set_status(&format!("Listen {local}"));
                obs::emit(
                    obs::Event::new(obs::EventKind::Replica, obs::Severity::Normal, "Net.Listen")
                        .with("addr", local.to_string()),
                );
                for stream in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    m().accepted.inc();
                    task.beat();
                    let conn_shared = accept_shared.clone();
                    if let Ok(h) = std::thread::Builder::new()
                        .name("replica-conn".into())
                        .spawn(move || serve_connection(stream, &conn_shared))
                    {
                        accept_conns
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .push(h);
                    }
                }
                task.set_status("Quit");
            })
            .map_err(|e| DominoError::Unavailable(format!("spawn listener: {e}")))?;
        Ok(ReplicaListener {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound address (connect a [`SocketTransport`] here).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Nack the `Deliver` frames whose global 0-based index appears in
    /// `fail_at` — the socket analogue of
    /// `ScriptedTransport::failing_at`. Indices count every `Deliver`
    /// received over the listener's lifetime, across reconnects, which
    /// is exactly how `ScriptedTransport` counts its own `sent`.
    pub fn fail_deliveries(&self, fail_at: Vec<u64>) {
        *self
            .shared
            .fail_at
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = fail_at;
    }

    /// `Deliver` frames received so far (acked + nacked).
    pub fn deliveries(&self) -> u64 {
        self.shared.deliver_seq.load(Ordering::SeqCst)
    }

    /// Stop accepting and join every connection thread.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let conns: Vec<JoinHandle<()>> =
            std::mem::take(&mut self.conn_threads.lock().unwrap_or_else(|p| p.into_inner()));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ReplicaListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One accepted connection: handshake, then ack/nack deliveries until
/// the peer quits, errors, or the listener stops.
fn serve_connection(stream: TcpStream, shared: &ListenerShared) {
    m().active.add(1);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    obs::emit(
        obs::Event::new(
            obs::EventKind::Replica,
            obs::Severity::Info,
            "Net.Conn.Open",
        )
        .with("peer", peer.clone()),
    );
    let outcome = serve_frames(stream, shared);
    m().active.add(-1);
    obs::emit(
        obs::Event::new(
            obs::EventKind::Replica,
            obs::Severity::Info,
            "Net.Conn.Close",
        )
        .with("peer", peer)
        .with("outcome", outcome),
    );
}

fn serve_frames(mut stream: TcpStream, shared: &ListenerShared) -> &'static str {
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(IO_DEADLINE));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    let mut greeted = false;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return "listener stopped";
        }
        match stream.read(&mut buf) {
            Ok(0) => return "peer closed",
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return "read error",
        }
        loop {
            let frame = match dec.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    m().dropped.inc();
                    return "corrupt frame";
                }
            };
            m().frames.inc();
            let reply = match frame.opcode {
                Opcode::Hello => {
                    if !frame.handshake_ok() {
                        m().dropped.inc();
                        return "bad handshake";
                    }
                    greeted = true;
                    Frame::hello_ack()
                }
                Opcode::Deliver if greeted => {
                    let idx = shared.deliver_seq.fetch_add(1, Ordering::SeqCst);
                    let scripted = shared
                        .fail_at
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .contains(&idx);
                    if scripted {
                        m().nacked.inc();
                        Frame::nack(&format!("scripted message loss at delivery {idx}"))
                    } else {
                        m().delivered.inc();
                        Frame::bare(Opcode::Ack)
                    }
                }
                Opcode::Quit => return "peer quit",
                _ => {
                    m().dropped.inc();
                    return "protocol error";
                }
            };
            if stream.write_all(&reply.encode()).is_err() {
                return "write error";
            }
            // A nacked delivery ends the exchange: the client parks its
            // cursor and reconnects for the resumed pass, mirroring a
            // dropped dial-up link.
            if reply.opcode == Opcode::Nack {
                let _ = stream.shutdown(Shutdown::Both);
                return "nacked";
            }
        }
    }
}

/// `Transport` impl that ships every delivery as a `Deliver`/`Ack`
/// round-trip over a real TCP connection.
///
/// Connects lazily on the first `deliver` and re-connects after any
/// fault, so a parked pull cursor resumes over a fresh connection —
/// the socket equivalent of redialling the modem.
pub struct SocketTransport {
    addr: String,
    conn: Option<Conn>,
    /// Round-trips attempted (delivered + failed), mirroring
    /// `ScriptedTransport::sent`.
    sent: u64,
    /// Round-trips that came back failed.
    dropped: u64,
}

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl SocketTransport {
    /// A transport that will dial `addr` (e.g. from
    /// [`ReplicaListener::addr`]) on first use.
    pub fn connect(addr: &str) -> SocketTransport {
        SocketTransport {
            addr: addr.to_string(),
            conn: None,
            sent: 0,
            dropped: 0,
        }
    }

    /// Deliveries attempted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Deliveries that failed (connection faults or nacks).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| DominoError::Unavailable(format!("connect {}: {e}", self.addr)))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(IO_DEADLINE))
                .map_err(|e| DominoError::Unavailable(format!("set deadline: {e}")))?;
            let _ = stream.set_write_timeout(Some(IO_DEADLINE));
            let mut conn = Conn {
                stream,
                dec: FrameDecoder::new(),
            };
            let ack = round_trip(&mut conn, &Frame::hello())?;
            if ack.opcode != Opcode::HelloAck || !ack.handshake_ok() {
                return Err(DominoError::Unavailable(format!(
                    "handshake refused by {}",
                    self.addr
                )));
            }
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connected above"))
    }
}

/// Send one frame and block for the peer's answer.
fn round_trip(conn: &mut Conn, frame: &Frame) -> Result<Frame> {
    conn.stream
        .write_all(&frame.encode())
        .map_err(|e| DominoError::Unavailable(format!("write: {e}")))?;
    let mut buf = [0u8; 4096];
    loop {
        if let Some(f) = conn
            .dec
            .next_frame()
            .map_err(|e| DominoError::Unavailable(format!("corrupt reply: {e}")))?
        {
            return Ok(f);
        }
        let n = conn
            .stream
            .read(&mut buf)
            .map_err(|e| DominoError::Unavailable(format!("read: {e}")))?;
        if n == 0 {
            return Err(DominoError::Unavailable(
                "connection closed mid-reply".into(),
            ));
        }
        conn.dec.feed(&buf[..n]);
    }
}

impl Transport for SocketTransport {
    fn deliver(&mut self, notes: u64) -> Result<()> {
        self.sent += 1;
        let result = (|| {
            let conn = self.ensure_conn()?;
            let reply = round_trip(conn, &Frame::deliver(notes))?;
            match reply.opcode {
                Opcode::Ack => Ok(()),
                Opcode::Nack => Err(DominoError::Unavailable(
                    String::from_utf8_lossy(&reply.payload).into_owned(),
                )),
                other => Err(DominoError::Unavailable(format!(
                    "unexpected reply {other:?} to a delivery"
                ))),
            }
        })();
        if result.is_err() {
            // Any fault poisons the connection: drop it so the next
            // delivery redials, and let the cursor park meanwhile.
            self.dropped += 1;
            self.conn = None;
        }
        result
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = conn.stream.write_all(&Frame::bare(Opcode::Quit).encode());
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_deliveries_ack_over_a_real_socket() {
        let listener = ReplicaListener::bind("127.0.0.1:0").unwrap();
        let mut t = SocketTransport::connect(&listener.addr());
        for notes in [1, 1, 1, 16, 4] {
            t.deliver(notes).unwrap();
        }
        assert_eq!(t.sent(), 5);
        assert_eq!(t.dropped(), 0);
        drop(t);
        assert_eq!(listener.deliveries(), 5);
    }

    #[test]
    fn scripted_nacks_match_scripted_transport_semantics() {
        use domino_replica::ScriptedTransport;
        let listener = ReplicaListener::bind("127.0.0.1:0").unwrap();
        listener.fail_deliveries(vec![1, 3]);
        let mut socket = SocketTransport::connect(&listener.addr());
        let mut scripted = ScriptedTransport::failing_at(vec![1, 3]);
        for _ in 0..5 {
            let a = socket.deliver(2).is_ok();
            let b = scripted.deliver(2).is_ok();
            assert_eq!(a, b, "socket and scripted transports must agree");
        }
        assert_eq!(socket.dropped(), scripted.dropped());
    }

    #[test]
    fn connection_faults_are_transient() {
        let addr = {
            let listener = ReplicaListener::bind("127.0.0.1:0").unwrap();
            listener.addr()
            // listener drops here: the port is closed.
        };
        let mut t = SocketTransport::connect(&addr);
        match t.deliver(1) {
            Err(DominoError::Unavailable(_)) => {}
            other => panic!("dead peer must be Unavailable, got {other:?}"),
        }
    }
}
