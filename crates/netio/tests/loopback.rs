//! End-to-end loopback tests: a real browser-shaped TCP client against
//! the [`HttpListener`], and the console `tell http quit` drain path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use domino_core::{Database, DbConfig, Note};
use domino_netio::{base64_encode, HttpConfig, HttpListener, ParserLimits};
use domino_server::{Console, DominoServer, ServerConfig, ServerLog};
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_views::{ColumnSpec, SortDir, ViewDesign};

fn discussion_server() -> DominoServer {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Discussion", ReplicaId(1), ReplicaId(9)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let mut acl = domino_security::Acl::new(domino_security::AccessLevel::Reader);
    acl.set(
        "alice",
        domino_security::AclEntry::new(domino_security::AccessLevel::Editor),
    );
    db.set_acl(&acl).unwrap();
    for i in 0..6 {
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text(format!("topic {i:02}")));
        db.save(&mut n).unwrap();
    }
    let server = DominoServer::new(ServerConfig {
        workers: 2,
        queue_bound: 32,
        cache_capacity: 16,
    });
    server.register_database("disc", &db).unwrap();
    let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#).unwrap();
    design.columns = vec![ColumnSpec::new("Subject", "Subject")
        .unwrap()
        .sorted(SortDir::Ascending)];
    server.add_view("disc", design).unwrap();
    server.register_user("alice", "pw-a");
    server
}

/// Read one full HTTP response (head + Content-Length body) off `stream`.
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "peer closed mid-response: {raw:?}");
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).unwrap();
            let len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse::<usize>().ok())
                .expect("Content-Length header");
            break (pos + 4, len);
        }
    };
    while raw.len() < head_end + body_len {
        let n = stream.read(&mut buf).expect("read body");
        assert!(n > 0, "peer closed mid-body");
        raw.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8(raw[..head_end].to_vec()).unwrap();
    let body = String::from_utf8(raw[head_end..head_end + body_len].to_vec()).unwrap();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, body)
}

#[test]
fn keep_alive_connection_serves_many_requests_and_sees_the_cache() {
    let listener = HttpListener::start(discussion_server(), HttpConfig::default()).unwrap();
    let mut conn = TcpStream::connect(listener.addr()).unwrap();

    // Three requests down one connection, split awkwardly on purpose.
    let req = b"GET /disc.nsf/topics?OpenView&Count=3 HTTP/1.1\r\nHost: x\r\n\r\n";
    for round in 0..3 {
        let (a, b) = req.split_at(17);
        conn.write_all(a).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        conn.write_all(b).unwrap();
        let (status, head, body) = read_response(&mut conn);
        assert_eq!(status, 200, "round {round}: {head}");
        assert!(head.contains("Connection: keep-alive"));
        assert!(body.contains("topic 00"));
        // The command cache serves round 2+ (same page, same snapshot).
        let want = if round == 0 { "miss" } else { "hit" };
        assert!(
            head.contains(&format!("X-Command-Cache: {want}")),
            "round {round}: {head}"
        );
    }

    // Basic auth and a POST with a body work over the same socket.
    let auth = base64_encode(b"alice:pw-a");
    let body = "Subject=from+the+wire";
    conn.write_all(
        format!(
            "POST /disc.nsf/Topic?CreateDocument HTTP/1.1\r\nAuthorization: Basic {auth}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let (status, head, body) = read_response(&mut conn);
    assert_eq!(status, 200, "{head}\n{body}");
    assert!(head.contains("Connection: close"));
    assert!(body.contains("Document created"));
}

#[test]
fn malformed_and_oversized_requests_get_400_and_413() {
    let config = HttpConfig {
        limits: ParserLimits {
            max_head_bytes: 512,
            max_body_bytes: 256,
        },
        ..HttpConfig::default()
    };
    let listener = HttpListener::start(discussion_server(), config).unwrap();

    let mut conn = TcpStream::connect(listener.addr()).unwrap();
    conn.write_all(b"FLORP /disc.nsf HTTP/1.1\r\n\r\n").unwrap();
    let (status, ..) = read_response(&mut conn);
    assert_eq!(status, 400);

    let mut conn = TcpStream::connect(listener.addr()).unwrap();
    conn.write_all(
        b"POST /disc.nsf/Topic?CreateDocument HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
    )
    .unwrap();
    let (status, ..) = read_response(&mut conn);
    assert_eq!(status, 413);
}

#[test]
fn over_capacity_connections_are_rejected_with_503() {
    let config = HttpConfig {
        max_connections: 2,
        ..HttpConfig::default()
    };
    let listener = HttpListener::start(discussion_server(), config).unwrap();
    // Two admitted keep-alive connections fill the cap...
    let mut held: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(listener.addr()).unwrap())
        .collect();
    for conn in &mut held {
        conn.write_all(b"GET /disc.nsf/topics?OpenView HTTP/1.1\r\n\r\n")
            .unwrap();
        let (status, ..) = read_response(conn);
        assert_eq!(status, 200);
    }
    // ...so the third is answered 503 without being admitted.
    let mut extra = TcpStream::connect(listener.addr()).unwrap();
    let (status, head, _) = read_response(&mut extra);
    assert_eq!(status, 503, "{head}");
    assert_eq!(listener.active_connections(), 2);
}

#[test]
fn tell_http_quit_drains_gracefully() {
    let listener =
        Arc::new(HttpListener::start(discussion_server(), HttpConfig::default()).unwrap());
    let addr = listener.addr();

    // An idle keep-alive connection that the drain must close.
    let mut idle = TcpStream::connect(&addr).unwrap();
    idle.write_all(b"GET /disc.nsf/topics?OpenView HTTP/1.1\r\n\r\n")
        .unwrap();
    let (status, ..) = read_response(&mut idle);
    assert_eq!(status, 200);

    // The console verb a Domino admin would use.
    let console = Console::new(ServerLog::open().unwrap());
    let tell = listener.clone();
    console.register_tell("http", move |words| match words {
        ["quit"] => {
            let report = tell.drain(Duration::from_secs(5));
            format!(
                "> tell http quit\n  drained: {} connections open at start, {} remaining\n",
                report.connections_at_start, report.remaining
            )
        }
        _ => String::from("> tell http\n  usage: tell http quit\n"),
    });
    let out = console.exec("tell http quit");
    assert!(out.contains("0 remaining"), "{out}");
    assert_eq!(listener.active_connections(), 0);

    // The port no longer accepts new work.
    let refused = TcpStream::connect(&addr)
        .map(|mut s| {
            // Accept backlog may still take the connection; it must be
            // closed without a response.
            let _ = s.write_all(b"GET /disc.nsf/topics?OpenView HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 64];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        })
        .unwrap_or(true);
    assert!(refused, "a drained listener must not serve new requests");
}
