//! The structured event bus: bounded, lock-free, never blocking.
//!
//! Metrics (the registry) answer "how much"; events answer "what
//! happened". An [`Event`] is one notable occurrence — a replication pass
//! finishing, a checkpoint completing, a 403 denial, a lock-timeout
//! victim — carrying a [`EventKind`], a [`Severity`], a stable code
//! string, and typed key/value fields.
//!
//! Producers call [`emit`] from any thread. The bus is a bounded
//! [Vyukov-style](https://www.1024cores.net/home/lock-free-algorithms/queues/bounded-mpmc-queue)
//! MPMC ring of [`EVENT_RING_CAPACITY`] slots: emission is two atomic
//! CAS/store pairs plus one move — tens of nanoseconds — and **never
//! blocks**. When the ring is full the event is dropped on the floor and
//! `Obs.Event.Dropped` is incremented; a hot path never waits for the
//! consumer (the exact trade a flight recorder makes: losing an event
//! beats stalling a commit).
//!
//! The single intended consumer is the logger task (`domino-server`),
//! which [`drain`]s the ring and materializes events as notes in
//! `log.nsf`. Because those writes go through the very subsystems that
//! emit events, the drainer wraps itself in [`suppress`] — a thread-local
//! re-entrancy guard under which [`emit`] becomes a counted no-op
//! (`Obs.Event.Suppressed`), so the log never logs itself.

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::{counter, Counter};

/// Slots in the global event ring. Power of two; at a typical 200-byte
/// event this bounds the bus near 2 MiB.
pub const EVENT_RING_CAPACITY: usize = 8192;

/// How bad the news is, ordered worst-first (Domino's event severities:
/// Fatal, Failure, Warning, Normal, plus an informational floor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The server cannot continue correctly.
    Fatal,
    /// An operation failed and will not be retried.
    Failure,
    /// Degraded but operating (retries, sheds, timeouts).
    Warning,
    /// A normal state transition worth recording (probe cleared, task up).
    Normal,
    /// Routine operational detail (a pass finished, a request served).
    Info,
}

impl Severity {
    /// Console/label spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Fatal => "Fatal",
            Severity::Failure => "Failure",
            Severity::Warning => "Warning",
            Severity::Normal => "Normal",
            Severity::Info => "Info",
        }
    }

    /// Parse a console spelling, case-insensitively.
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "fatal" => Some(Severity::Fatal),
            "failure" => Some(Severity::Failure),
            "warning" => Some(Severity::Warning),
            "normal" => Some(Severity::Normal),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }

    /// One step worse (DDM escalation): Warning → Failure → Fatal.
    /// Already-Fatal stays Fatal.
    pub fn escalated(self) -> Severity {
        match self {
            Severity::Fatal | Severity::Failure => Severity::Fatal,
            Severity::Warning => Severity::Failure,
            Severity::Normal => Severity::Warning,
            Severity::Info => Severity::Normal,
        }
    }

    /// Is this at least as severe as `floor`? (`Fatal` is the most
    /// severe; the derived order puts it first.)
    pub fn at_least(self, floor: Severity) -> bool {
        self <= floor
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which subsystem an event describes — the coarse routing key `log.nsf`
/// views and `show events` filter on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Server lifecycle, recovery, probes.
    Server,
    /// Replication and cluster traffic.
    Replica,
    /// HTTP task requests (domlog.nsf material).
    Http,
    /// Agent-manager runs.
    Agent,
    /// Checkpointer and buffer-pool pressure.
    Checkpoint,
    /// Authentication/ACL denials.
    Security,
    /// Everything else (mail, locks, …).
    Misc,
}

impl EventKind {
    /// Console/label spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Server => "Server",
            EventKind::Replica => "Replica",
            EventKind::Http => "Http",
            EventKind::Agent => "Agent",
            EventKind::Checkpoint => "Checkpoint",
            EventKind::Security => "Security",
            EventKind::Misc => "Misc",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed field value on an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned quantity (counts, bytes, micros).
    U64(u64),
    /// Signed quantity (gauge levels, deltas).
    I64(i64),
    /// Ratio or rate.
    F64(f64),
    /// Static label.
    Str(&'static str),
    /// Owned text (user names, database titles).
    Text(String),
}

impl FieldValue {
    /// The value as display text (what `log.nsf` items store).
    pub fn to_text(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => format!("{v:.3}"),
            FieldValue::Str(s) => (*s).to_string(),
            FieldValue::Text(s) => s.clone(),
        }
    }

    /// Numeric reading when the value is numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Text(v)
    }
}

/// One structured event. Build with [`Event::new`] + [`Event::with`] and
/// hand to [`emit`]; `seq` and `nanos` are stamped at emission.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission sequence number (1-based; 0 until emitted).
    pub seq: u64,
    /// Monotonic nanoseconds since the first event-bus touch of this
    /// process (stamped by [`emit`]).
    pub nanos: u64,
    /// Logical sim-time of the emitting subsystem (its database clock
    /// tick), when the producer has one; 0 otherwise. Set via
    /// [`Event::at`].
    pub stamp: u64,
    /// Coarse subsystem routing key.
    pub kind: EventKind,
    /// How bad the news is.
    pub severity: Severity,
    /// Stable dotted code (`"Replica.Pass"`, `"Http.Denied"`, …) — the
    /// fine-grained identity views and probes match on.
    pub code: &'static str,
    /// Typed key/value details, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// A new event with no fields and stamp 0.
    pub fn new(kind: EventKind, severity: Severity, code: &'static str) -> Event {
        Event {
            seq: 0,
            nanos: 0,
            stamp: 0,
            kind,
            severity,
            code,
            fields: Vec::new(),
        }
    }

    /// Attach one field (builder-style).
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Stamp the producer's logical sim-time.
    pub fn at(mut self, stamp: u64) -> Event {
        self.stamp = stamp;
        self
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// `key=value` pairs space-joined — the console/`Subject` rendering.
    pub fn render_fields(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.fields {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_text());
        }
        out
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}] {:<7} {:<10} {}",
            self.seq,
            self.severity.as_str(),
            self.kind.as_str(),
            self.code
        )?;
        let fields = self.render_fields();
        if !fields.is_empty() {
            write!(f, " {fields}")?;
        }
        Ok(())
    }
}

/// One ring slot: a sequence number that encodes whether the slot is
/// empty (seq == pos) or full (seq == pos + 1), plus the payload.
struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<Option<Event>>,
}

/// Bounded MPMC ring (Vyukov). Producers and consumers claim a position
/// with one CAS, then hand the slot over with a release store of its
/// sequence number — no locks anywhere, and a full ring fails the push
/// instead of waiting.
struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// The UnsafeCell is only touched by the thread that won the slot's CAS
// for the current lap, and the seq store/load pair orders the access.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(None),
            })
            .collect();
        Ring {
            slots,
            mask: capacity - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Try to enqueue; returns the event back when the ring is full.
    fn push(&self, event: Event) -> Result<(), Event> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { *slot.value.get() = Some(event) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // The slot still holds last lap's value: ring is full.
                return Err(event);
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Try to dequeue; `None` when empty.
    fn pop(&self) -> Option<Event> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).take() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return value;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued events (fuzzy under concurrency).
    fn len(&self) -> usize {
        let tail = self.dequeue_pos.load(Ordering::Relaxed);
        let head = self.enqueue_pos.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring::new(EVENT_RING_CAPACITY))
}

struct BusMetrics {
    emitted: &'static Counter,
    dropped: &'static Counter,
    suppressed: &'static Counter,
}

fn bus_metrics() -> &'static BusMetrics {
    static M: OnceLock<BusMetrics> = OnceLock::new();
    M.get_or_init(|| BusMetrics {
        emitted: counter("Obs.Event.Emitted"),
        dropped: counter("Obs.Event.Dropped"),
        suppressed: counter("Obs.Event.Suppressed"),
    })
}

static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the event bus first woke up in this
/// process — the clock every event's `nanos` field reads.
pub fn process_nanos() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

thread_local! {
    static SUPPRESS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII re-entrancy guard from [`suppress`]: while any guard lives on a
/// thread, that thread's [`emit`] calls are counted no-ops.
pub struct SuppressGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Suppress event emission on the current thread until the returned
/// guard drops. Nests. The logger task holds one of these across every
/// `log.nsf` write so instrumented subsystems it calls into (storage,
/// locks, views) cannot emit events *about the act of logging* —
/// the recursion-free invariant the tests pin.
pub fn suppress() -> SuppressGuard {
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    SuppressGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Is emission currently suppressed on this thread?
pub fn is_suppressed() -> bool {
    SUPPRESS_DEPTH.with(|d| d.get() > 0)
}

/// Emit one event onto the bus. Returns `true` if it was enqueued.
///
/// Never blocks: a full ring drops the event (counted in
/// `Obs.Event.Dropped`), and a suppressed thread drops it too (counted
/// in `Obs.Event.Suppressed`). Cost on the happy path is one CAS, one
/// release store, and a move of the event.
pub fn emit(mut event: Event) -> bool {
    if is_suppressed() {
        bus_metrics().suppressed.inc();
        return false;
    }
    event.seq = EVENT_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    event.nanos = process_nanos();
    match ring().push(event) {
        Ok(()) => {
            bus_metrics().emitted.inc();
            true
        }
        Err(_) => {
            bus_metrics().dropped.inc();
            false
        }
    }
}

/// Dequeue up to `max` events, oldest first. The logger task's read side.
pub fn drain(max: usize) -> Vec<Event> {
    let r = ring();
    let mut out = Vec::new();
    while out.len() < max {
        match r.pop() {
            Some(e) => out.push(e),
            None => break,
        }
    }
    out
}

/// Approximate number of events waiting in the ring.
pub fn pending() -> usize {
    ring().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The ring is process-global; tests that fill or drain it serialize
    /// here so they don't steal each other's events.
    static BUS_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn severity_order_parse_and_escalation() {
        assert!(Severity::Fatal.at_least(Severity::Warning));
        assert!(Severity::Warning.at_least(Severity::Warning));
        assert!(!Severity::Info.at_least(Severity::Warning));
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("FATAL"), Some(Severity::Fatal));
        assert_eq!(Severity::parse("loud"), None);
        assert_eq!(Severity::Warning.escalated(), Severity::Failure);
        assert_eq!(Severity::Failure.escalated(), Severity::Fatal);
        assert_eq!(Severity::Fatal.escalated(), Severity::Fatal);
    }

    #[test]
    fn event_builder_fields_and_display() {
        let e = Event::new(EventKind::Replica, Severity::Info, "Replica.Pass")
            .with("added", 3u64)
            .with("src", "projects")
            .at(42);
        assert_eq!(e.stamp, 42);
        assert_eq!(e.field("added").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            e.field("src").map(|v| v.to_text()).as_deref(),
            Some("projects")
        );
        assert_eq!(e.render_fields(), "added=3 src=projects");
        assert!(e.to_string().contains("Replica.Pass"));
    }

    #[test]
    fn emit_drain_round_trip_in_order() {
        let _serial = BUS_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        drain(usize::MAX); // start clean
        for i in 0..10u64 {
            assert!(emit(
                Event::new(EventKind::Misc, Severity::Info, "Test.Tick").with("i", i)
            ));
        }
        let got = drain(usize::MAX);
        assert_eq!(got.len(), 10);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.field("i").and_then(|v| v.as_u64()), Some(i as u64));
            assert!(e.seq > 0, "seq must be stamped");
        }
        // Seq strictly increases and nanos never go backwards.
        for w in got.windows(2) {
            assert!(w[1].seq > w[0].seq);
            assert!(w[1].nanos >= w[0].nanos);
        }
    }

    #[test]
    fn overflow_drops_without_blocking_and_counts() {
        let _serial = BUS_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        drain(usize::MAX);
        let dropped_before = bus_metrics().dropped.get();
        for _ in 0..EVENT_RING_CAPACITY {
            assert!(emit(Event::new(
                EventKind::Misc,
                Severity::Info,
                "Test.Fill"
            )));
        }
        // The ring is now full: further emissions return immediately
        // (no blocking — this would deadlock otherwise, as nothing
        // drains) and are counted.
        for _ in 0..100 {
            assert!(!emit(Event::new(
                EventKind::Misc,
                Severity::Info,
                "Test.Spill"
            )));
        }
        assert_eq!(bus_metrics().dropped.get() - dropped_before, 100);
        // Draining frees space again.
        assert_eq!(drain(usize::MAX).len(), EVENT_RING_CAPACITY);
        assert!(emit(Event::new(
            EventKind::Misc,
            Severity::Info,
            "Test.After"
        )));
        drain(usize::MAX);
    }

    #[test]
    fn suppression_is_thread_local_counted_and_nests() {
        let _serial = BUS_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        drain(usize::MAX);
        let suppressed_before = bus_metrics().suppressed.get();
        {
            let _g = suppress();
            assert!(is_suppressed());
            {
                let _g2 = suppress();
                assert!(!emit(Event::new(
                    EventKind::Misc,
                    Severity::Info,
                    "Test.Muted"
                )));
            }
            assert!(is_suppressed(), "outer guard still active");
            assert!(!emit(Event::new(
                EventKind::Misc,
                Severity::Info,
                "Test.Muted"
            )));
            // Another thread is NOT suppressed.
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert!(!is_suppressed());
                    assert!(emit(Event::new(
                        EventKind::Misc,
                        Severity::Info,
                        "Test.Loud"
                    )));
                });
            });
        }
        assert!(!is_suppressed());
        assert_eq!(bus_metrics().suppressed.get() - suppressed_before, 2);
        let got = drain(usize::MAX);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].code, "Test.Loud");
    }

    #[test]
    fn concurrent_producers_lose_nothing_under_capacity() {
        let _serial = BUS_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        drain(usize::MAX);
        let threads = 8usize;
        let per = 500usize; // 4000 << capacity
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per {
                        assert!(emit(
                            Event::new(EventKind::Misc, Severity::Info, "Test.Mpmc")
                                .with("t", t)
                                .with("i", i)
                        ));
                    }
                });
            }
        });
        let got = drain(usize::MAX);
        assert_eq!(got.len(), threads * per);
        // Every (t, i) pair arrived exactly once.
        let mut seen = std::collections::HashSet::new();
        for e in &got {
            let t = e.field("t").and_then(|v| v.as_u64()).unwrap();
            let i = e.field("i").and_then(|v| v.as_u64()).unwrap();
            assert!(seen.insert((t, i)));
        }
    }
}
