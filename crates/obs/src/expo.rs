//! The exposition surface: Domino-console `show statistics` text.
//!
//! Domino administrators read the server through `show statistics` — an
//! alphabetized list of `Name = value` lines with hierarchical dotted
//! names (`Database.Database.BufferPool.PerCentReadsInBuffer`,
//! `Mail.Delivered`, …). [`show_statistics`] reproduces that surface over
//! the process-wide registry; histograms expand into `.Avg`, `.Max`,
//! `.P50`, `.P95`, `.P99`, `.Samples` sub-lines (themselves in sorted
//! order) so latency distributions read directly off the console, and
//! subsystem blocks are separated by a blank line. The whole dump is in
//! stable sorted order, so console diffs and CI greps are deterministic.

use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::registry::{gauge, snapshot, MetricValue, Snapshot};
use crate::span::{slow_ops, slow_threshold, SLOW_LOG_CAPACITY};

/// The metric name's subsystem: everything before the first dot.
fn subsystem(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Render one snapshot in Domino console format (no header line): every
/// metric in sorted name order, one blank line between subsystem blocks,
/// histogram sub-lines sorted within the metric.
pub fn render_statistics(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_subsystem: Option<String> = None;
    for (name, v) in snap.iter() {
        let sub = subsystem(name);
        if let Some(prev) = &last_subsystem {
            if prev != sub {
                out.push('\n');
            }
        }
        last_subsystem = Some(sub.to_string());
        match v {
            MetricValue::Counter(c) => out.push_str(&format!("  {name} = {c}\n")),
            MetricValue::Gauge(g) => out.push_str(&format!("  {name} = {g}\n")),
            MetricValue::Histogram(h) => {
                // Sub-lines in sorted (alphabetical) order, matching the
                // surrounding dump: Avg < Max < P50 < P95 < P99 < Samples.
                out.push_str(&format!("  {name}.Avg = {}\n", h.mean()));
                out.push_str(&format!("  {name}.Max = {}\n", h.max));
                out.push_str(&format!("  {name}.P50 = {}\n", h.p50()));
                out.push_str(&format!("  {name}.P95 = {}\n", h.p95()));
                out.push_str(&format!("  {name}.P99 = {}\n", h.p99()));
                out.push_str(&format!("  {name}.Samples = {}\n", h.count));
            }
        }
    }
    out
}

/// Process start anchor: the monotonic instant and wall-clock Unix
/// seconds captured the first time anything asks.
fn start_anchor() -> &'static (Instant, u64) {
    static START: OnceLock<(Instant, u64)> = OnceLock::new();
    START.get_or_init(|| {
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        (Instant::now(), unix)
    })
}

/// Refresh the `Server.Uptime` / `Server.StartTime` gauges from the
/// process-start anchor and return `(uptime_secs, start_unix_secs)`.
/// Called by [`show_statistics`]; call it early in `main` to pin the
/// anchor at actual process start.
pub fn touch_server_gauges() -> (u64, u64) {
    let (started, unix) = *start_anchor();
    let uptime = started.elapsed().as_secs();
    gauge("Server.Uptime").set(uptime as i64);
    gauge("Server.StartTime").set(unix as i64);
    (uptime, unix)
}

/// The `show statistics` console dump: a header carrying server uptime
/// and the tracing state (slow-op ring depth + threshold), every
/// registered metric in stable sorted order, and a trailing
/// slow-operation section when the slow-op log is non-empty.
pub fn show_statistics() -> String {
    let (uptime, start_unix) = touch_server_gauges();
    let slow = slow_ops();
    let mut out = String::from("> show statistics\n");
    out.push_str(&format!(
        "  [uptime {uptime}s · started {start_unix} (unix) · slow-op ring {}/{} · threshold {:?}]\n\n",
        slow.len(),
        SLOW_LOG_CAPACITY,
        slow_threshold(),
    ));
    out.push_str(&render_statistics(&snapshot()));
    if !slow.is_empty() {
        out.push_str("> show slowops\n");
        for op in slow {
            out.push_str(&format!("  [{:>12} ns]  {}\n", op.nanos, op.path));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, histogram};

    #[test]
    fn console_format_lists_sorted_names() {
        counter("Test.Expo.Beta").add(2);
        counter("Test.Expo.Alpha").inc();
        histogram("Test.Expo.Lat").record(100);
        let text = show_statistics();
        assert!(text.starts_with("> show statistics\n"));
        let alpha = text.find("Test.Expo.Alpha = ").expect("alpha line");
        let beta = text.find("Test.Expo.Beta = ").expect("beta line");
        assert!(alpha < beta, "names must be alphabetized");
        assert!(text.contains("Test.Expo.Lat.P99 = "));
        assert!(text.contains("Test.Expo.Lat.Samples = "));
    }

    #[test]
    fn histogram_sublines_are_sorted_and_blocks_separated() {
        counter("Test.ExpoOrder.A").inc();
        histogram("Test.ExpoOrder.Lat").record(7);
        let text = render_statistics(&snapshot());
        // Sub-line order is itself alphabetical: Avg < Max < P50 < P95
        // < P99 < Samples — so the whole dump is one sorted sequence.
        let idx = |needle: &str| text.find(needle).unwrap_or_else(|| panic!("{needle}"));
        let avg = idx("Test.ExpoOrder.Lat.Avg = ");
        let max = idx("Test.ExpoOrder.Lat.Max = ");
        let p50 = idx("Test.ExpoOrder.Lat.P50 = ");
        let p95 = idx("Test.ExpoOrder.Lat.P95 = ");
        let p99 = idx("Test.ExpoOrder.Lat.P99 = ");
        let samples = idx("Test.ExpoOrder.Lat.Samples = ");
        assert!(avg < max && max < p50 && p50 < p95 && p95 < p99 && p99 < samples);
        // Different subsystems are separated by exactly one blank line.
        assert!(text.contains("\n\n"), "expected a subsystem separator");
        // Every non-blank line keeps the `  Name = value` shape CI greps.
        for line in text.lines().filter(|l| !l.is_empty()) {
            assert!(
                line.starts_with("  ") && line.contains(" = "),
                "malformed line: {line:?}"
            );
        }
    }

    #[test]
    fn header_reports_uptime_and_slow_ring_depth() {
        let text = show_statistics();
        let header = text.lines().nth(1).expect("header line");
        assert!(header.contains("uptime "), "header: {header}");
        assert!(header.contains("slow-op ring "), "header: {header}");
        assert!(
            header.contains(&format!("/{SLOW_LOG_CAPACITY}")),
            "header: {header}"
        );
        // The gauges are registered and refreshed.
        let snap = snapshot();
        assert!(snap.get("Server.Uptime").is_some());
        assert!(snap.gauge("Server.StartTime") > 0);
        assert!(text.contains("  Server.Uptime = "));
    }
}
