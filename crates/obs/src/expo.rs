//! The exposition surface: Domino-console `show statistics` text.
//!
//! Domino administrators read the server through `show statistics` — an
//! alphabetized list of `Name = value` lines with hierarchical dotted
//! names (`Database.Database.BufferPool.PerCentReadsInBuffer`,
//! `Mail.Delivered`, …). [`show_statistics`] reproduces that surface over
//! the process-wide registry; histograms expand into `.Samples`, `.Avg`,
//! `.Max`, `.P50`, `.P95`, `.P99` sub-lines so latency distributions read
//! directly off the console.

use crate::registry::{snapshot, MetricValue, Snapshot};
use crate::span::slow_ops;

/// Render one snapshot in Domino console format (no header line).
pub fn render_statistics(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in snap.iter() {
        match v {
            MetricValue::Counter(c) => out.push_str(&format!("  {name} = {c}\n")),
            MetricValue::Gauge(g) => out.push_str(&format!("  {name} = {g}\n")),
            MetricValue::Histogram(h) => {
                out.push_str(&format!("  {name}.Samples = {}\n", h.count));
                out.push_str(&format!("  {name}.Avg = {}\n", h.mean()));
                out.push_str(&format!("  {name}.Max = {}\n", h.max));
                out.push_str(&format!("  {name}.P50 = {}\n", h.p50()));
                out.push_str(&format!("  {name}.P95 = {}\n", h.p95()));
                out.push_str(&format!("  {name}.P99 = {}\n", h.p99()));
            }
        }
    }
    out
}

/// The `show statistics` console dump: header, every registered metric in
/// name order, and a trailing slow-operation section when the slow-op log
/// is non-empty.
pub fn show_statistics() -> String {
    let mut out = String::from("> show statistics\n");
    out.push_str(&render_statistics(&snapshot()));
    let slow = slow_ops();
    if !slow.is_empty() {
        out.push_str("> show slowops\n");
        for op in slow {
            out.push_str(&format!("  [{:>12} ns]  {}\n", op.nanos, op.path));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, histogram};

    #[test]
    fn console_format_lists_sorted_names() {
        counter("Test.Expo.Beta").add(2);
        counter("Test.Expo.Alpha").inc();
        histogram("Test.Expo.Lat").record(100);
        let text = show_statistics();
        assert!(text.starts_with("> show statistics\n"));
        let alpha = text.find("Test.Expo.Alpha = ").expect("alpha line");
        let beta = text.find("Test.Expo.Beta = ").expect("beta line");
        assert!(alpha < beta, "names must be alphabetized");
        assert!(text.contains("Test.Expo.Lat.P99 = "));
        assert!(text.contains("Test.Expo.Lat.Samples = "));
    }
}
