//! Log-scaled latency histograms.
//!
//! A [`Histogram`] buckets samples by their binary order of magnitude:
//! bucket 0 holds the value 0, bucket *i* (for `i >= 1`) holds values in
//! `[2^(i-1), 2^i - 1]`. Recording a sample is four relaxed atomic
//! read-modify-writes (bucket, count, sum, max) — no lock, no allocation —
//! which is what lets every hot path in the workspace carry one.
//!
//! Quantile extraction walks the bucket counts and reports the *upper
//! bound* of the bucket containing the requested rank, so an extracted
//! quantile is always `>=` the true quantile and within a factor of two of
//! it — the precision/footprint trade every log-scaled histogram makes
//! (HdrHistogram's single-digit-precision configuration is the same idea).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of buckets: one for zero plus one per binary order of magnitude
/// of a `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a sample value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (what quantile extraction reports).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free, log-scaled histogram of `u64` samples (typically
/// nanoseconds or microseconds of latency).
///
/// All methods take `&self`; recording is wait-free (relaxed atomics
/// only). Concurrent readers see a *fuzzy* but monotonic view — `count`,
/// `sum`, and the buckets are updated independently, exactly like a fuzzy
/// checkpoint reads a dirty-page table.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Four relaxed atomic RMWs; no lock.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_micros(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record a duration in milliseconds.
    #[inline]
    pub fn record_millis(&self, d: Duration) {
        self.record(d.as_millis().min(u64::MAX as u128) as u64);
    }

    /// Start a timer that records elapsed **nanoseconds** into this
    /// histogram when dropped.
    pub fn time(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: Instant::now(),
            unit: TimerUnit::Nanos,
        }
    }

    /// Start a timer that records elapsed **microseconds** when dropped.
    pub fn time_micros(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: Instant::now(),
            unit: TimerUnit::Micros,
        }
    }

    /// Start a timer that records elapsed **milliseconds** when dropped.
    pub fn time_millis(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: Instant::now(),
            unit: TimerUnit::Millis,
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Copy the current state out as a [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            // Derive count/sum-consistent totals from the buckets where
            // possible: the independent `count` atomic may lag mid-record.
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy)]
enum TimerUnit {
    Nanos,
    Micros,
    Millis,
}

/// Drop guard from [`Histogram::time`] / [`Histogram::time_micros`] /
/// [`Histogram::time_millis`]; records the elapsed time on drop in the
/// unit the constructor chose.
pub struct HistTimer<'h> {
    hist: &'h Histogram,
    start: Instant,
    unit: TimerUnit,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        match self.unit {
            TimerUnit::Nanos => self.hist.record_nanos(elapsed),
            TimerUnit::Micros => self.hist.record_micros(elapsed),
            TimerUnit::Millis => self.hist.record_millis(elapsed),
        }
    }
}

/// A point-in-time copy of a histogram, diffable and queryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see module docs for bucket bounds).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket holding
    /// the sample of rank `ceil(q * count)`. Always `>=` the true
    /// quantile, within a factor of two of it. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                // Never report past the observed maximum: the top
                // non-empty bucket's upper bound can be far above it.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-wise difference `self - earlier` (saturating): the samples
    /// recorded between the two snapshots. Quantiles of the diff describe
    /// just that interval.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (d, (now, was)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *d = now.saturating_sub(*was);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max, // maxima don't subtract; keep the later one
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_within_log_bounds_uniform() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // True p50 = 500; log-scale guarantee: within [500, 1000).
        let p50 = s.p50();
        assert!((500..1000).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn quantiles_adversarial_all_identical() {
        // Every sample in one bucket: all quantiles equal that bucket's
        // upper bound clamped to the observed max.
        let h = Histogram::new();
        for _ in 0..10_000 {
            h.record(7);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 7);
        assert_eq!(s.p99(), 7);
        assert_eq!(s.mean(), 7);
    }

    #[test]
    fn quantiles_adversarial_bimodal() {
        // 99% tiny, 1% huge: p50 stays tiny, p99 lands in the huge mode.
        let h = Histogram::new();
        for _ in 0..9_900 {
            h.record(10);
        }
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50() <= 15, "p50 = {}", s.p50());
        assert!(
            s.quantile(0.995) >= 524_288,
            "p99.5 = {}",
            s.quantile(0.995)
        );
    }

    #[test]
    fn quantiles_adversarial_zeros_and_extremes() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(0);
        }
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
        // Empty histogram is all zeros.
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let h = Histogram::new();
        let mut x = 1u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) | 1;
            h.record(x >> (x % 40));
        }
        let s = h.snapshot();
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn diff_subtracts_buckets() {
        let h = Histogram::new();
        h.record(100);
        let before = h.snapshot();
        for _ in 0..10 {
            h.record(1_000);
        }
        let d = h.snapshot().diff(&before);
        assert_eq!(d.count, 10);
        assert_eq!(d.sum, 10_000);
        // The diff's quantiles reflect only the new samples.
        assert!(d.p50() >= 1_000 && d.p50() < 2_048, "p50 = {}", d.p50());
    }

    #[test]
    fn single_sample_histogram_quantiles_all_equal_the_sample() {
        // p99 (and every other quantile) of a one-sample histogram is
        // that sample: rank = max(ceil(q*1), 1) = 1 lands in its bucket,
        // and the bucket's upper bound is clamped to the observed max.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.p50(), v, "p50 of single sample {v}");
            assert_eq!(s.p99(), v, "p99 of single sample {v}");
            assert_eq!(s.quantile(0.0), v, "q0 of single sample {v}");
            assert_eq!(s.quantile(1.0), v, "q1 of single sample {v}");
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0, "quantile({q}) of empty histogram");
        }
        assert_eq!(s.mean(), 0);
        // Diffing two empties stays empty.
        let d = s.diff(&HistogramSnapshot::default());
        assert_eq!(d.count, 0);
        assert_eq!(d.p99(), 0);
    }

    #[test]
    fn quantiles_at_bucket_boundaries() {
        // Samples sitting exactly on power-of-two bucket edges: 2^k goes
        // to bucket k+1 (lower bound), 2^k - 1 to bucket k (upper bound).
        // The reported quantile is the containing bucket's upper bound
        // clamped to the max, so boundary values round-trip exactly.
        let h = Histogram::new();
        h.record(1024); // bucket 11, upper 2047
        let s = h.snapshot();
        assert_eq!(s.p99(), 1024, "clamped to observed max");
        let h = Histogram::new();
        h.record(1023); // bucket 10, upper 1023
        assert_eq!(h.snapshot().p99(), 1023);
        // Mixed: half at a boundary, half just below it — p50 must not
        // exceed the upper bound of the lower bucket.
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1023);
        }
        for _ in 0..50 {
            h.record(1024);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 1023);
        assert_eq!(s.p99(), 1024, "p99 reaches the upper mode, max-clamped");
        assert_eq!(s.quantile(0.501), 1024);
    }

    #[test]
    fn timer_records_a_sample() {
        let h = Histogram::new();
        {
            let _t = h.time();
        }
        assert_eq!(h.count(), 1);
    }
}
