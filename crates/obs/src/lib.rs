//! # domino-obs — the unified telemetry layer
//!
//! One measurement substrate for the whole workspace, reproducing the
//! operational surface Mohan's tutorial leans on: Domino's
//! `show statistics` console, per-database activity counters, and the
//! slow-transaction log.
//!
//! Five pieces:
//!
//! * **Metrics registry** ([`counter`], [`gauge`], [`histogram`]) —
//!   process-wide metrics interned once under hierarchical Domino-style
//!   dotted names (`Database.Pool.Hits`, `Log.GroupCommit.Flushes`,
//!   `View.Rebuild.Millis`, `Replica.Pass.NotesPushed`). Registration
//!   takes a lock *once*; the returned `&'static` handles record with
//!   relaxed atomics only — an increment or histogram sample on a hot
//!   path acquires no lock and allocates nothing.
//! * **Tracing spans** ([`span!`], [`SpanGuard`]) — named timing scopes
//!   with a per-thread span stack and a fixed-size slow-op ring buffer:
//!   any operation over the configurable threshold
//!   ([`set_slow_threshold`]) is captured with its full span path.
//! * **Exposition** ([`show_statistics`], [`snapshot`],
//!   [`Snapshot::diff`]) — the Domino console text dump plus a
//!   machine-readable snapshot/diff API so the bench harness records
//!   metric deltas per experiment.
//! * **Event bus** ([`emit`], [`drain`], [`Event`]) — a bounded
//!   lock-free ring of structured events (kind, severity, code, typed
//!   fields) that the `log.nsf` logger task drains; emission never
//!   blocks a hot path (overflow counts into `Obs.Event.Dropped`), and
//!   the drainer's [`suppress`] guard keeps the log from logging itself.
//! * **Task roster** ([`register_task`], [`show_tasks`]) — every
//!   background thread (checkpointer, amgr, logger, probes) registers
//!   and heart-beats here, reproducing the Domino `show tasks` console.
//!
//! ## Naming convention
//!
//! `Subsystem.Object.Event` in UpperCamelCase segments, as on a Domino
//! console: counters name events in the plural (`…​.Hits`, `…​.Flushes`),
//! gauges name levels (`…​.Entries`), histograms name a quantity with its
//! unit as the last segment (`…​.Millis`, `…​.Micros`, `…​.Nanos`) and
//! expand to `.Samples`/`.Avg`/`.Max`/`.P50`/`.P95`/`.P99` lines in the
//! console dump.
//!
//! ## Wiring pattern
//!
//! Each crate caches its handles once in a `OnceLock` struct so hot paths
//! pay one atomic load to reach them:
//!
//! ```
//! use std::sync::OnceLock;
//! use domino_obs as obs;
//!
//! struct Metrics {
//!     saves: &'static obs::Counter,
//!     save_nanos: &'static obs::Histogram,
//! }
//!
//! fn m() -> &'static Metrics {
//!     static M: OnceLock<Metrics> = OnceLock::new();
//!     M.get_or_init(|| Metrics {
//!         saves: obs::counter("Example.Notes.Saved"),
//!         save_nanos: obs::histogram("Example.Save.Nanos"),
//!     })
//! }
//!
//! fn save() {
//!     let _span = obs::span!("Example.Save", m().save_nanos);
//!     m().saves.inc();
//! }
//!
//! save();
//! assert_eq!(obs::snapshot().counter("Example.Notes.Saved"), 1);
//! ```

#![deny(missing_docs)]

pub mod event;
mod expo;
mod hist;
mod registry;
mod span;
pub mod task;

pub use event::{
    drain, emit, is_suppressed, pending, process_nanos, suppress, Event, EventKind, FieldValue,
    Severity, SuppressGuard, EVENT_RING_CAPACITY,
};
pub use expo::{render_statistics, show_statistics, touch_server_gauges};
pub use hist::{HistTimer, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Metric, MetricValue, Snapshot,
};
pub use span::{
    current_path, enter, enter_timed, set_slow_threshold, slow_ops, slow_threshold, take_slow_ops,
    SlowOp, SpanGuard, SLOW_LOG_CAPACITY,
};
pub use task::{register_task, show_tasks, tasks, TaskHandle, TaskInfo};
