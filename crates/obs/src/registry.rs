//! The process-wide metrics registry.
//!
//! Metrics are registered once under hierarchical Domino-style dotted
//! names (`Database.Pool.Hits`, `Log.GroupCommit.Flushes`, …) and live for
//! the life of the process: [`counter`], [`gauge`], and [`histogram`]
//! intern the name under a mutex and hand back a `&'static` handle.
//! Callers cache the handle (typically in a `OnceLock`-initialized struct
//! of handles), so the **hot path never touches the registry lock** —
//! recording is a relaxed atomic increment on the handle itself.
//!
//! [`snapshot`] copies every registered metric into an immutable
//! [`Snapshot`]; two snapshots [`Snapshot::diff`] into the activity between
//! them, which is how the bench harness attributes metric deltas to one
//! experiment.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (cache entries, open handles, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to one registered metric.
#[derive(Debug, Clone, Copy)]
pub enum Metric {
    /// A [`Counter`].
    Counter(&'static Counter),
    /// A [`Gauge`].
    Gauge(&'static Gauge),
    /// A [`Histogram`].
    Histogram(&'static Histogram),
}

fn metrics() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Intern `name` as a counter and return its `&'static` handle.
///
/// Takes the registry lock — call once and cache the handle; recording on
/// the handle is lock-free. Panics if `name` is already registered as a
/// different metric kind (a naming bug worth failing loudly on).
pub fn counter(name: &str) -> &'static Counter {
    match *metrics()
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} is already registered as a non-counter"),
    }
}

/// Intern `name` as a gauge (see [`counter`] for the contract).
pub fn gauge(name: &str) -> &'static Gauge {
    match *metrics()
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} is already registered as a non-gauge"),
    }
}

/// Intern `name` as a histogram (see [`counter`] for the contract).
pub fn histogram(name: &str) -> &'static Histogram {
    match *metrics()
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name:?} is already registered as a non-histogram"),
    }
}

/// The value of one metric inside a [`Snapshot`].
// The histogram variant is ~550 bytes, dwarfing the scalar variants, but
// snapshots are cold-path and `Copy` matters more to the diff/render code
// than the per-entry footprint — so no boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Full histogram state (diffable, quantile-queryable).
    Histogram(HistogramSnapshot),
}

/// An immutable point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    values: BTreeMap<String, MetricValue>,
}

/// Copy every registered metric. The copy is *fuzzy* under concurrency
/// (each metric is read atomically, but not the set as a whole) — the same
/// trade a Domino console `show statistics` makes.
pub fn snapshot() -> Snapshot {
    let g = metrics();
    let values = g
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(gg) => MetricValue::Gauge(gg.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            (name.clone(), v)
        })
        .collect();
    Snapshot { values }
}

impl Snapshot {
    /// Look up one metric by its registered name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// Counter value by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge level by name (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram state by name (empty when absent or not a histogram).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => HistogramSnapshot::default(),
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The activity between `earlier` and `self`: counters and histogram
    /// buckets subtract (saturating); gauges keep the later level (a level
    /// has no meaningful delta). Metrics registered after `earlier` appear
    /// with their full value.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(name, v)| {
                let d = match (v, earlier.values.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(was))) => {
                        MetricValue::Counter(now.saturating_sub(*was))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(was))) => {
                        MetricValue::Histogram(now.diff(was))
                    }
                    _ => *v,
                };
                (name.clone(), d)
            })
            .collect();
        Snapshot { values }
    }

    /// Render as a JSON object `{"name": value, ...}`; histograms render
    /// as `{"count": …, "sum": …, "max": …, "p50": …, "p95": …, "p99": …}`.
    /// (Serde is not available offline; the format is stable and append-
    /// only so the bench harness can parse it.)
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, v) in &self.values {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{name}\": "));
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&g.to_string()),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.p50(),
                    h.p95(),
                    h.p99()
                )),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read_back() {
        let c = counter("Test.Registry.Counter");
        c.add(5);
        assert_eq!(counter("Test.Registry.Counter").get(), c.get());
        let g = gauge("Test.Registry.Gauge");
        g.set(-3);
        assert_eq!(gauge("Test.Registry.Gauge").get(), -3);
        let h = histogram("Test.Registry.Hist");
        h.record(9);
        assert!(histogram("Test.Registry.Hist").count() >= 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("Test.Registry.KindClash");
        gauge("Test.Registry.KindClash");
    }

    #[test]
    fn concurrent_counter_is_exact() {
        // Satellite requirement: hammer one counter from 8 threads and
        // assert the exact total.
        let c = counter("Test.Registry.Hammer");
        let before = c.get();
        let threads = 8;
        let per_thread = 100_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, threads * per_thread);
    }

    #[test]
    fn snapshot_diff_round_trip() {
        let c = counter("Test.Snapshot.Work");
        let h = histogram("Test.Snapshot.Lat");
        let g = gauge("Test.Snapshot.Level");
        let s0 = snapshot();
        c.add(42);
        for v in [10u64, 20, 40] {
            h.record(v);
        }
        g.set(7);
        let s1 = snapshot();
        let d = s1.diff(&s0);
        assert_eq!(d.counter("Test.Snapshot.Work"), 42);
        assert_eq!(d.histogram("Test.Snapshot.Lat").count, 3);
        assert_eq!(d.histogram("Test.Snapshot.Lat").sum, 70);
        assert_eq!(d.gauge("Test.Snapshot.Level"), 7);
        // Round trip: diffing a snapshot against itself zeroes counters
        // and histogram counts but keeps gauge levels.
        let z = s1.diff(&s1);
        assert_eq!(z.counter("Test.Snapshot.Work"), 0);
        assert_eq!(z.histogram("Test.Snapshot.Lat").count, 0);
        assert_eq!(z.gauge("Test.Snapshot.Level"), 7);
        // JSON carries every name.
        let json = d.to_json();
        assert!(json.contains("\"Test.Snapshot.Work\": 42"));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn diff_when_counter_appears_to_reset_saturates_to_zero() {
        // A "reset" can't happen on a live counter (they only grow), but
        // it *does* happen when diffing snapshots from different runs or
        // against a hand-built baseline. The contract: saturate, never
        // wrap to a huge bogus delta.
        let mut newer = BTreeMap::new();
        newer.insert("Test.Reset.Work".to_string(), MetricValue::Counter(5));
        let newer = Snapshot { values: newer };
        let mut older = BTreeMap::new();
        older.insert("Test.Reset.Work".to_string(), MetricValue::Counter(50));
        let older = Snapshot { values: older };
        let d = newer.diff(&older);
        assert_eq!(d.counter("Test.Reset.Work"), 0, "must saturate, not wrap");
        // Histogram counts saturate the same way.
        let h_old = {
            let h = Histogram::new();
            for _ in 0..10 {
                h.record(100);
            }
            h.snapshot()
        };
        let h_new = {
            let h = Histogram::new();
            h.record(100);
            h.snapshot()
        };
        let mut newer = BTreeMap::new();
        newer.insert("Test.Reset.Lat".to_string(), MetricValue::Histogram(h_new));
        let mut older = BTreeMap::new();
        older.insert("Test.Reset.Lat".to_string(), MetricValue::Histogram(h_old));
        let d = (Snapshot { values: newer }).diff(&Snapshot { values: older });
        assert_eq!(d.histogram("Test.Reset.Lat").count, 0);
        assert_eq!(d.histogram("Test.Reset.Lat").p99(), 0, "no phantom samples");
    }

    #[test]
    fn diff_metric_registered_after_baseline_appears_in_full() {
        // Re-registration semantics: `counter()` on an existing name
        // returns the same handle (no reset), and a metric that did not
        // exist at the earlier snapshot diffs as its full value.
        let c1 = counter("Test.Rereg.Existing");
        c1.add(3);
        let s0 = snapshot();
        // "Re-register" under the same name: the same handle comes back,
        // with its value intact.
        let c2 = counter("Test.Rereg.Existing");
        assert!(std::ptr::eq(c1, c2), "re-registration returns the handle");
        assert_eq!(c2.get(), c1.get());
        c2.add(4);
        // A genuinely new metric, born after the baseline.
        counter("Test.Rereg.Fresh").add(9);
        let d = snapshot().diff(&s0);
        assert_eq!(d.counter("Test.Rereg.Existing"), 4);
        assert_eq!(
            d.counter("Test.Rereg.Fresh"),
            9,
            "a metric absent from the baseline diffs as its full value"
        );
        // A kind change under a name the baseline held as a counter also
        // passes through as the full later value (the `_ => *v` arm).
        let mut older = BTreeMap::new();
        older.insert("Test.Rereg.Kind".to_string(), MetricValue::Counter(7));
        let mut newer = BTreeMap::new();
        newer.insert("Test.Rereg.Kind".to_string(), MetricValue::Gauge(-2));
        let d = (Snapshot { values: newer }).diff(&Snapshot { values: older });
        assert_eq!(d.gauge("Test.Rereg.Kind"), -2);
    }
}
