//! Lightweight structured tracing: timing scopes and the slow-op log.
//!
//! A span is a named timing scope opened with [`crate::span!`] (or
//! [`enter`]/[`enter_timed`]) and closed when its [`SpanGuard`] drops.
//! Spans nest: each thread keeps a stack of active span names, so when an
//! operation turns out slow, the captured *span path*
//! (`Db.Save > Store.Put > BTree.Insert`) says where the time went — the
//! Domino server console's "slow transaction" log, reproduced.
//!
//! Hot-path cost: opening a span is a thread-local push + `Instant::now()`;
//! closing is a pop, an elapsed read, an optional lock-free histogram
//! record, and one relaxed atomic load to compare against the slow
//! threshold. Only an op *over* the threshold takes a lock (on the
//! fixed-size slow-op ring buffer) — the fast path allocates nothing and
//! locks nothing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::hist::Histogram;

/// Slow-op ring-buffer capacity: the newest entries win, as on a console.
pub const SLOW_LOG_CAPACITY: usize = 128;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Nanoseconds above which a finished span is captured into the slow-op
/// log. Defaults to 100 ms.
static SLOW_THRESHOLD_NANOS: AtomicU64 = AtomicU64::new(100_000_000);

/// One captured slow operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// Full span path at completion, outermost first, `>`-joined
    /// (e.g. `Db.Save > Store.Put`).
    pub path: String,
    /// Wall-clock duration of the finishing span, in nanoseconds.
    pub nanos: u64,
}

fn slow_log() -> &'static Mutex<VecDeque<SlowOp>> {
    static LOG: OnceLock<Mutex<VecDeque<SlowOp>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)))
}

/// Set the slow-op capture threshold. Zero captures every span (useful in
/// tests); `Duration::MAX` effectively disables capture.
pub fn set_slow_threshold(d: Duration) {
    let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
    SLOW_THRESHOLD_NANOS.store(nanos, Ordering::Relaxed);
}

/// Current slow-op capture threshold.
pub fn slow_threshold() -> Duration {
    Duration::from_nanos(SLOW_THRESHOLD_NANOS.load(Ordering::Relaxed))
}

/// Copy the slow-op log, newest last. The log keeps its entries.
pub fn slow_ops() -> Vec<SlowOp> {
    slow_log()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Drain the slow-op log, returning its entries newest last.
pub fn take_slow_ops() -> Vec<SlowOp> {
    slow_log()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .drain(..)
        .collect()
}

/// Open a span named `name`. Prefer the [`crate::span!`] macro.
pub fn enter(name: &'static str) -> SpanGuard {
    SpanGuard::new(name, None)
}

/// Open a span that also records its duration (in nanoseconds) into
/// `hist` when it closes.
pub fn enter_timed(name: &'static str, hist: &'static Histogram) -> SpanGuard {
    SpanGuard::new(name, Some(hist))
}

/// An active span; closing (dropping) it stops the clock.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    hist: Option<&'static Histogram>,
    /// Depth of this span on its thread's stack at open (1-based); used to
    /// detect out-of-order drops defensively.
    depth: usize,
}

impl SpanGuard {
    fn new(name: &'static str, hist: Option<&'static Histogram>) -> SpanGuard {
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len()
        });
        SpanGuard {
            name,
            start: Instant::now(),
            hist,
            depth,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        // Capture the path *before* popping so the finishing span appears
        // as the innermost element.
        if nanos >= SLOW_THRESHOLD_NANOS.load(Ordering::Relaxed) {
            let path =
                SPAN_STACK.with(|s| s.borrow()[..self.depth.min(s.borrow().len())].join(" > "));
            let mut log = slow_log().lock().unwrap_or_else(|p| p.into_inner());
            if log.len() == SLOW_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(SlowOp { path, nanos });
        }
        if let Some(h) = self.hist {
            h.record(nanos);
        }
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Normal case: we are the top of the stack. Guards dropped out
            // of order (possible across `mem::forget` games) just truncate.
            if s.len() >= self.depth {
                s.truncate(self.depth - 1);
            }
        });
    }
}

/// Current thread's span path, outermost first (empty when no span is
/// open). Diagnostic helper for error reporting.
pub fn current_path() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// Open a timing span: `span!("Db.Save")`, or
/// `span!("Db.Save", histogram_handle)` to also record the duration.
/// Bind the result (`let _span = span!(…);`) — an unbound guard drops
/// immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter($name)
    };
    ($name:expr, $hist:expr) => {
        $crate::enter_timed($name, $hist)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that move the process-wide threshold serialize on this.
    static THRESHOLD_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_unwind() {
        assert!(current_path().is_empty());
        let _a = enter("Test.Outer");
        assert_eq!(current_path(), vec!["Test.Outer"]);
        {
            let _b = enter("Test.Inner");
            assert_eq!(current_path(), vec!["Test.Outer", "Test.Inner"]);
        }
        assert_eq!(current_path(), vec!["Test.Outer"]);
    }

    #[test]
    fn timed_span_records_into_histogram() {
        static H: Histogram = Histogram::new();
        {
            let _s = enter_timed("Test.Timed", &H);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(H.count(), 1);
        assert!(H.max() >= 1_000_000, "recorded {} ns", H.max());
    }

    #[test]
    fn slow_ops_capture_span_path() {
        // Threshold zero: every span in this thread gets captured. Other
        // test threads may append too, so search rather than index.
        let _serial = THRESHOLD_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let old = slow_threshold();
        set_slow_threshold(Duration::ZERO);
        {
            let _a = enter("Test.Slow.Outer");
            let _b = enter("Test.Slow.Inner");
        }
        set_slow_threshold(old);
        let ops = slow_ops();
        assert!(
            ops.iter()
                .any(|o| o.path == "Test.Slow.Outer > Test.Slow.Inner"),
            "no captured path matched: {ops:?}"
        );
    }

    #[test]
    fn fast_ops_not_captured() {
        let _serial = THRESHOLD_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let old = slow_threshold();
        set_slow_threshold(Duration::from_secs(3600));
        let before = slow_ops().len();
        {
            let _s = enter("Test.Fast");
        }
        // No *new* capture from this span (other threads may race, so
        // just assert ours isn't there).
        let after = slow_ops();
        assert!(after.len() >= before);
        assert!(!after.iter().any(|o| o.path == "Test.Fast"));
        set_slow_threshold(old);
    }
}
