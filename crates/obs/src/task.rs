//! The server-task registry behind the `show tasks` console command.
//!
//! Every long-running background thread (checkpointer, agent manager,
//! logger, DDM probes) registers itself with [`register_task`] and beats
//! its heart each cycle with [`TaskHandle::beat`]. `show tasks` then
//! renders the live roster the way a Domino console does — task name,
//! state, and activity — so an operator can see at a glance what the
//! server is running. Dropping the handle removes the task from the
//! roster (a stopped task is not listed, as on Domino).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::event::process_nanos;

/// Shared state of one registered task.
struct TaskEntry {
    name: String,
    kind: &'static str,
    started_nanos: u64,
    beats: AtomicU64,
    last_beat_nanos: AtomicU64,
    status: Mutex<String>,
}

/// A point-in-time description of one live task (what [`tasks`] returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskInfo {
    /// Task name (`"logger"`, `"checkpointer:log"`, …).
    pub name: String,
    /// What kind of work it does (free-form static label).
    pub kind: &'static str,
    /// Monotonic nanos (event-bus clock) when it registered.
    pub started_nanos: u64,
    /// Completed work cycles.
    pub beats: u64,
    /// Monotonic nanos of the most recent beat (0 before the first).
    pub last_beat_nanos: u64,
    /// Latest free-form status line (`"Idle"` until the task says more).
    pub status: String,
}

/// Keeps a task on the roster while it lives; beat it once per cycle.
/// Dropping it (or the owning thread exiting with it) de-lists the task.
pub struct TaskHandle {
    entry: Arc<TaskEntry>,
}

impl TaskHandle {
    /// Record one completed work cycle.
    pub fn beat(&self) {
        self.entry.beats.fetch_add(1, Ordering::Relaxed);
        self.entry
            .last_beat_nanos
            .store(process_nanos(), Ordering::Relaxed);
    }

    /// Replace the task's status line.
    pub fn set_status(&self, status: &str) {
        *self.entry.status.lock().unwrap_or_else(|p| p.into_inner()) = status.to_string();
    }

    /// Cycles completed so far.
    pub fn beats(&self) -> u64 {
        self.entry.beats.load(Ordering::Relaxed)
    }
}

impl Drop for TaskHandle {
    fn drop(&mut self) {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.retain(|w| match w.upgrade() {
            Some(e) => !Arc::ptr_eq(&e, &self.entry),
            None => false,
        });
    }
}

fn registry() -> &'static Mutex<Vec<Weak<TaskEntry>>> {
    static REG: OnceLock<Mutex<Vec<Weak<TaskEntry>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a background task on the `show tasks` roster. Keep the
/// returned handle alive for the task's lifetime and [`TaskHandle::beat`]
/// it every cycle.
pub fn register_task(name: &str, kind: &'static str) -> TaskHandle {
    let entry = Arc::new(TaskEntry {
        name: name.to_string(),
        kind,
        started_nanos: process_nanos(),
        beats: AtomicU64::new(0),
        last_beat_nanos: AtomicU64::new(0),
        status: Mutex::new("Idle".to_string()),
    });
    registry()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(Arc::downgrade(&entry));
    TaskHandle { entry }
}

/// Snapshot the live task roster, in registration order.
pub fn tasks() -> Vec<TaskInfo> {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.retain(|w| w.strong_count() > 0);
    reg.iter()
        .filter_map(Weak::upgrade)
        .map(|e| TaskInfo {
            name: e.name.clone(),
            kind: e.kind,
            started_nanos: e.started_nanos,
            beats: e.beats.load(Ordering::Relaxed),
            last_beat_nanos: e.last_beat_nanos.load(Ordering::Relaxed),
            status: e.status.lock().unwrap_or_else(|p| p.into_inner()).clone(),
        })
        .collect()
}

/// The `show tasks` console dump.
pub fn show_tasks() -> String {
    let mut out = String::from("> show tasks\n");
    let roster = tasks();
    if roster.is_empty() {
        out.push_str("  (no background tasks running)\n");
        return out;
    }
    let now = process_nanos();
    for t in roster {
        let up_secs = now.saturating_sub(t.started_nanos) / 1_000_000_000;
        out.push_str(&format!(
            "  {:<24} {:<16} up {:>6}s  beats {:>8}  {}\n",
            t.name, t.kind, up_secs, t.beats, t.status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_beat_and_delist() {
        let h = register_task("test-task-alpha", "Test driver");
        h.beat();
        h.beat();
        h.set_status("ticking");
        let info = tasks()
            .into_iter()
            .find(|t| t.name == "test-task-alpha")
            .expect("registered task listed");
        assert_eq!(info.beats, 2);
        assert_eq!(info.status, "ticking");
        assert!(info.last_beat_nanos >= info.started_nanos);
        let dump = show_tasks();
        assert!(dump.starts_with("> show tasks\n"));
        assert!(dump.contains("test-task-alpha"));
        drop(h);
        assert!(!tasks().iter().any(|t| t.name == "test-task-alpha"));
    }
}
