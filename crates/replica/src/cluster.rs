//! Clustering: event-driven push replication (Domino R5 clusters).
//!
//! Scheduled replication leaves a staleness window — a failover replica is
//! only as fresh as the last replication pass. Cluster mates instead push
//! every change to each other *as it commits*, so a failover loses at most
//! the in-flight event. E12 measures exactly this difference.
//!
//! The cluster replicator subscribes to each member's change events and
//! applies them to the other members immediately. Echo suppression is by
//! version: an incoming note identical to the stored copy (same OID) is
//! skipped, so propagation terminates.

use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use domino_core::{same_revision, ChangeEvent, Database};
use domino_obs as obs;
use domino_types::Result;

/// Registry handles for cluster push telemetry.
struct Metrics {
    pushed: &'static obs::Counter,
    suppressed: &'static obs::Counter,
    dropped: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        pushed: obs::counter("Cluster.Events.Pushed"),
        suppressed: obs::counter("Cluster.Events.Suppressed"),
        dropped: obs::counter("Cluster.Events.DroppedWhilePaused"),
    })
}

/// Counters for cluster replication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Events pushed to peers.
    pub pushed: u64,
    /// Pushes skipped because the peer was already current (echoes).
    pub suppressed: u64,
    /// Pushes dropped because the cluster was paused (failover window).
    pub dropped_while_paused: u64,
}

struct ClusterInner {
    members: Vec<Weak<Database>>,
    paused: bool,
    stats: ClusterStats,
}

/// A cluster of replicas kept in lock-step by event-driven push.
pub struct Cluster {
    inner: Arc<Mutex<ClusterInner>>,
}

impl Cluster {
    /// Wire the members together. All must share a replica id.
    pub fn join(members: &[Arc<Database>]) -> Result<Cluster> {
        if let Some(first) = members.first() {
            for m in members {
                if m.replica_id() != first.replica_id() {
                    return Err(domino_types::DominoError::Replication(
                        "cluster members must share a replica id".into(),
                    ));
                }
            }
        }
        let inner = Arc::new(Mutex::new(ClusterInner {
            members: members.iter().map(Arc::downgrade).collect(),
            paused: false,
            stats: ClusterStats::default(),
        }));
        for (i, member) in members.iter().enumerate() {
            let inner = inner.clone();
            member.subscribe(Arc::new(move |event: &ChangeEvent| {
                push_to_peers(&inner, i, event);
            }));
        }
        Ok(Cluster { inner })
    }

    /// Stop pushing (simulates a cluster mate going unreachable).
    pub fn pause(&self) {
        self.inner.lock().paused = true;
    }

    /// Resume pushing. Catch-up for changes made while paused is the
    /// scheduled replicator's job, as in Domino (cluster replication is
    /// best-effort; replication repairs).
    pub fn resume(&self) {
        self.inner.lock().paused = false;
    }

    pub fn stats(&self) -> ClusterStats {
        self.inner.lock().stats
    }
}

fn push_to_peers(inner: &Arc<Mutex<ClusterInner>>, origin: usize, event: &ChangeEvent) {
    // Snapshot under lock; apply outside so nested events can re-enter.
    let (targets, paused) = {
        let g = inner.lock();
        (g.members.clone(), g.paused)
    };
    if paused {
        inner.lock().stats.dropped_while_paused += 1;
        m().dropped.inc();
        return;
    }
    for (i, peer) in targets.iter().enumerate() {
        if i == origin {
            continue;
        }
        let Some(peer) = peer.upgrade() else { continue };
        let applied = apply_event(&peer, event);
        let mut g = inner.lock();
        if applied {
            g.stats.pushed += 1;
            m().pushed.inc();
        } else {
            g.stats.suppressed += 1;
            m().suppressed.inc();
        }
    }
}

/// Apply one event to a peer; false if the peer was already current.
fn apply_event(peer: &Database, event: &ChangeEvent) -> bool {
    match event {
        ChangeEvent::Saved { new, .. } => {
            if let Some(id) = peer.id_of_unid(new.unid()).ok().flatten() {
                if let Ok(existing) = peer.open_note(id) {
                    if same_revision(&existing, new) {
                        return false; // echo
                    }
                    // The peer has a different revision; let the scheduled
                    // replicator arbitrate unless ours descends from it.
                }
            }
            peer.save_replicated(new.clone()).is_ok()
        }
        ChangeEvent::Deleted { stub, .. } => {
            if let Some(id) = peer.id_of_unid(stub.oid.unid).ok().flatten() {
                if let Ok(local_stub) = peer.open_stub(id) {
                    if local_stub.oid.winner_key() >= stub.oid.winner_key() {
                        return false; // already deleted
                    }
                }
            }
            matches!(peer.apply_remote_deletion(stub), Ok(Some(_)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::{DbConfig, Note};
    use domino_types::{LogicalClock, ReplicaId, Timestamp, Value};

    fn trio() -> (Vec<Arc<Database>>, Cluster) {
        let members: Vec<Arc<Database>> = (0..3)
            .map(|i| {
                Arc::new(
                    Database::open_in_memory(
                        DbConfig::new("C", ReplicaId(5), ReplicaId(200 + i)),
                        LogicalClock::starting_at(Timestamp(i * 7)),
                    )
                    .unwrap(),
                )
            })
            .collect();
        let cluster = Cluster::join(&members).unwrap();
        (members, cluster)
    }

    #[test]
    fn saves_push_to_all_members_immediately() {
        let (members, cluster) = trio();
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("hot"));
        members[0].save(&mut n).unwrap();
        for m in &members[1..] {
            let copy = m.open_by_unid(n.unid()).unwrap();
            assert_eq!(copy.get_text("Subject").unwrap(), "hot");
        }
        // 2 first-hop pushes; re-pushes from receivers were suppressed.
        let stats = cluster.stats();
        assert!(stats.pushed >= 2);
        assert!(stats.suppressed >= 2);
    }

    #[test]
    fn updates_and_deletes_propagate() {
        let (members, _cluster) = trio();
        let mut n = Note::document("Memo");
        members[0].save(&mut n).unwrap();
        let mut copy = members[1].open_by_unid(n.unid()).unwrap();
        copy.set("Subject", Value::text("edited on 1"));
        members[1].save(&mut copy).unwrap();
        assert_eq!(
            members[2]
                .open_by_unid(n.unid())
                .unwrap()
                .get_text("Subject")
                .unwrap(),
            "edited on 1"
        );
        let id2 = members[2].id_of_unid(n.unid()).unwrap().unwrap();
        members[2].delete(id2).unwrap();
        for m in &members {
            assert!(m.open_by_unid(n.unid()).is_err(), "deleted everywhere");
        }
    }

    #[test]
    fn pause_opens_a_staleness_window_resume_does_not_backfill() {
        let (members, cluster) = trio();
        let mut n = Note::document("Memo");
        members[0].save(&mut n).unwrap();
        cluster.pause();
        n.set("Subject", Value::text("missed"));
        members[0].save(&mut n).unwrap();
        cluster.resume();
        // Peers still have the old version (cluster push is best-effort;
        // scheduled replication repairs).
        let copy = members[1].open_by_unid(n.unid()).unwrap();
        assert!(copy.get_text("Subject").is_none());
        assert!(cluster.stats().dropped_while_paused >= 1);
        // Scheduled replication heals the gap.
        let mut r = crate::Replicator::new(crate::ReplicationOptions::default());
        r.sync(&members[0], &members[1]).unwrap();
        assert_eq!(
            members[1]
                .open_by_unid(n.unid())
                .unwrap()
                .get_text("Subject")
                .unwrap(),
            "missed"
        );
    }
}
