//! Clustering: event-driven push replication (Domino R5 clusters).
//!
//! Scheduled replication leaves a staleness window — a failover replica is
//! only as fresh as the last replication pass. Cluster mates instead push
//! every change to each other *as it commits*, so a failover loses at most
//! the in-flight event. E12 measures exactly this difference.
//!
//! The cluster replicator subscribes to each member's change events and
//! applies them to the other members immediately. Echo suppression is by
//! version: an incoming note identical to the stored copy (same OID) is
//! skipped, so propagation terminates.
//!
//! # The failover-window contract
//!
//! While a cluster is [paused](Cluster::pause) (a mate unreachable),
//! events enter a **bounded catch-up queue** instead of being pushed, and
//! [`Cluster::resume`] drains the queue in commit order — so a paused
//! window shorter than the queue capacity loses *nothing*. Once the queue
//! overflows, the oldest queued events are evicted and counted in
//! [`ClusterStats::dropped_while_paused`]; from then on
//! [`ClusterStats::lossy`] reports `true` and the cluster alone no longer
//! guarantees convergence — a scheduled replication pass (the
//! [`Replicator`](crate::Replicator)) must repair the gap, exactly as in
//! Domino, where cluster replication is best-effort and the replicator is
//! the backstop. Operators should treat `lossy() == true` after a failover
//! as "run (or wait for) a scheduled pull before trusting this mate".

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use domino_core::{same_revision, ChangeEvent, Database};
use domino_obs as obs;
use domino_types::Result;

/// Registry handles for cluster push telemetry.
struct Metrics {
    pushed: &'static obs::Counter,
    suppressed: &'static obs::Counter,
    dropped: &'static obs::Counter,
    queued: &'static obs::Counter,
    drained: &'static obs::Counter,
    overflow: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        pushed: obs::counter("Cluster.Events.Pushed"),
        suppressed: obs::counter("Cluster.Events.Suppressed"),
        dropped: obs::counter("Cluster.Events.DroppedWhilePaused"),
        queued: obs::counter("Cluster.CatchUp.Queued"),
        drained: obs::counter("Cluster.CatchUp.Drained"),
        overflow: obs::counter("Cluster.CatchUp.Overflow"),
    })
}

/// Counters for cluster replication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Events pushed to peers.
    pub pushed: u64,
    /// Pushes skipped because the peer was already current (echoes).
    pub suppressed: u64,
    /// Events lost to catch-up queue overflow while paused. Nonzero means
    /// the failover window exceeded the queue: see [`ClusterStats::lossy`].
    pub dropped_while_paused: u64,
    /// Events parked in the catch-up queue while paused.
    pub queued_while_paused: u64,
    /// Queued events replayed to peers by [`Cluster::resume`].
    pub drained: u64,
}

impl ClusterStats {
    /// Has this cluster ever lost an event (catch-up queue overflow during
    /// a pause)? When true, event push alone no longer guarantees the
    /// mates converge — schedule a replication pass to repair before
    /// trusting a failover member.
    pub fn lossy(&self) -> bool {
        self.dropped_while_paused > 0
    }
}

/// Default bound on the catch-up queue (events held during a pause).
pub const DEFAULT_CATCH_UP_CAPACITY: usize = 1024;

struct ClusterInner {
    members: Vec<Weak<Database>>,
    paused: bool,
    catch_up: VecDeque<(usize, ChangeEvent)>,
    capacity: usize,
    stats: ClusterStats,
}

/// A cluster of replicas kept in lock-step by event-driven push.
pub struct Cluster {
    inner: Arc<Mutex<ClusterInner>>,
}

impl Cluster {
    /// Wire the members together with the default catch-up queue bound.
    /// All members must share a replica id.
    pub fn join(members: &[Arc<Database>]) -> Result<Cluster> {
        Cluster::join_with_capacity(members, DEFAULT_CATCH_UP_CAPACITY)
    }

    /// Wire the members together, holding at most `capacity` events in the
    /// catch-up queue while paused (0 = queue nothing: every paused event
    /// is dropped and the cluster turns lossy immediately).
    pub fn join_with_capacity(members: &[Arc<Database>], capacity: usize) -> Result<Cluster> {
        if let Some(first) = members.first() {
            for m in members {
                if m.replica_id() != first.replica_id() {
                    return Err(domino_types::DominoError::Replication(
                        "cluster members must share a replica id".into(),
                    ));
                }
            }
        }
        let inner = Arc::new(Mutex::new(ClusterInner {
            members: members.iter().map(Arc::downgrade).collect(),
            paused: false,
            catch_up: VecDeque::new(),
            capacity,
            stats: ClusterStats::default(),
        }));
        for (i, member) in members.iter().enumerate() {
            let inner = inner.clone();
            member.subscribe(Arc::new(move |event: &ChangeEvent| {
                push_to_peers(&inner, i, event);
            }));
        }
        Ok(Cluster { inner })
    }

    /// Stop pushing (simulates a cluster mate going unreachable). Events
    /// made while paused queue up to the catch-up capacity.
    pub fn pause(&self) {
        let mut g = self.inner.lock();
        g.paused = true;
        obs::emit(
            obs::Event::new(
                obs::EventKind::Replica,
                obs::Severity::Warning,
                "Cluster.Paused",
            )
            .with("members", g.members.len())
            .with("capacity", g.capacity),
        );
    }

    /// Resume pushing and drain the catch-up queue in commit order.
    /// Returns how many queued events were replayed. If the queue
    /// overflowed during the pause ([`ClusterStats::lossy`]), the drained
    /// tail is still applied but a scheduled replication pass is required
    /// to repair the evicted head.
    pub fn resume(&self) -> u64 {
        let backlog: Vec<(usize, ChangeEvent)> = {
            let mut g = self.inner.lock();
            g.paused = false;
            g.catch_up.drain(..).collect()
        };
        let n = backlog.len() as u64;
        for (origin, event) in backlog {
            push_to_peers(&self.inner, origin, &event);
        }
        if n > 0 {
            self.inner.lock().stats.drained += n;
            m().drained.add(n);
        }
        let lossy = self.inner.lock().stats.lossy();
        obs::emit(
            obs::Event::new(
                obs::EventKind::Replica,
                if lossy {
                    obs::Severity::Warning
                } else {
                    obs::Severity::Info
                },
                "Cluster.Resumed",
            )
            .with("drained", n)
            .with("lossy", u64::from(lossy)),
        );
        n
    }

    /// Events currently parked in the catch-up queue.
    pub fn backlog(&self) -> usize {
        self.inner.lock().catch_up.len()
    }

    /// A snapshot of this cluster's counters.
    pub fn stats(&self) -> ClusterStats {
        self.inner.lock().stats
    }
}

/// Announce the catch-up queue going lossy. Only the *first* eviction gets
/// an event — a long outage evicts once per commit, and a thousand copies
/// of "still overflowing" would bury the one that matters.
fn emit_overflow(stats: &ClusterStats, capacity: usize) {
    if stats.dropped_while_paused == 1 {
        obs::emit(
            obs::Event::new(
                obs::EventKind::Replica,
                obs::Severity::Warning,
                "Cluster.CatchUp.Overflow",
            )
            .with("capacity", capacity),
        );
    }
}

fn push_to_peers(inner: &Arc<Mutex<ClusterInner>>, origin: usize, event: &ChangeEvent) {
    // Snapshot under lock; apply outside so nested events can re-enter.
    let targets = {
        let mut g = inner.lock();
        if g.paused {
            // Unreachable mate: park the event for catch-up instead of
            // losing it. A full queue evicts the oldest event (the tail
            // is the freshest state) and the cluster becomes lossy.
            if g.capacity == 0 {
                g.stats.dropped_while_paused += 1;
                m().dropped.inc();
                m().overflow.inc();
                emit_overflow(&g.stats, g.capacity);
                return;
            }
            if g.catch_up.len() >= g.capacity {
                g.catch_up.pop_front();
                g.stats.dropped_while_paused += 1;
                m().dropped.inc();
                m().overflow.inc();
                emit_overflow(&g.stats, g.capacity);
            }
            g.catch_up.push_back((origin, event.clone()));
            g.stats.queued_while_paused += 1;
            m().queued.inc();
            return;
        }
        g.members.clone()
    };
    for (i, peer) in targets.iter().enumerate() {
        if i == origin {
            continue;
        }
        let Some(peer) = peer.upgrade() else { continue };
        let applied = apply_event(&peer, event);
        let mut g = inner.lock();
        if applied {
            g.stats.pushed += 1;
            m().pushed.inc();
        } else {
            g.stats.suppressed += 1;
            m().suppressed.inc();
        }
    }
}

/// Apply one event to a peer; false if the peer was already current.
fn apply_event(peer: &Database, event: &ChangeEvent) -> bool {
    match event {
        ChangeEvent::Saved { new, .. } => {
            if let Some(id) = peer.id_of_unid(new.unid()).ok().flatten() {
                if let Ok(existing) = peer.open_note(id) {
                    if same_revision(&existing, new) {
                        return false; // echo
                    }
                    // The peer has a different revision; let the scheduled
                    // replicator arbitrate unless ours descends from it.
                }
            }
            peer.save_replicated(new.clone()).is_ok()
        }
        ChangeEvent::Deleted { stub, .. } => {
            if let Some(id) = peer.id_of_unid(stub.oid.unid).ok().flatten() {
                if let Ok(local_stub) = peer.open_stub(id) {
                    if local_stub.oid.winner_key() >= stub.oid.winner_key() {
                        return false; // already deleted
                    }
                }
            }
            matches!(peer.apply_remote_deletion(stub), Ok(Some(_)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::{DbConfig, Note};
    use domino_types::{LogicalClock, ReplicaId, Timestamp, Value};

    fn trio() -> (Vec<Arc<Database>>, Cluster) {
        trio_with_capacity(DEFAULT_CATCH_UP_CAPACITY)
    }

    fn trio_with_capacity(cap: usize) -> (Vec<Arc<Database>>, Cluster) {
        let members: Vec<Arc<Database>> = (0..3)
            .map(|i| {
                Arc::new(
                    Database::open_in_memory(
                        DbConfig::new("C", ReplicaId(5), ReplicaId(200 + i)),
                        LogicalClock::starting_at(Timestamp(i * 7)),
                    )
                    .unwrap(),
                )
            })
            .collect();
        let cluster = Cluster::join_with_capacity(&members, cap).unwrap();
        (members, cluster)
    }

    #[test]
    fn saves_push_to_all_members_immediately() {
        let (members, cluster) = trio();
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("hot"));
        members[0].save(&mut n).unwrap();
        for m in &members[1..] {
            let copy = m.open_by_unid(n.unid()).unwrap();
            assert_eq!(copy.get_text("Subject").unwrap(), "hot");
        }
        // 2 first-hop pushes; re-pushes from receivers were suppressed.
        let stats = cluster.stats();
        assert!(stats.pushed >= 2);
        assert!(stats.suppressed >= 2);
    }

    #[test]
    fn updates_and_deletes_propagate() {
        let (members, _cluster) = trio();
        let mut n = Note::document("Memo");
        members[0].save(&mut n).unwrap();
        let mut copy = members[1].open_by_unid(n.unid()).unwrap();
        copy.set("Subject", Value::text("edited on 1"));
        members[1].save(&mut copy).unwrap();
        assert_eq!(
            members[2]
                .open_by_unid(n.unid())
                .unwrap()
                .get_text("Subject")
                .unwrap(),
            "edited on 1"
        );
        let id2 = members[2].id_of_unid(n.unid()).unwrap().unwrap();
        members[2].delete(id2).unwrap();
        for m in &members {
            assert!(m.open_by_unid(n.unid()).is_err(), "deleted everywhere");
        }
    }

    #[test]
    fn paused_events_queue_and_resume_drains_them() {
        let (members, cluster) = trio();
        let mut n = Note::document("Memo");
        members[0].save(&mut n).unwrap();
        cluster.pause();
        n.set("Subject", Value::text("parked"));
        members[0].save(&mut n).unwrap();
        // While paused: peers are stale, the event is parked, not lost.
        let copy = members[1].open_by_unid(n.unid()).unwrap();
        assert!(copy.get_text("Subject").is_none());
        assert_eq!(cluster.backlog(), 1);
        assert!(!cluster.stats().lossy());
        // Resume replays the backlog in order: no replication pass needed.
        let drained = cluster.resume();
        assert!(drained >= 1);
        assert_eq!(cluster.backlog(), 0);
        assert_eq!(
            members[1]
                .open_by_unid(n.unid())
                .unwrap()
                .get_text("Subject")
                .unwrap(),
            "parked"
        );
        let stats = cluster.stats();
        assert_eq!(stats.queued_while_paused, 1);
        assert_eq!(stats.drained, 1);
        assert_eq!(stats.dropped_while_paused, 0);
    }

    #[test]
    fn overflow_turns_lossy_and_scheduled_replication_repairs() {
        let (members, cluster) = trio_with_capacity(2);
        cluster.pause();
        let mut notes = Vec::new();
        for i in 0..5 {
            let mut n = Note::document("Memo");
            n.set("Subject", Value::text(format!("m{i}")));
            members[0].save(&mut n).unwrap();
            notes.push(n);
        }
        // Capacity 2: three oldest events evicted, flagged lossy.
        assert_eq!(cluster.backlog(), 2);
        assert!(cluster.stats().lossy());
        assert_eq!(cluster.stats().dropped_while_paused, 3);
        cluster.resume();
        // The drained tail arrived...
        assert!(members[1].open_by_unid(notes[4].unid()).is_ok());
        // ...but the evicted head did not: the documented contract is that
        // a scheduled replication pass repairs a lossy window.
        assert!(members[1].open_by_unid(notes[0].unid()).is_err());
        let mut r = crate::Replicator::new(crate::ReplicationOptions::default());
        r.sync(&members[0], &members[1]).unwrap();
        for n in &notes {
            assert!(members[1].open_by_unid(n.unid()).is_ok());
        }
    }

    #[test]
    fn zero_capacity_drops_everything_while_paused() {
        let (members, cluster) = trio_with_capacity(0);
        cluster.pause();
        let mut n = Note::document("Memo");
        members[0].save(&mut n).unwrap();
        assert_eq!(cluster.backlog(), 0);
        assert!(cluster.stats().lossy());
        assert_eq!(cluster.resume(), 0);
        assert!(members[1].open_by_unid(n.unid()).is_err());
    }
}
