//! Conflict documents.
//!
//! When both replicas edited a note between syncs, the copy with the
//! lower `(seq, seq_time)` loses. The loser is preserved as a *conflict
//! document*: a response to the winner carrying a `$Conflict` item — no
//! update is ever silently discarded.
//!
//! Both sides of a conflicting pair detect the conflict independently, so
//! the conflict document's identity must be *deterministic*: its UNID is
//! derived from the original note's UNID and the loser's version stamp.
//! Both replicas therefore mint the *same* conflict document, which then
//! deduplicates by UNID when it replicates.

use domino_core::{Note, ITEM_CONFLICT};
use domino_types::{Oid, Timestamp, Unid, Value};

/// Deterministic UNID for the conflict document preserving `loser`.
pub fn conflict_unid(original: Unid, loser_seq: u32, loser_time: Timestamp) -> Unid {
    // FNV-1a over the identifying fields, widened to 128 bits.
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    let mut mix = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u128;
            h = h.wrapping_mul(0x0000000001000000000000000000013B);
        }
    };
    mix(&original.0.to_le_bytes());
    mix(&loser_seq.to_le_bytes());
    mix(&loser_time.0.to_le_bytes());
    mix(b"$Conflict");
    Unid(h)
}

/// Build the conflict document for `loser` (a copy of the losing revision,
/// parented under the surviving note).
pub fn make_conflict_document(loser: &Note) -> Note {
    let mut doc = loser.clone();
    doc.id = domino_types::NoteId::NONE;
    let unid = conflict_unid(loser.unid(), loser.oid.seq, loser.oid.seq_time);
    doc.oid = Oid {
        unid,
        seq: 1,
        seq_time: loser.oid.seq_time,
    };
    doc.set_parent(loser.unid());
    doc.set(ITEM_CONFLICT, Value::text("1"));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_types::NoteId;

    fn loser() -> Note {
        let mut n = Note::document("Memo");
        n.id = NoteId(5);
        n.oid = Oid {
            unid: Unid(42),
            seq: 3,
            seq_time: Timestamp(30),
        };
        n.set("Subject", Value::text("my edit"));
        n
    }

    #[test]
    fn conflict_unid_deterministic_and_distinct() {
        let a = conflict_unid(Unid(42), 3, Timestamp(30));
        let b = conflict_unid(Unid(42), 3, Timestamp(30));
        assert_eq!(a, b);
        assert_ne!(a, conflict_unid(Unid(42), 4, Timestamp(30)));
        assert_ne!(a, conflict_unid(Unid(42), 3, Timestamp(31)));
        assert_ne!(a, conflict_unid(Unid(43), 3, Timestamp(30)));
        assert_ne!(a, Unid(42));
    }

    #[test]
    fn conflict_document_shape() {
        let l = loser();
        let c = make_conflict_document(&l);
        assert!(c.is_draft() || c.id.is_none());
        assert!(c.is_conflict());
        assert_eq!(c.parent(), Some(Unid(42)));
        assert_eq!(c.get_text("Subject").unwrap(), "my edit");
        assert_ne!(c.unid(), l.unid());
        assert_eq!(c.oid.seq, 1);
        // Built twice (on two replicas), it is the same document.
        let c2 = make_conflict_document(&l);
        assert_eq!(c2.unid(), c.unid());
        assert_eq!(c2.oid, c.oid);
    }
}
