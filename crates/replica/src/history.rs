//! Replication history: the per-peer incremental cutoff.
//!
//! After each successful pull the replicator records the source's clock
//! reading from the *start* of that pull. The next pull examines only
//! notes whose sequence time is at or after that cutoff — this is what
//! makes replication cost proportional to change volume, not database
//! size (measured in E6).
//!
//! History lives with the replicator instance (a substitution from
//! Domino, which persists it in the database header; see DESIGN.md §2 —
//! the incremental behaviour being measured is identical). Clearing the
//! history forces a full compare, exactly like Domino's
//! "clear replication history" recovery action.

use std::collections::HashMap;

use domino_types::{ReplicaId, Timestamp};

/// Cutoffs per `(destination instance, source instance)` pair. One
/// replicator may serve many replica pairs; each direction of each pair
/// keeps its own cutoff (as each Domino server does per database pair).
#[derive(Debug, Clone, Default)]
pub struct ReplicationHistory {
    last_pull: HashMap<(ReplicaId, ReplicaId), Timestamp>,
}

impl ReplicationHistory {
    /// An empty history: every pair starts with a full compare.
    pub fn new() -> ReplicationHistory {
        ReplicationHistory::default()
    }

    /// Cutoff for `dst` pulling from `src` (ZERO = never synced → full
    /// compare).
    pub fn cutoff(&self, dst: ReplicaId, src: ReplicaId) -> Timestamp {
        self.last_pull
            .get(&(dst, src))
            .copied()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Record a successful pull into `dst` from `src` that started at
    /// `when` (on the source's clock).
    pub fn record(&mut self, dst: ReplicaId, src: ReplicaId, when: Timestamp) {
        let e = self.last_pull.entry((dst, src)).or_insert(Timestamp::ZERO);
        if when > *e {
            *e = when;
        }
    }

    /// Forget everything (force full compares).
    pub fn clear(&mut self) {
        self.last_pull.clear();
    }

    /// Recorded `(dst, src)` pairs — the history's memory footprint. A
    /// replicator serving a long-lived hub accumulates one entry per
    /// direction per peer; [`forget`](ReplicationHistory::forget) prunes
    /// the entries of decommissioned instances so the map stays bounded
    /// by the *live* peer set.
    pub fn len(&self) -> usize {
        self.last_pull.len()
    }

    /// True when no pulls have been recorded.
    pub fn is_empty(&self) -> bool {
        self.last_pull.is_empty()
    }

    /// Drop every cutoff involving `instance` (as destination or source).
    /// The next pull touching that instance starts with a full compare —
    /// safe, exactly like clearing history, but scoped to one peer.
    pub fn forget(&mut self, instance: ReplicaId) {
        self.last_pull
            .retain(|(dst, src), _| *dst != instance && *src != instance);
    }

    /// All (dst, src) pairs with recorded history.
    pub fn pairs(&self) -> Vec<(ReplicaId, ReplicaId)> {
        let mut v: Vec<(ReplicaId, ReplicaId)> = self.last_pull.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_pair_has_zero_cutoff() {
        let h = ReplicationHistory::new();
        assert_eq!(h.cutoff(ReplicaId(9), ReplicaId(8)), Timestamp::ZERO);
    }

    #[test]
    fn record_advances_monotonically() {
        let mut h = ReplicationHistory::new();
        h.record(ReplicaId(1), ReplicaId(2), Timestamp(100));
        assert_eq!(h.cutoff(ReplicaId(1), ReplicaId(2)), Timestamp(100));
        h.record(ReplicaId(1), ReplicaId(2), Timestamp(50));
        assert_eq!(
            h.cutoff(ReplicaId(1), ReplicaId(2)),
            Timestamp(100),
            "never regresses"
        );
        h.record(ReplicaId(1), ReplicaId(2), Timestamp(200));
        assert_eq!(h.cutoff(ReplicaId(1), ReplicaId(2)), Timestamp(200));
    }

    #[test]
    fn directions_are_independent() {
        let mut h = ReplicationHistory::new();
        h.record(ReplicaId(1), ReplicaId(2), Timestamp(100));
        assert_eq!(h.cutoff(ReplicaId(2), ReplicaId(1)), Timestamp::ZERO);
    }

    #[test]
    fn destinations_are_independent() {
        let mut h = ReplicationHistory::new();
        h.record(ReplicaId(1), ReplicaId(9), Timestamp(100));
        assert_eq!(
            h.cutoff(ReplicaId(2), ReplicaId(9)),
            Timestamp::ZERO,
            "a second destination pulling from the same source starts fresh"
        );
    }

    #[test]
    fn forget_prunes_one_instance_only() {
        let mut h = ReplicationHistory::new();
        h.record(ReplicaId(1), ReplicaId(2), Timestamp(100));
        h.record(ReplicaId(2), ReplicaId(1), Timestamp(100));
        h.record(ReplicaId(1), ReplicaId(3), Timestamp(100));
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        h.forget(ReplicaId(2));
        assert_eq!(h.len(), 1, "both directions involving 2 dropped");
        assert_eq!(h.cutoff(ReplicaId(1), ReplicaId(3)), Timestamp(100));
        assert_eq!(h.cutoff(ReplicaId(1), ReplicaId(2)), Timestamp::ZERO);
        assert_eq!(h.cutoff(ReplicaId(2), ReplicaId(1)), Timestamp::ZERO);
    }

    #[test]
    fn clear_resets() {
        let mut h = ReplicationHistory::new();
        h.record(ReplicaId(1), ReplicaId(2), Timestamp(100));
        h.record(ReplicaId(2), ReplicaId(1), Timestamp(100));
        assert_eq!(h.pairs().len(), 2);
        h.clear();
        assert_eq!(h.cutoff(ReplicaId(1), ReplicaId(2)), Timestamp::ZERO);
        assert!(h.pairs().is_empty());
    }
}
