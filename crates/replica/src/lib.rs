//! Multi-master replication — the defining Notes capability.
//!
//! Replication is *pairwise and pull-based*: a replicator pulls changes
//! from a source database into a destination, using a per-peer
//! [`history`] cutoff so only notes modified since the last successful
//! sync are examined. Updates ship either whole documents (R3 style) or
//! only changed fields (R4 style); concurrent edits are never merged
//! silently — the loser becomes a `$Conflict` *response document* of the
//! winner, deterministically on both sides so conflict documents
//! themselves converge. Deletions travel as stubs; purge-interval
//! interactions are reproduced faithfully (experiment E8).
//!
//! [`cluster`] implements the R5 clustering variant: event-driven push
//! replication that keeps failover replicas nearly current.
//!
//! Replication survives unreliable networks: passes stream candidates in
//! bounded batches through a [`Transport`], an interrupted pull keeps a
//! resumable cursor (the history cutoff never advances past what was
//! durably applied), and [`Replicator::pull_with_retry`] rides out
//! transient faults with bounded exponential backoff:
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note};
//! use domino_replica::{
//!     ReplicationOptions, Replicator, RetryPolicy, ScriptedTransport,
//! };
//! use domino_types::{LogicalClock, ReplicaId, Timestamp, Value};
//!
//! let office = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Disc", ReplicaId(7), ReplicaId(1)), LogicalClock::new()).unwrap());
//! let laptop = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Disc", ReplicaId(7), ReplicaId(2)),
//!     LogicalClock::starting_at(Timestamp(500))).unwrap());
//! for i in 0..10 {
//!     let mut memo = Note::document("Memo");
//!     memo.set("Subject", Value::text(format!("memo {i}")));
//!     office.save(&mut memo).unwrap();
//! }
//!
//! // A dial-up link that loses the first two messages of the pass:
//! let mut flaky = ScriptedTransport::failing_at(vec![0, 2]);
//! let mut replicator = Replicator::new(ReplicationOptions { batch: 4, ..Default::default() });
//! let (report, retries) = replicator
//!     .pull_with_retry(&laptop, &office, &mut flaky, &RetryPolicy::standard())
//!     .unwrap();
//! assert_eq!(report.added, 10);          // everything arrived anyway
//! assert_eq!(retries.attempts, 3);       // two interruptions, two resumes
//! assert!(!replicator.has_pending());    // no cursor left behind
//! ```
//!
//! A plain reliable sync stays one call:
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note};
//! use domino_replica::{ReplicationOptions, Replicator};
//! use domino_types::{LogicalClock, ReplicaId, Timestamp, Value};
//!
//! // Two replicas share a replica id but have distinct instance ids.
//! let office = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Disc", ReplicaId(7), ReplicaId(1)), LogicalClock::new()).unwrap());
//! let laptop = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Disc", ReplicaId(7), ReplicaId(2)),
//!     LogicalClock::starting_at(Timestamp(500))).unwrap());
//!
//! let mut memo = Note::document("Memo");
//! memo.set("Subject", Value::text("hello"));
//! office.save(&mut memo).unwrap();
//!
//! let mut replicator = Replicator::new(ReplicationOptions::default());
//! replicator.sync(&office, &laptop).unwrap();
//! assert_eq!(
//!     laptop.open_by_unid(memo.unid()).unwrap().get_text("Subject").unwrap(),
//!     "hello",
//! );
//! ```

#![deny(missing_docs)]

pub mod cluster;
pub mod conflict;
pub mod history;
pub mod replicator;
pub mod transport;

pub use cluster::{Cluster, ClusterStats, DEFAULT_CATCH_UP_CAPACITY};
pub use conflict::conflict_unid;
pub use history::ReplicationHistory;
pub use replicator::{
    replicate, PullCursor, PurgeSafety, ReplicationOptions, ReplicationReport, Replicator,
};
pub use transport::{
    splitmix64, CleanTransport, RetryPolicy, RetryStats, ScriptedTransport, Transport,
};
