//! Multi-master replication — the defining Notes capability.
//!
//! Replication is *pairwise and pull-based*: a replicator pulls changes
//! from a source database into a destination, using a per-peer
//! [`history`] cutoff so only notes modified since the last successful
//! sync are examined. Updates ship either whole documents (R3 style) or
//! only changed fields (R4 style); concurrent edits are never merged
//! silently — the loser becomes a `$Conflict` *response document* of the
//! winner, deterministically on both sides so conflict documents
//! themselves converge. Deletions travel as stubs; purge-interval
//! interactions are reproduced faithfully (experiment E8).
//!
//! [`cluster`] implements the R5 clustering variant: event-driven push
//! replication that keeps failover replicas nearly current.
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note};
//! use domino_replica::{ReplicationOptions, Replicator};
//! use domino_types::{LogicalClock, ReplicaId, Timestamp, Value};
//!
//! // Two replicas share a replica id but have distinct instance ids.
//! let office = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Disc", ReplicaId(7), ReplicaId(1)), LogicalClock::new()).unwrap());
//! let laptop = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Disc", ReplicaId(7), ReplicaId(2)),
//!     LogicalClock::starting_at(Timestamp(500))).unwrap());
//!
//! let mut memo = Note::document("Memo");
//! memo.set("Subject", Value::text("hello"));
//! office.save(&mut memo).unwrap();
//!
//! let mut replicator = Replicator::new(ReplicationOptions::default());
//! replicator.sync(&office, &laptop).unwrap();
//! assert_eq!(
//!     laptop.open_by_unid(memo.unid()).unwrap().get_text("Subject").unwrap(),
//!     "hello",
//! );
//! ```

pub mod cluster;
pub mod conflict;
pub mod history;
pub mod replicator;

pub use cluster::Cluster;
pub use conflict::conflict_unid;
pub use history::ReplicationHistory;
pub use replicator::{replicate, PurgeSafety, ReplicationOptions, ReplicationReport, Replicator};
