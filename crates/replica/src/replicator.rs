//! The pull replicator.
//!
//! `pull(dst ← src)` examines every note whose sequence time on `src` is
//! at or after the history cutoff and brings `dst` up to date:
//!
//! * unseen UNIDs are added; unchanged ones are skipped,
//! * ancestry is decided from the notes' `$Revisions` lineage: if one
//!   copy's lineage contains the other's current revision fingerprint,
//!   the descendant wins cleanly,
//! * divergent copies (neither descends from the other) are *conflicts*:
//!   with `merge_conflicts` on and disjoint field edits, the copies merge
//!   field-wise; otherwise the loser is preserved as a deterministic
//!   `$Conflict` response document,
//! * deletion stubs propagate deletions (a newer local edit outranks an
//!   older deletion and vice versa, by `(seq, seq_time)`),
//! * a selective-replication formula restricts which documents travel,
//! * bandwidth is accounted either whole-document (R3) or changed-fields
//!   (R4), the comparison E5 measures.
//!
//! Passes are *resumable*: candidates stream in `(seq_time, unid)` order
//! through a bounded batch cursor ([`PullCursor`]), one
//! [`Transport`] message per batch. If the transport fails mid-pass the
//! cursor survives with the position of the last durably applied
//! candidate, and the history cutoff does **not** advance — a later
//! attempt (or [`Replicator::pull_with_retry`]) resumes from the cursor
//! instead of restarting, so progress over a flaky link is monotone.
//!
//! With [`ReplicationOptions::negotiate`] on (the default), candidate
//! enumeration is *digest-negotiated* instead of cutoff-scanned: the
//! destination ships its Merkle root (16 bytes); on mismatch its bucket
//! digests; the source descends only into differing buckets and
//! enumerates only notes whose content-addressed head hash actually
//! differs. Two converged replicas exchange one root and stop — no
//! shared history needed — so a cold-start pair (cleared history, or an
//! ad-hoc pass that never kept any) diffs in O(buckets + changed) rather
//! than re-examining every note. Ancestry itself is decided from the
//! unbounded `$RevisionHashes` chain when present, so a replica any
//! number of revisions behind still proves clean descent (the bounded
//! `$Revisions` fingerprints remain as a fallback for chainless notes).

use std::collections::HashMap;
use std::sync::OnceLock;

use domino_core::{
    chain_contains, content_hash_of, latest_common, merged_chain, push_head, revision_chain,
    revision_head, same_revision, set_chain, ChangedNote, Database, Note, ITEM_REVISIONS,
    ITEM_REVISION_HASHES, MAX_REVISIONS,
};
use domino_formula::{EvalEnv, Formula};
use domino_obs as obs;
use domino_types::{Clock, ContentHash, DominoError, Item, ReplicaId, Result, Timestamp, Unid};

use crate::conflict::make_conflict_document;
use crate::history::ReplicationHistory;
use crate::transport::{CleanTransport, RetryPolicy, RetryStats, Transport};

/// Registry handles for replication telemetry, recorded once per pull
/// from the finished [`ReplicationReport`] (the pass itself accounts
/// into the report; mirroring at the end keeps the inner loop clean).
struct Metrics {
    passes: &'static obs::Counter,
    notes_pushed: &'static obs::Counter,
    bytes_shipped: &'static obs::Counter,
    conflicts: &'static obs::Counter,
    deletions: &'static obs::Counter,
    pass_candidates: &'static obs::Histogram,
    interrupted: &'static obs::Counter,
    resumed: &'static obs::Counter,
    retry_attempts: &'static obs::Counter,
    retry_backoff_ticks: &'static obs::Counter,
    retry_exhausted: &'static obs::Counter,
    negotiations: &'static obs::Counter,
    root_matches: &'static obs::Counter,
    buckets_differing: &'static obs::Counter,
    negotiation_bytes: &'static obs::Counter,
    negotiated_candidates: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        passes: obs::counter("Replica.Passes"),
        notes_pushed: obs::counter("Replica.Pass.NotesPushed"),
        bytes_shipped: obs::counter("Replica.Pass.BytesShipped"),
        conflicts: obs::counter("Replica.Conflicts"),
        deletions: obs::counter("Replica.Deletions"),
        pass_candidates: obs::histogram("Replica.Pass.Candidates"),
        interrupted: obs::counter("Replica.Pass.Interrupted"),
        resumed: obs::counter("Replica.Pass.Resumed"),
        retry_attempts: obs::counter("Replica.Retry.Attempts"),
        retry_backoff_ticks: obs::counter("Replica.Retry.BackoffTicks"),
        retry_exhausted: obs::counter("Replica.Retry.Exhausted"),
        negotiations: obs::counter("Replica.Negotiate.Passes"),
        root_matches: obs::counter("Replica.Negotiate.RootMatches"),
        buckets_differing: obs::counter("Replica.Negotiate.BucketsDiffering"),
        negotiation_bytes: obs::counter("Replica.Negotiate.Bytes"),
        negotiated_candidates: obs::counter("Replica.Negotiate.Candidates"),
    })
}

/// Wire cost of the destination's Merkle root in a negotiation exchange.
const ROOT_BYTES: u64 = 16;
/// Wire cost per bucket digest (2-byte index + 16-byte digest).
const BUCKET_DIGEST_BYTES: u64 = 18;
/// Wire cost per `(unid, head)` Merkle entry (16 + 16 bytes).
const MERKLE_ENTRY_BYTES: u64 = 32;
/// Wire cost of announcing one candidate's OID during the pull loop
/// (16-byte UNID + 4-byte sequence + 8-byte sequence time). Full
/// enumeration pays this for every candidate it re-examines; negotiation
/// pays it only for notes whose heads actually differ.
const CANDIDATE_HEADER_BYTES: u64 = 28;

/// Announce a pass parked mid-flight on the event bus. The cursor keeps
/// every durably applied note, so the event only needs to say which pair
/// stalled and at which stage (`negotiation`, `deliver`, or `apply`).
fn emit_interrupted(dst: &Database, src: &Database, stage: &'static str) {
    obs::emit(
        obs::Event::new(
            obs::EventKind::Replica,
            obs::Severity::Warning,
            "Replica.Pass.Interrupted",
        )
        .at(dst.clock().peek().0)
        .with("src", src.title())
        .with("dst", dst.title())
        .with("stage", stage),
    );
}

/// Tuning knobs for a replication pass.
#[derive(Debug, Clone)]
pub struct ReplicationOptions {
    /// Account bandwidth at field level (R4) instead of whole documents
    /// (R3).
    pub field_level: bool,
    /// Merge divergent copies field-wise when they edited disjoint items
    /// (the Notes form option "merge replication conflicts").
    pub merge_conflicts: bool,
    /// Only documents selected by this formula replicate (deletions always
    /// do).
    pub selective: Option<Formula>,
    /// Receive truncated documents: summary items only, bodies stripped
    /// (the Notes laptop option "receive partial documents").
    pub truncate_bodies: bool,
    /// Use the incremental history cutoff (off = full compare).
    pub use_history: bool,
    /// Negotiate the candidate set from the destination's Merkle summary
    /// (root → bucket digests → differing entries) instead of enumerating
    /// every note past the history cutoff. Off = the old full-enumeration
    /// path, kept as a measurable baseline (E17).
    pub negotiate: bool,
    /// Candidates per transport message. Smaller batches lose less work
    /// per dropped message but pay more round-trips; the cursor resumes
    /// at batch (in fact candidate) granularity either way.
    pub batch: usize,
}

impl Default for ReplicationOptions {
    fn default() -> ReplicationOptions {
        ReplicationOptions {
            field_level: true,
            merge_conflicts: false,
            selective: None,
            truncate_bodies: false,
            use_history: true,
            negotiate: true,
            batch: 16,
        }
    }
}

/// What one pull did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationReport {
    /// Notes examined (modified since the cutoff on the source).
    pub candidates: u64,
    /// New documents stored.
    pub added: u64,
    /// Existing documents cleanly updated.
    pub updated: u64,
    /// Candidates already present with the same version.
    pub unchanged: u64,
    /// Candidates where the local copy was strictly newer.
    pub local_newer: u64,
    /// Divergent copies merged field-wise.
    pub merged: u64,
    /// Divergent copies preserved as conflict documents.
    pub conflicts: u64,
    /// Deletions applied locally.
    pub deletions: u64,
    /// Documents excluded by the selective formula.
    pub skipped_selective: u64,
    /// Bytes that would cross the wire (per the field_level mode).
    pub bytes_shipped: u64,
    /// Items that would cross the wire.
    pub items_shipped: u64,
    /// Digest-negotiation rounds run (one per negotiated pull attempt).
    pub negotiated: u64,
    /// Negotiations that ended at the root exchange (replicas identical).
    pub root_matched: u64,
    /// Merkle buckets whose digests differed and were descended into.
    pub buckets_differing: u64,
    /// Bytes of the negotiation exchange itself (root + bucket digests +
    /// differing-bucket entries); included in `bytes_shipped`.
    pub negotiation_bytes: u64,
}

impl ReplicationReport {
    /// Did this pull change the destination at all?
    pub fn changed_anything(&self) -> bool {
        self.added + self.updated + self.merged + self.conflicts + self.deletions > 0
    }

    /// Accumulate another report's counters into this one.
    pub fn merge_from(&mut self, other: &ReplicationReport) {
        self.candidates += other.candidates;
        self.added += other.added;
        self.updated += other.updated;
        self.unchanged += other.unchanged;
        self.local_newer += other.local_newer;
        self.merged += other.merged;
        self.conflicts += other.conflicts;
        self.deletions += other.deletions;
        self.skipped_selective += other.skipped_selective;
        self.bytes_shipped += other.bytes_shipped;
        self.items_shipped += other.items_shipped;
        self.negotiated += other.negotiated;
        self.root_matched += other.root_matched;
        self.buckets_differing += other.buckets_differing;
        self.negotiation_bytes += other.negotiation_bytes;
    }
}

/// Verdict of [`Replicator::purge_safety`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PurgeSafety {
    /// Every known peer replicated within the purge interval.
    pub safe: bool,
    /// The database's configured stub purge interval, in ticks.
    pub purge_interval: u64,
    /// The peer that replicated longest ago (None = no peers known).
    pub stalest_peer: Option<domino_types::ReplicaId>,
    /// Ticks since that peer last pulled from this replica.
    pub stalest_age: u64,
}

/// An in-flight (interrupted) pull's resumption state.
///
/// Candidates are processed in `(seq_time, unid)` order; the cursor
/// remembers the pass's enumeration cutoff, the clock reading at pass
/// start (the cutoff the history will advance to on completion), and the
/// position of the last candidate durably applied. An interrupted pull
/// leaves its cursor in the replicator; the next pull for the same pair
/// resumes after that position instead of restarting.
#[derive(Debug, Clone, Default)]
pub struct PullCursor {
    /// Source clock reading at pass start; becomes the new history cutoff
    /// once the pass completes.
    started_at: Timestamp,
    /// Cutoff used to enumerate this pass's candidates (frozen across
    /// resumptions so the candidate set stays stable).
    cutoff: Timestamp,
    /// The digest-negotiated UNID set, once negotiation completed. Frozen
    /// across resumptions — like the cutoff — so an interrupted pass
    /// resumes straight into its batches without re-paying the
    /// negotiation round-trips.
    negotiated: Option<Vec<Unid>>,
    /// `(seq_time, unid)` of the last durably applied candidate.
    resume_after: Option<(Timestamp, u128)>,
    /// Work accumulated across all attempts of this pass.
    report: ReplicationReport,
}

impl PullCursor {
    /// Candidates applied so far in this (interrupted) pass.
    pub fn applied(&self) -> u64 {
        self.report.candidates
    }
}

/// A replicator: options + per-peer incremental history + any in-flight
/// pass cursors awaiting resumption.
pub struct Replicator {
    /// Tuning knobs applied to every pass this replicator runs.
    pub options: ReplicationOptions,
    /// Per-peer incremental cutoffs (advanced only by *completed* passes).
    pub history: ReplicationHistory,
    /// Interrupted passes by `(dst instance, src instance)`.
    cursors: HashMap<(ReplicaId, ReplicaId), PullCursor>,
}

impl Replicator {
    /// A fresh replicator with empty history.
    pub fn new(options: ReplicationOptions) -> Replicator {
        Replicator {
            options,
            history: ReplicationHistory::new(),
            cursors: HashMap::new(),
        }
    }

    /// A replicator that adopts existing history (e.g. cloned from a peer
    /// replicator serving the same pair under different options).
    pub fn with_history(options: ReplicationOptions, history: ReplicationHistory) -> Replicator {
        Replicator {
            options,
            history,
            cursors: HashMap::new(),
        }
    }

    /// Pull changes from `src` into `dst` over a perfectly reliable
    /// in-process transport.
    pub fn pull(&mut self, dst: &Database, src: &Database) -> Result<ReplicationReport> {
        self.pull_via(dst, src, &mut CleanTransport)
    }

    /// Pull changes from `src` into `dst`, shipping each candidate batch
    /// as one message through `transport`.
    ///
    /// On a transport fault the pull returns the error but keeps a
    /// [`PullCursor`] recording everything durably applied; calling this
    /// again for the same pair resumes after that point. The history
    /// cutoff advances only when the pass completes, so an interrupted
    /// pass never hides unexamined changes. Re-applying a candidate after
    /// a resume is idempotent (same-revision copies are skipped), so
    /// interruption at any point is safe.
    pub fn pull_via(
        &mut self,
        dst: &Database,
        src: &Database,
        transport: &mut dyn Transport,
    ) -> Result<ReplicationReport> {
        if dst.replica_id() != src.replica_id() {
            return Err(DominoError::Replication(format!(
                "replica ids differ: {} vs {}",
                dst.replica_id(),
                src.replica_id()
            )));
        }
        let _span = obs::span!("Replica.Pull");
        let key = (dst.instance_id(), src.instance_id());
        let mut cursor = match self.cursors.remove(&key) {
            Some(c) => {
                m().resumed.inc();
                c
            }
            None => PullCursor {
                started_at: src.clock().peek(),
                cutoff: if self.options.use_history {
                    self.history.cutoff(dst.instance_id(), src.instance_id())
                } else {
                    Timestamp::ZERO
                },
                negotiated: None,
                resume_after: None,
                report: ReplicationReport::default(),
            },
        };
        // Negotiate the candidate UNID set from the destination's Merkle
        // summary, unless this pass already did (the set is frozen in the
        // cursor, like the cutoff, so a resumption goes straight to its
        // batches instead of re-paying the negotiation round-trips).
        if self.options.negotiate && cursor.negotiated.is_none() {
            match self.negotiate_unids(dst, src, transport, &mut cursor.report) {
                Ok(unids) => cursor.negotiated = Some(unids),
                Err(e) => {
                    if e.is_transient() {
                        // A negotiation message was lost in flight; park the
                        // cursor so the retry resumes this pass.
                        m().interrupted.inc();
                        emit_interrupted(dst, src, "negotiation");
                        self.cursors.insert(key, cursor);
                    }
                    return Err(e);
                }
            }
        }
        // Candidates stream in (seq_time, unid) order — a total order both
        // sides agree on, which is what makes the cursor meaningful.
        let mut candidates = match &cursor.negotiated {
            Some(unids) => src.changed_entries_for(unids)?,
            None => src.changed_since(cursor.cutoff)?,
        };
        candidates.sort_unstable_by_key(|c| (c.oid.seq_time, c.oid.unid.0));
        if let Some(after) = cursor.resume_after {
            candidates.retain(|c| (c.oid.seq_time, c.oid.unid.0) > after);
        }
        let batch = self.options.batch.max(1);
        for chunk in candidates.chunks(batch) {
            if let Err(e) = transport.deliver(chunk.len() as u64) {
                m().interrupted.inc();
                emit_interrupted(dst, src, "deliver");
                self.cursors.insert(key, cursor);
                return Err(e);
            }
            for cand in chunk {
                cursor.report.candidates += 1;
                cursor.report.bytes_shipped += CANDIDATE_HEADER_BYTES;
                let applied = if cand.is_stub {
                    self.pull_stub(dst, src, cand, &mut cursor.report)
                } else {
                    self.pull_note(dst, src, cand, &mut cursor.report)
                };
                if let Err(e) = applied {
                    // Apply-side failure: progress so far is durable; park
                    // the cursor so a retry continues from here.
                    emit_interrupted(dst, src, "apply");
                    self.cursors.insert(key, cursor);
                    return Err(e);
                }
                cursor.resume_after = Some((cand.oid.seq_time, cand.oid.unid.0));
            }
        }
        // Success: next time, look only at newer changes.
        dst.clock().observe(cursor.started_at);
        self.history
            .record(dst.instance_id(), src.instance_id(), cursor.started_at);
        let report = cursor.report;
        let reg = m();
        reg.passes.inc();
        reg.notes_pushed
            .add(report.added + report.updated + report.merged + report.conflicts);
        reg.bytes_shipped.add(report.bytes_shipped);
        reg.conflicts.add(report.conflicts);
        reg.deletions.add(report.deletions);
        reg.pass_candidates.record(report.candidates);
        if report.negotiated > 0 {
            reg.negotiations.add(report.negotiated);
            reg.root_matches.add(report.root_matched);
            reg.buckets_differing.add(report.buckets_differing);
            reg.negotiation_bytes.add(report.negotiation_bytes);
            reg.negotiated_candidates.add(report.candidates);
        }
        obs::emit(
            obs::Event::new(obs::EventKind::Replica, obs::Severity::Info, "Replica.Pass")
                .at(dst.clock().peek().0)
                .with("src", src.title())
                .with("dst", dst.title())
                .with("candidates", report.candidates)
                .with("added", report.added)
                .with("updated", report.updated)
                .with("conflicts", report.conflicts)
                .with("deletions", report.deletions)
                .with("bytes", report.bytes_shipped),
        );
        Ok(report)
    }

    /// Negotiate this pass's candidate UNID set: a digest exchange of up
    /// to three rounds — the destination's Merkle root, then (on
    /// mismatch) its bucket digests, then (when the source holds a
    /// differing bucket) its entries for those buckets — after which the
    /// source knows exactly the notes whose head hashes differ. Every
    /// round crosses the transport, so fault injection applies to
    /// negotiation messages just as to candidate batches.
    fn negotiate_unids(
        &self,
        dst: &Database,
        src: &Database,
        transport: &mut dyn Transport,
        report: &mut ReplicationReport,
    ) -> Result<Vec<Unid>> {
        let _span = obs::span!("Replica.Negotiate");
        report.negotiated += 1;
        // Round 1: the destination ships its root.
        transport.deliver(1)?;
        report.bytes_shipped += ROOT_BYTES;
        report.negotiation_bytes += ROOT_BYTES;
        if dst.merkle_root() == src.merkle_root() {
            // Equal roots ⟺ identical (unid, head) sets: nothing to
            // examine, at the cost of 16 bytes.
            report.root_matched += 1;
            return Ok(Vec::new());
        }
        // Round 2: the destination's bucket digests; the source keeps the
        // buckets it holds whose digests disagree (buckets only the
        // destination populates have nothing the source could ship).
        transport.deliver(1)?;
        let dst_digests: HashMap<u32, ContentHash> =
            dst.merkle_bucket_digests().into_iter().collect();
        let digest_bytes = dst_digests.len() as u64 * BUCKET_DIGEST_BYTES;
        report.bytes_shipped += digest_bytes;
        report.negotiation_bytes += digest_bytes;
        let differing: Vec<u32> = src
            .merkle_bucket_digests()
            .into_iter()
            .filter(|(b, d)| dst_digests.get(b) != Some(d))
            .map(|(b, _)| b)
            .collect();
        report.buckets_differing += differing.len() as u64;
        if differing.is_empty() {
            // Everything that differs lives only on the destination —
            // the source has nothing to ship, so skip round 3.
            return Ok(Vec::new());
        }
        // Round 3: the destination's entries for the differing buckets;
        // the source descends and keeps only notes whose heads differ.
        transport.deliver(1)?;
        let mut unids: Vec<Unid> = Vec::new();
        for b in &differing {
            let dst_entries: HashMap<Unid, ContentHash> =
                dst.merkle_bucket_entries(*b).into_iter().collect();
            let entry_bytes = dst_entries.len() as u64 * MERKLE_ENTRY_BYTES;
            report.bytes_shipped += entry_bytes;
            report.negotiation_bytes += entry_bytes;
            for (unid, head) in src.merkle_bucket_entries(*b) {
                if dst_entries.get(&unid) != Some(&head) {
                    unids.push(unid);
                }
            }
        }
        Ok(unids)
    }

    /// Pull with retry: on a transient transport fault, back off per
    /// `policy` (advancing `dst`'s logical clock — simulated elapsed
    /// time), then resume from the cursor. Returns the cumulative report
    /// and what retrying cost. When the policy is exhausted the last
    /// transport error is returned and the cursor stays parked for a
    /// later, externally scheduled attempt.
    pub fn pull_with_retry(
        &mut self,
        dst: &Database,
        src: &Database,
        transport: &mut dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<(ReplicationReport, RetryStats)> {
        let mut stats = RetryStats::default();
        loop {
            stats.attempts += 1;
            match self.pull_via(dst, src, transport) {
                Ok(report) => return Ok((report, stats)),
                Err(e) if e.is_transient() => {
                    let reg = m();
                    let budget_left =
                        policy.pass_timeout == 0 || stats.backoff_ticks < policy.pass_timeout;
                    if stats.attempts >= policy.max_attempts || !budget_left {
                        // Exhausted: the cursor stays parked; callers see
                        // the transport error (and Replica.Retry.Exhausted).
                        reg.retry_exhausted.inc();
                        obs::emit(
                            obs::Event::new(
                                obs::EventKind::Replica,
                                obs::Severity::Failure,
                                "Replica.Retry.Exhausted",
                            )
                            .at(dst.clock().peek().0)
                            .with("src", src.title())
                            .with("dst", dst.title())
                            .with("attempts", stats.attempts)
                            .with("backoff_ticks", stats.backoff_ticks),
                        );
                        return Err(e);
                    }
                    reg.retry_attempts.inc();
                    // Jitter is seeded from the logical clock: determinism
                    // for the simulator, decorrelation for the fleet.
                    let seed = dst.clock().peek().0;
                    let wait = policy.backoff(stats.attempts, seed);
                    obs::emit(
                        obs::Event::new(
                            obs::EventKind::Replica,
                            obs::Severity::Warning,
                            "Replica.Retry",
                        )
                        .at(dst.clock().peek().0)
                        .with("src", src.title())
                        .with("dst", dst.title())
                        .with("attempt", stats.attempts)
                        .with("wait_ticks", wait),
                    );
                    stats.backoff_ticks += wait;
                    reg.retry_backoff_ticks.add(wait);
                    dst.clock().advance(wait);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Administrative safety check for stub purging: purging is safe only
    /// if every known peer has replicated with `db` more recently than the
    /// purge interval (otherwise a purged deletion can resurrect — the E8
    /// anomaly). Returns the verdict plus the most-stale peer's lag.
    pub fn purge_safety(&self, db: &Database) -> PurgeSafety {
        let now = db.clock().peek();
        let me = db.instance_id();
        let mut stalest: Option<(domino_types::ReplicaId, u64)> = None;
        for (dst, src) in self.history.pairs() {
            // Peers that pull *from us* are the ones that could still hold
            // a pre-deletion copy.
            if src != me {
                continue;
            }
            let age = now.saturating_sub(self.history.cutoff(dst, src));
            if stalest.map(|(_, worst)| age > worst).unwrap_or(true) {
                stalest = Some((dst, age));
            }
        }
        let purge_interval = db.purge_interval();
        match stalest {
            Some((peer, age)) => PurgeSafety {
                safe: age < purge_interval,
                purge_interval,
                stalest_peer: Some(peer),
                stalest_age: age,
            },
            None => PurgeSafety {
                // No recorded peers: purging cannot be proven safe.
                safe: false,
                purge_interval,
                stalest_peer: None,
                stalest_age: u64::MAX,
            },
        }
    }

    /// Pull in both directions over a reliable transport.
    pub fn sync(
        &mut self,
        a: &Database,
        b: &Database,
    ) -> Result<(ReplicationReport, ReplicationReport)> {
        let into_a = self.pull(a, b)?;
        let into_b = self.pull(b, a)?;
        Ok((into_a, into_b))
    }

    /// Pull in both directions through `transport` with retry per
    /// `policy`. Both directions share the transport (and hence its fault
    /// stream); an exhausted direction aborts the sync with its cursor
    /// parked, so the next sync resumes it.
    pub fn sync_with_retry(
        &mut self,
        a: &Database,
        b: &Database,
        transport: &mut dyn Transport,
        policy: &RetryPolicy,
    ) -> Result<(ReplicationReport, ReplicationReport, RetryStats)> {
        let mut stats = RetryStats::default();
        let (into_a, sa) = self.pull_with_retry(a, b, transport, policy)?;
        stats.merge_from(&sa);
        let (into_b, sb) = self.pull_with_retry(b, a, transport, policy)?;
        stats.merge_from(&sb);
        Ok((into_a, into_b, stats))
    }

    /// The parked cursor of an interrupted `dst ← src` pull, if any.
    pub fn cursor(&self, dst: &Database, src: &Database) -> Option<&PullCursor> {
        self.cursors.get(&(dst.instance_id(), src.instance_id()))
    }

    /// Are any passes interrupted and awaiting resumption?
    pub fn has_pending(&self) -> bool {
        !self.cursors.is_empty()
    }

    /// Drop all parked cursors (the next pull of each pair restarts from
    /// its history cutoff — safe, merely wasteful, like clearing history).
    pub fn abandon_pending(&mut self) {
        self.cursors.clear();
    }

    /// Parked cursors awaiting resumption.
    pub fn pending_count(&self) -> usize {
        self.cursors.len()
    }

    /// Forget everything about a decommissioned replica instance: its
    /// history cutoffs and any parked cursors for passes involving it.
    /// Long-lived replicators otherwise grow one history entry and
    /// potentially one cursor per peer forever; pruning dropped instances
    /// keeps both maps bounded by the live peer set. Safe at any time —
    /// if the instance reappears, its first pull is a full compare (or,
    /// negotiated, an O(buckets + changed) Merkle diff).
    pub fn forget_instance(&mut self, instance: ReplicaId) {
        self.history.forget(instance);
        self.cursors
            .retain(|(dst, src), _| *dst != instance && *src != instance);
    }

    fn pull_stub(
        &self,
        dst: &Database,
        src: &Database,
        cand: &ChangedNote,
        report: &mut ReplicationReport,
    ) -> Result<()> {
        let stub = src.open_stub(cand.id)?;
        // Is the deletion already known locally?
        if let Some(local_id) = dst.id_of_unid(stub.oid.unid)? {
            if let Ok(local_stub) = dst.open_stub(local_id) {
                if local_stub.oid.winner_key() >= stub.oid.winner_key() {
                    report.unchanged += 1;
                    return Ok(());
                }
            }
        }
        report.bytes_shipped += 64;
        match dst.apply_remote_deletion(&stub)? {
            Some(_) => report.deletions += 1,
            None => report.local_newer += 1,
        }
        Ok(())
    }

    fn pull_note(
        &self,
        dst: &Database,
        src: &Database,
        cand: &ChangedNote,
        report: &mut ReplicationReport,
    ) -> Result<()> {
        let mut remote = src.open_note(cand.id)?;
        if self.options.truncate_bodies && remote.encode_body().is_some() {
            // Summary-only transfer. The truncated copy keeps the source's
            // OID/lineage but is marked read-only ($Truncated), so the
            // missing bodies can never replicate back as deletions.
            remote.truncate_to_summary();
        }
        if let Some(f) = &self.options.selective {
            if !f.selects(&remote, &EvalEnv::default())? {
                report.skipped_selective += 1;
                return Ok(());
            }
        }
        let local_id = dst.id_of_unid(remote.unid())?;
        let Some(local_id) = local_id else {
            // Brand new here.
            report.bytes_shipped += self.ship_cost(&remote, None, report);
            dst.save_replicated(remote)?;
            report.added += 1;
            return Ok(());
        };
        let local = match dst.open_note(local_id) {
            Ok(n) => n,
            Err(_) => {
                // Local copy is a deletion stub: newer edit resurrects,
                // newer deletion stands.
                let stub = dst.open_stub(local_id)?;
                if remote.oid.winner_key() > stub.oid.winner_key() {
                    report.bytes_shipped += self.ship_cost(&remote, None, report);
                    dst.save_replicated(remote)?;
                    report.updated += 1;
                } else {
                    report.local_newer += 1;
                }
                return Ok(());
            }
        };

        // A local truncated copy of the same revision upgrades to the full
        // document (bodies were withheld, not diverged).
        if local.is_truncated() && !remote.is_truncated() && same_revision(&local, &remote) {
            report.bytes_shipped += self.ship_cost(&remote, Some(&local), report);
            dst.save_replicated(remote)?;
            report.updated += 1;
            return Ok(());
        }
        if same_revision(&local, &remote) {
            report.unchanged += 1;
            return Ok(());
        }
        if descends_from(&remote, &local) {
            report.bytes_shipped += self.ship_cost(&remote, Some(&local), report);
            dst.save_replicated(remote)?;
            report.updated += 1;
            return Ok(());
        }
        if descends_from(&local, &remote) {
            report.local_newer += 1;
            return Ok(());
        }

        // Divergent histories: a replication conflict.
        self.resolve_conflict(dst, local, remote, report)
    }

    fn resolve_conflict(
        &self,
        dst: &Database,
        local: Note,
        remote: Note,
        report: &mut ReplicationReport,
    ) -> Result<()> {
        report.bytes_shipped += self.ship_cost(&remote, Some(&local), report);
        if self.options.merge_conflicts {
            if let Some(merged) = merge_field_wise(&local, &remote) {
                dst.save_replicated(merged)?;
                report.merged += 1;
                return Ok(());
            }
        }
        let (winner, loser) = if note_winner_key(&local) >= note_winner_key(&remote) {
            (local, remote)
        } else {
            (remote, local)
        };
        // The losing revision survives as a $Conflict response document
        // (deterministic UNID: both replicas mint the same one).
        let conflict_doc = make_conflict_document(&loser);
        if winner.unid() != loser.unid() {
            unreachable!("conflicting copies share a UNID");
        }
        dst.save_replicated(winner)?;
        dst.save_replicated(conflict_doc)?;
        report.conflicts += 1;
        Ok(())
    }

    /// Bytes this transfer would put on the wire.
    fn ship_cost(
        &self,
        remote: &Note,
        local: Option<&Note>,
        report: &mut ReplicationReport,
    ) -> u64 {
        const HEADER: u64 = 64;
        if !self.options.field_level || local.is_none() {
            report.items_shipped += remote.items_raw().len() as u64;
            return HEADER + remote.byte_size() as u64;
        }
        let local = local.expect("checked");
        // Field level: ship only items whose (value, flags, revised)
        // differ, plus a small per-item digest-exchange overhead. Local
        // items are indexed by name once, so the comparison is
        // O(items), not O(items²).
        let local_by_name: HashMap<String, &Item> = local
            .items_raw()
            .iter()
            .map(|l| (l.name.to_ascii_lowercase(), l))
            .collect();
        let mut bytes = HEADER;
        for it in remote.items_raw() {
            bytes += 10; // digest exchange per item
            let same = local_by_name
                .get(&it.name.to_ascii_lowercase())
                .is_some_and(|l| {
                    l.value == it.value && l.flags == it.flags && l.revised == it.revised
                });
            if !same {
                bytes += it.byte_size() as u64;
                report.items_shipped += 1;
            }
        }
        bytes
    }
}

/// Total order picking the surviving copy of a conflict. Higher sequence
/// wins, then later time; the final tiebreak is the revision fingerprint
/// (which mixes in the editing replica's id), so two replicas that edited
/// at the same logical instant still agree on one winner.
fn note_winner_key(n: &Note) -> (u32, Timestamp, u64) {
    let fp = n.revision_at(n.oid.seq).map(|(f, _)| f).unwrap_or(0);
    (n.oid.seq, n.oid.seq_time, fp)
}

/// Does `a` descend from `b` (i.e. `b`'s current revision appears in `a`'s
/// lineage)?
///
/// When both copies carry a `$RevisionHashes` chain the answer is exact
/// at **any** edit depth: `a` descends from `b` iff `b`'s head hash is in
/// `a`'s ancestor set. Chainless (pre-upgrade, hand-built) notes fall
/// back to the bounded `$Revisions` fingerprints, which can only prove
/// descent within [`MAX_REVISIONS`] edits.
fn descends_from(a: &Note, b: &Note) -> bool {
    if let Some(bh) = revision_head(b) {
        if !revision_chain(a).is_empty() {
            return chain_contains(a, bh);
        }
    }
    if a.oid.seq < b.oid.seq {
        return false;
    }
    match (a.revision_at(b.oid.seq), b.revision_at(b.oid.seq)) {
        (Some(ra), Some(rb)) => ra == rb,
        _ => false,
    }
}

/// Latest common ancestor revision time of two divergent copies, if their
/// retained lineages still overlap. Hash chains give the exact lowest
/// common ancestor; chainless notes fall back to the bounded fingerprint
/// scan.
fn common_ancestor_time(a: &Note, b: &Note) -> Option<Timestamp> {
    if let Some((_, t)) = latest_common(a, b) {
        return Some(t);
    }
    let top = a.oid.seq.min(b.oid.seq);
    for seq in (1..=top).rev() {
        if let (Some(ra), Some(rb)) = (a.revision_at(seq), b.revision_at(seq)) {
            if ra == rb {
                return Some(ra.1);
            }
        }
    }
    None
}

/// Merge two divergent copies field-wise. Succeeds only when no single
/// item was edited on both sides since their common ancestor; the result
/// (content *and* identity) is identical no matter which replica computes
/// it, so merged copies deduplicate as they propagate.
fn merge_field_wise(local: &Note, remote: &Note) -> Option<Note> {
    let anc = common_ancestor_time(local, remote)?;
    let (winner, other) = if note_winner_key(local) >= note_winner_key(remote) {
        (local, remote)
    } else {
        (remote, local)
    };
    let mut merged = winner.clone();
    let mut took_any = false;
    for it in other.items_raw() {
        // Lineage bookkeeping is rebuilt below, never merged field-wise.
        if it.name.eq_ignore_ascii_case(ITEM_REVISIONS)
            || it.name.eq_ignore_ascii_case(ITEM_REVISION_HASHES)
        {
            continue;
        }
        let ours: Option<&Item> = winner
            .items_raw()
            .iter()
            .find(|w| w.name.eq_ignore_ascii_case(&it.name));
        match ours {
            Some(w) if w.value == it.value && w.flags == it.flags => {}
            Some(w) => {
                let we_changed = w.revised > anc;
                let they_changed = it.revised > anc;
                if we_changed && they_changed {
                    // Same field edited on both sides: a true conflict.
                    return None;
                }
                if they_changed {
                    merged.set_item(it.clone());
                    took_any = true;
                }
            }
            None => {
                if it.revised > anc {
                    merged.set_item(it.clone());
                    took_any = true;
                }
            }
        }
    }
    if !took_any {
        // The winner already subsumes the other copy: no new revision.
        return Some(winner.clone());
    }
    // A real merge is a new revision with a *deterministic* identity
    // derived from both parents, so independently-computed merges of the
    // same pair coincide.
    let (wfp, _) = winner.revision_at(winner.oid.seq)?;
    let (ofp, _) = other.revision_at(other.oid.seq)?;
    let new_seq = winner.oid.seq.max(other.oid.seq) + 1;
    let new_time = winner.oid.seq_time.max(other.oid.seq_time);
    merged.oid = domino_types::Oid {
        unid: winner.unid(),
        seq: new_seq,
        seq_time: new_time,
    };
    merged.modified = winner.modified.max(other.modified);
    let merge_fp = {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in wfp
            .to_le_bytes()
            .iter()
            .chain(ofp.to_le_bytes().iter())
            .chain(b"$merge".iter())
        {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    };
    let mut entries: Vec<String> = match merged.get(ITEM_REVISIONS) {
        Some(v) => v.iter_scalars().iter().map(|s| s.to_text()).collect(),
        None => Vec::new(),
    };
    entries.push(format!("{merge_fp:016x}|{:016x}", new_time.0));
    if entries.len() > MAX_REVISIONS {
        let drop = entries.len() - MAX_REVISIONS;
        entries.drain(..drop);
    }
    let mut rev_item = Item::new(ITEM_REVISIONS, domino_types::Value::TextList(entries));
    rev_item.revised = new_time;
    merged.set_item(rev_item);
    // The merge's hash chain: the deterministic union of both parents'
    // ancestor sets, then the merge revision's own head (hashed over the
    // merged items plus both parent heads). Both replicas resolve
    // winner/other identically, so they mint the identical chain — and the
    // identical Merkle head.
    let union = merged_chain(winner, other);
    set_chain(&mut merged, &union);
    let parents: Vec<ContentHash> = [revision_head(winner), revision_head(other)]
        .into_iter()
        .flatten()
        .collect();
    let head = content_hash_of(&merged, &parents);
    push_head(&mut merged, head, new_time);
    Some(merged)
}

/// One-shot bidirectional replication with default options and no history
/// (full compare) — convenience for examples and tests.
pub fn replicate(a: &Database, b: &Database) -> Result<(ReplicationReport, ReplicationReport)> {
    let mut r = Replicator::new(ReplicationOptions {
        use_history: false,
        ..ReplicationOptions::default()
    });
    r.sync(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::{DbConfig, ITEM_CONFLICT};
    use domino_types::{LogicalClock, NoteClass, ReplicaId, Value};
    use std::sync::Arc;

    /// Two replicas of the same database sharing nothing but the lineage id.
    fn pair() -> (Arc<Database>, Arc<Database>, Replicator) {
        let a = Arc::new(
            Database::open_in_memory(
                DbConfig::new("Disc", ReplicaId(77), ReplicaId(1)),
                LogicalClock::new(),
            )
            .unwrap(),
        );
        let b = Arc::new(
            Database::open_in_memory(
                DbConfig::new("Disc", ReplicaId(77), ReplicaId(2)),
                LogicalClock::starting_at(domino_types::Timestamp(500)),
            )
            .unwrap(),
        );
        (a, b, Replicator::new(ReplicationOptions::default()))
    }

    fn doc(db: &Database, subject: &str) -> Note {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(subject));
        db.save(&mut n).unwrap();
        n
    }

    fn docs_equal(a: &Database, b: &Database) -> bool {
        let fa = all_docs(a);
        let fb = all_docs(b);
        fa == fb
    }

    fn all_docs(db: &Database) -> Vec<(String, u32, String)> {
        let mut v: Vec<(String, u32, String)> = db
            .note_ids(Some(NoteClass::Document))
            .unwrap()
            .into_iter()
            .map(|id| {
                let n = db.open_note(id).unwrap();
                (
                    n.unid().to_string(),
                    n.oid.seq,
                    n.get_text("Subject").unwrap_or_default(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn mismatched_replica_ids_refused() {
        let a = Database::open_in_memory(
            DbConfig::new("A", ReplicaId(1), ReplicaId(10)),
            LogicalClock::new(),
        )
        .unwrap();
        let b = Database::open_in_memory(
            DbConfig::new("B", ReplicaId(2), ReplicaId(20)),
            LogicalClock::new(),
        )
        .unwrap();
        let mut r = Replicator::new(ReplicationOptions::default());
        assert!(r.pull(&a, &b).is_err());
    }

    #[test]
    fn new_documents_flow_both_ways() {
        let (a, b, mut r) = pair();
        doc(&a, "from-a");
        doc(&b, "from-b");
        let (into_a, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_a.added, 1);
        assert_eq!(into_b.added, 1);
        assert!(docs_equal(&a, &b));
        assert_eq!(a.document_count().unwrap(), 2);
    }

    #[test]
    fn history_makes_second_sync_cheap() {
        let (a, b, mut r) = pair();
        for i in 0..20 {
            doc(&a, &format!("d{i}"));
        }
        r.sync(&a, &b).unwrap();
        // Nothing changed: second sync examines no candidates.
        let (into_a, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_b.candidates, 0);
        assert_eq!(into_a.candidates, 0);
        // One change: exactly one candidate.
        let ids = a.note_ids(Some(NoteClass::Document)).unwrap();
        let mut n = a.open_note(ids[0]).unwrap();
        n.set("Subject", Value::text("touched"));
        a.save(&mut n).unwrap();
        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_b.candidates, 1);
        assert_eq!(into_b.updated, 1);
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn updates_propagate_without_conflict() {
        let (a, b, mut r) = pair();
        let mut n = doc(&a, "v1");
        r.sync(&a, &b).unwrap();
        n.set("Subject", Value::text("v2"));
        a.save(&mut n).unwrap();
        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_b.updated, 1);
        assert_eq!(into_b.conflicts, 0);
        let b_copy = b.open_by_unid(n.unid()).unwrap();
        assert_eq!(b_copy.get_text("Subject").unwrap(), "v2");
        assert_eq!(b_copy.oid.seq, 2);
    }

    #[test]
    fn concurrent_edits_become_conflict_documents() {
        let (a, b, mut r) = pair();
        let n = doc(&a, "base");
        r.sync(&a, &b).unwrap();

        // Edit on both replicas between syncs.
        let mut na = a.open_by_unid(n.unid()).unwrap();
        na.set("Subject", Value::text("a-edit"));
        a.save(&mut na).unwrap();
        let mut nb = b.open_by_unid(n.unid()).unwrap();
        nb.set("Subject", Value::text("b-edit"));
        b.save(&mut nb).unwrap();

        let (into_a, _into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_a.conflicts, 1);
        // Converged: same main doc + same conflict doc on both sides.
        let (_, _) = r.sync(&a, &b).unwrap();
        assert!(docs_equal(&a, &b));
        assert_eq!(a.document_count().unwrap(), 2);
        // The conflict document is a response to the winner.
        let f =
            domino_formula::Formula::compile(&format!("SELECT {ITEM_CONFLICT} = \"1\"")).unwrap();
        let conflicts = a.search(&f, &EvalEnv::default()).unwrap();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].parent(), Some(n.unid()));
        // No update was lost: both texts exist somewhere.
        let main = a.open_by_unid(n.unid()).unwrap();
        let texts = [
            main.get_text("Subject").unwrap(),
            conflicts[0].get_text("Subject").unwrap(),
        ];
        assert!(texts.contains(&"a-edit".to_string()));
        assert!(texts.contains(&"b-edit".to_string()));
    }

    #[test]
    fn disjoint_field_edits_merge_when_enabled() {
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            merge_conflicts: true,
            ..ReplicationOptions::default()
        });
        let n = doc(&a, "base");
        r.sync(&a, &b).unwrap();
        let mut na = a.open_by_unid(n.unid()).unwrap();
        na.set("Owner", Value::text("alice"));
        a.save(&mut na).unwrap();
        let mut nb = b.open_by_unid(n.unid()).unwrap();
        nb.set("Due", Value::Number(99.0));
        b.save(&mut nb).unwrap();

        let (into_a, into_b) = r.sync(&a, &b).unwrap();
        // One direction performs the field-wise merge; the hash chain then
        // proves the merged revision descends from the other side's copy,
        // so the reverse direction applies it as a clean update instead of
        // re-deriving the merge.
        assert_eq!(into_a.merged, 1);
        assert_eq!(into_b.updated, 1);
        assert_eq!(into_a.conflicts + into_b.conflicts, 0);
        r.sync(&a, &b).unwrap();
        for db in [&a, &b] {
            let m = db.open_by_unid(n.unid()).unwrap();
            assert_eq!(m.get_text("Owner").unwrap(), "alice");
            assert_eq!(m.get("Due"), Some(&Value::Number(99.0)));
        }
        assert!(docs_equal(&a, &b));
        assert_eq!(a.document_count().unwrap(), 1, "no conflict doc");
    }

    #[test]
    fn same_field_edits_conflict_even_with_merge_enabled() {
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            merge_conflicts: true,
            ..ReplicationOptions::default()
        });
        let n = doc(&a, "base");
        r.sync(&a, &b).unwrap();
        let mut na = a.open_by_unid(n.unid()).unwrap();
        na.set("Subject", Value::text("a-side"));
        a.save(&mut na).unwrap();
        let mut nb = b.open_by_unid(n.unid()).unwrap();
        nb.set("Subject", Value::text("b-side"));
        b.save(&mut nb).unwrap();
        let (into_a, into_b) = r.sync(&a, &b).unwrap();
        // Each side may detect the same conflict independently (the
        // resolution is deterministic and idempotent).
        assert!(into_a.conflicts + into_b.conflicts >= 1);
        assert_eq!(into_a.merged + into_b.merged, 0);
        r.sync(&a, &b).unwrap();
        assert!(docs_equal(&a, &b));
        assert_eq!(a.document_count().unwrap(), 2);
    }

    #[test]
    fn deletions_propagate_as_stubs() {
        let (a, b, mut r) = pair();
        let n = doc(&a, "doomed");
        doc(&a, "keeper");
        r.sync(&a, &b).unwrap();
        assert_eq!(b.document_count().unwrap(), 2);
        a.delete(n.id).unwrap();
        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_b.deletions, 1);
        assert_eq!(b.document_count().unwrap(), 1);
        assert!(b.open_by_unid(n.unid()).is_err());
        // Stub exists on both sides and further syncs are stable.
        let (x, y) = r.sync(&a, &b).unwrap();
        assert!(!x.changed_anything() && !y.changed_anything());
    }

    #[test]
    fn newer_edit_beats_older_deletion() {
        let (a, b, mut r) = pair();
        let n = doc(&a, "contested");
        r.sync(&a, &b).unwrap();
        // Delete on A, then (later) edit on B.
        a.delete(n.id).unwrap();
        b.clock().advance(10_000);
        let mut nb = b.open_by_unid(n.unid()).unwrap();
        nb.set("Subject", Value::text("still alive"));
        b.save(&mut nb).unwrap();
        nb = b.open_by_unid(n.unid()).unwrap();
        nb.set("Subject", Value::text("alive v3"));
        b.save(&mut nb).unwrap(); // seq 3 > stub's seq 2

        r.sync(&a, &b).unwrap();
        r.sync(&a, &b).unwrap();
        for db in [&a, &b] {
            let doc = db.open_by_unid(n.unid()).unwrap();
            assert_eq!(doc.get_text("Subject").unwrap(), "alive v3");
        }
    }

    #[test]
    fn newer_deletion_beats_older_edit() {
        let (a, b, mut r) = pair();
        let n = doc(&a, "contested");
        r.sync(&a, &b).unwrap();
        // Edit on B first, then deletion on A with a later clock.
        let mut nb = b.open_by_unid(n.unid()).unwrap();
        nb.set("Subject", Value::text("edited"));
        b.save(&mut nb).unwrap();
        a.clock().advance(10_000);
        let na = a.open_by_unid(n.unid()).unwrap();
        // Bump the doc once so the deletion's seq outranks B's edit.
        let mut na2 = na.clone();
        na2.set("X", Value::Number(1.0));
        a.save(&mut na2).unwrap();
        a.delete(na2.id).unwrap(); // seq 3

        r.sync(&a, &b).unwrap();
        r.sync(&a, &b).unwrap();
        assert!(a.open_by_unid(n.unid()).is_err());
        assert!(b.open_by_unid(n.unid()).is_err());
    }

    #[test]
    fn field_level_ships_fewer_bytes_than_doc_level() {
        let (a, b, _) = pair();
        // A large document with many fields.
        let mut n = Note::document("Fat");
        for i in 0..20 {
            n.set(&format!("F{i}"), Value::text("x".repeat(200)));
        }
        a.save(&mut n).unwrap();
        let mut r_field = Replicator::new(ReplicationOptions::default());
        r_field.sync(&a, &b).unwrap();

        // Touch one field.
        let mut n2 = a.open_by_unid(n.unid()).unwrap();
        n2.set("F3", Value::text("y".repeat(200)));
        a.save(&mut n2).unwrap();
        let (_, field_rep) = r_field.sync(&a, &b).unwrap();

        // Same change, doc-level accounting.
        let mut n3 = a.open_by_unid(n.unid()).unwrap();
        n3.set("F4", Value::text("z".repeat(200)));
        a.save(&mut n3).unwrap();
        let mut r_doc = Replicator::with_history(
            ReplicationOptions {
                field_level: false,
                ..Default::default()
            },
            r_field.history.clone(),
        );
        let (_, doc_rep) = r_doc.sync(&a, &b).unwrap();

        assert!(field_rep.bytes_shipped * 3 < doc_rep.bytes_shipped);
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn purge_safety_tracks_stale_peers() {
        let (a, b, mut r) = pair();
        a.set_purge_interval(1_000).unwrap();
        // No peers known yet: not provably safe.
        assert!(!r.purge_safety(&a).safe);
        doc(&a, "x");
        r.sync(&a, &b).unwrap();
        let fresh = r.purge_safety(&a);
        assert!(fresh.safe, "{fresh:?}");
        assert_eq!(fresh.stalest_peer, Some(b.instance_id()));
        // The peer goes quiet past the purge interval: unsafe to purge.
        a.clock().advance(5_000);
        let stale = r.purge_safety(&a);
        assert!(!stale.safe, "{stale:?}");
        assert!(stale.stalest_age >= 5_000);
        // A sync makes it safe again.
        r.sync(&a, &b).unwrap();
        assert!(r.purge_safety(&a).safe);
    }

    #[test]
    fn truncated_replication_ships_summaries_only() {
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            truncate_bodies: true,
            ..ReplicationOptions::default()
        });
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("headline"));
        n.set_body("Body", Value::RichText(vec![9u8; 50_000]));
        a.save(&mut n).unwrap();

        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert!(
            into_b.bytes_shipped < 2_000,
            "shipped {} bytes for a 50KB body",
            into_b.bytes_shipped
        );
        let copy = b.open_by_unid(n.unid()).unwrap();
        assert_eq!(copy.get_text("Subject").unwrap(), "headline");
        assert!(copy.get("Body").is_none());
        assert!(copy.is_truncated());

        // Truncated copies are read-only (editing one could replicate the
        // missing body back as a deletion).
        let mut edit = copy.clone();
        edit.set("Subject", Value::text("tampered"));
        assert_eq!(b.save(&mut edit).unwrap_err().kind(), "invalid_argument");

        // The full copy at the source is untouched by further syncs.
        r.sync(&a, &b).unwrap();
        let original = a.open_by_unid(n.unid()).unwrap();
        assert_eq!(
            original.get("Body"),
            Some(&Value::RichText(vec![9u8; 50_000]))
        );
        assert!(!original.is_truncated());

        // A later full pull upgrades the truncated copy in place.
        let mut full = Replicator::new(ReplicationOptions {
            use_history: false,
            ..ReplicationOptions::default()
        });
        full.pull(&b, &a).unwrap();
        let upgraded = b.open_by_unid(n.unid()).unwrap();
        assert_eq!(
            upgraded.get("Body"),
            Some(&Value::RichText(vec![9u8; 50_000]))
        );
    }

    #[test]
    fn selective_replication_filters_documents() {
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            selective: Some(Formula::compile(r#"SELECT Priority = "high""#).unwrap()),
            ..ReplicationOptions::default()
        });
        for i in 0..6 {
            let mut n = Note::document("Task");
            n.set("Priority", Value::text(if i < 2 { "high" } else { "low" }));
            a.save(&mut n).unwrap();
        }
        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_b.added, 2);
        assert_eq!(into_b.skipped_selective, 4);
        assert_eq!(b.document_count().unwrap(), 2);
    }

    #[test]
    fn three_replicas_converge_through_a_hub() {
        let hub = Arc::new(
            Database::open_in_memory(
                DbConfig::new("D", ReplicaId(9), ReplicaId(100)),
                LogicalClock::new(),
            )
            .unwrap(),
        );
        let s1 = Arc::new(
            Database::open_in_memory(
                DbConfig::new("D", ReplicaId(9), ReplicaId(101)),
                LogicalClock::starting_at(Timestamp(10)),
            )
            .unwrap(),
        );
        let s2 = Arc::new(
            Database::open_in_memory(
                DbConfig::new("D", ReplicaId(9), ReplicaId(102)),
                LogicalClock::starting_at(Timestamp(20)),
            )
            .unwrap(),
        );
        doc(&s1, "from-s1");
        doc(&s2, "from-s2");
        let mut n = doc(&hub, "from-hub");
        let mut r1 = Replicator::new(ReplicationOptions::default());
        let mut r2 = Replicator::new(ReplicationOptions::default());
        // Two rounds of hub-spoke sync spread everything everywhere.
        for _ in 0..2 {
            r1.sync(&hub, &s1).unwrap();
            r2.sync(&hub, &s2).unwrap();
        }
        assert!(docs_equal(&hub, &s1));
        assert!(docs_equal(&hub, &s2));
        assert_eq!(s1.document_count().unwrap(), 3);
        // An update at the hub reaches both spokes in one round.
        n.set("Subject", Value::text("updated"));
        hub.save(&mut n).unwrap();
        r1.sync(&hub, &s1).unwrap();
        r2.sync(&hub, &s2).unwrap();
        assert_eq!(
            s2.open_by_unid(n.unid())
                .unwrap()
                .get_text("Subject")
                .unwrap(),
            "updated"
        );
    }

    #[test]
    fn interrupted_pull_resumes_from_cursor() {
        use crate::transport::ScriptedTransport;
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            batch: 4,
            ..ReplicationOptions::default()
        });
        for i in 0..20 {
            doc(&a, &format!("d{i}"));
        }
        // Messages 0-2 are the negotiation exchange (root, digests,
        // entries); 20 candidates / batch 4 = 5 batch messages after
        // that. Lose the third batch (message 5).
        let mut t = ScriptedTransport::failing_at(vec![5]);
        let err = r.pull_via(&b, &a, &mut t).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(r.has_pending());
        let applied_so_far = r.cursor(&b, &a).unwrap().applied();
        assert_eq!(applied_so_far, 8, "two full batches landed");
        // The history cutoff must NOT have advanced past the wreckage.
        assert_eq!(
            r.history.cutoff(b.instance_id(), a.instance_id()),
            Timestamp::ZERO
        );
        // Resume: only the remaining candidates ship, and the cumulative
        // report covers the whole pass.
        let report = r
            .pull_via(&b, &a, &mut ScriptedTransport::default())
            .unwrap();
        assert!(!r.has_pending());
        assert_eq!(report.candidates, 20);
        assert_eq!(report.added, 20);
        assert!(docs_equal(&a, &b));
        // And the cutoff now advanced: the next pull is incremental (at
        // most the boundary candidate re-examined, nothing re-applied).
        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert!(into_b.candidates <= 1);
        assert!(!into_b.changed_anything());
    }

    #[test]
    fn interrupted_and_resumed_pull_matches_uninterrupted() {
        use crate::transport::ScriptedTransport;
        // Same source content pulled (a) cleanly and (b) with an
        // interruption at every batch boundary in turn: destinations must
        // come out identical.
        for fail_at in 0..5u64 {
            let (src, clean_dst, mut r_clean) = pair();
            for i in 0..18 {
                doc(&src, &format!("d{i}"));
            }
            src.delete(src.note_ids(None).unwrap()[0]).unwrap();
            r_clean.pull(&clean_dst, &src).unwrap();

            let faulty_dst = Arc::new(
                Database::open_in_memory(
                    DbConfig::new("Disc", ReplicaId(77), ReplicaId(3)),
                    LogicalClock::starting_at(domino_types::Timestamp(900)),
                )
                .unwrap(),
            );
            let mut r = Replicator::new(ReplicationOptions {
                batch: 4,
                ..ReplicationOptions::default()
            });
            let mut t = ScriptedTransport::failing_at(vec![fail_at]);
            let _ = r.pull_via(&faulty_dst, &src, &mut t);
            r.pull_via(&faulty_dst, &src, &mut ScriptedTransport::default())
                .unwrap();
            assert!(
                docs_equal(&clean_dst, &faulty_dst),
                "divergence after interruption at message {fail_at}"
            );
            assert_eq!(
                clean_dst.stubs().unwrap().len(),
                faulty_dst.stubs().unwrap().len()
            );
        }
    }

    #[test]
    fn pull_with_retry_rides_out_transient_faults() {
        use crate::transport::ScriptedTransport;
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            batch: 2,
            ..ReplicationOptions::default()
        });
        for i in 0..10 {
            doc(&a, &format!("d{i}"));
        }
        // Drop messages 0, 2 and 4: three interruptions, all retried.
        let mut t = ScriptedTransport::failing_at(vec![0, 2, 4]);
        let policy = RetryPolicy::standard();
        let (report, stats) = r.pull_with_retry(&b, &a, &mut t, &policy).unwrap();
        assert_eq!(report.added, 10);
        assert_eq!(stats.attempts, 4, "first try + three retries");
        assert!(stats.backoff_ticks > 0);
        assert!(!stats.gave_up);
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn exhausted_retry_parks_the_cursor() {
        use crate::transport::ScriptedTransport;
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            batch: 1,
            ..ReplicationOptions::default()
        });
        for i in 0..6 {
            doc(&a, &format!("d{i}"));
        }
        // Every message fails; a 3-attempt policy gives up.
        let mut t = ScriptedTransport::failing_at((0..100).collect());
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::standard()
        };
        let err = r.pull_with_retry(&b, &a, &mut t, &policy).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(r.has_pending());
        // The link heals; a plain pull finishes the pass.
        let report = r.pull(&b, &a).unwrap();
        assert_eq!(report.added, 6);
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn full_compare_after_cleared_history_is_stable() {
        let (a, b, _) = pair();
        let mut r = Replicator::new(ReplicationOptions {
            negotiate: false,
            ..ReplicationOptions::default()
        });
        doc(&a, "one");
        doc(&b, "two");
        r.sync(&a, &b).unwrap();
        r.history.clear();
        let (into_a, into_b) = r.sync(&a, &b).unwrap();
        // Everything re-examined, nothing re-applied.
        assert!(into_a.candidates >= 2);
        assert_eq!(into_a.added + into_a.updated + into_a.conflicts, 0);
        assert_eq!(into_b.added + into_b.updated + into_b.conflicts, 0);
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn negotiated_cleared_history_examines_nothing_when_converged() {
        // The negotiation headline: losing the history costs 16 bytes, not
        // a full re-enumeration — converged roots match and the pass ends
        // at round one.
        let (a, b, mut r) = pair();
        for i in 0..25 {
            doc(&a, &format!("d{i}"));
        }
        r.sync(&a, &b).unwrap();
        r.history.clear();
        let (into_a, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_a.candidates, 0, "{into_a:?}");
        assert_eq!(into_b.candidates, 0);
        assert_eq!(into_a.root_matched, 1);
        assert_eq!(into_a.negotiation_bytes, 16);
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn negotiation_enumerates_only_differing_notes() {
        let (a, b, mut r) = pair();
        for i in 0..40 {
            doc(&a, &format!("d{i}"));
        }
        r.sync(&a, &b).unwrap();
        // Touch 3 of 40 documents, then throw the history away: the
        // negotiated pull must still examine exactly the 3.
        let ids = a.note_ids(Some(NoteClass::Document)).unwrap();
        for id in ids.iter().take(3) {
            let mut n = a.open_note(*id).unwrap();
            n.set("Subject", Value::text("touched"));
            a.save(&mut n).unwrap();
        }
        r.history.clear();
        let report = r.pull(&b, &a).unwrap();
        assert_eq!(report.candidates, 3, "{report:?}");
        assert_eq!(report.updated, 3);
        assert!(report.buckets_differing >= 1);
        assert!(report.negotiation_bytes > 16, "descended past the root");
        assert!(docs_equal(&a, &b));
    }

    #[test]
    fn cleared_history_convergence_matches_with_history() {
        // Satellite check: a replica that lost its history converges to
        // the byte-identical state a with-history replica reaches.
        let (src, with_history, mut r1) = pair();
        for i in 0..15 {
            doc(&src, &format!("d{i}"));
        }
        src.delete(src.note_ids(Some(NoteClass::Document)).unwrap()[0])
            .unwrap();
        r1.pull(&with_history, &src).unwrap();
        // More churn, then a second incremental pull.
        for i in 0..5 {
            doc(&src, &format!("late{i}"));
        }
        r1.pull(&with_history, &src).unwrap();

        let amnesiac = Arc::new(
            Database::open_in_memory(
                DbConfig::new("Disc", ReplicaId(77), ReplicaId(3)),
                LogicalClock::starting_at(domino_types::Timestamp(900)),
            )
            .unwrap(),
        );
        let mut r2 = Replicator::new(ReplicationOptions::default());
        r2.pull(&amnesiac, &src).unwrap();
        r2.history.clear();
        r2.abandon_pending();
        let after_clear = r2.pull(&amnesiac, &src).unwrap();
        assert!(!after_clear.changed_anything(), "{after_clear:?}");
        assert!(docs_equal(&with_history, &amnesiac));
        assert_eq!(
            with_history.stubs().unwrap().len(),
            amnesiac.stubs().unwrap().len()
        );
    }

    #[test]
    fn deep_edit_runs_apply_cleanly_beyond_fingerprint_depth() {
        // The A2 anomaly, eliminated: with the unbounded hash chain a
        // replica any number of edits behind still proves clean descent.
        let (a, b, mut r) = pair();
        let n = doc(&a, "v0");
        r.sync(&a, &b).unwrap();
        for i in 0..(MAX_REVISIONS * 4) {
            let mut d = a.open_by_unid(n.unid()).unwrap();
            d.set("Subject", Value::text(format!("v{}", i + 1)));
            a.save(&mut d).unwrap();
        }
        let (_, into_b) = r.sync(&a, &b).unwrap();
        assert_eq!(into_b.conflicts, 0, "{into_b:?}");
        assert_eq!(into_b.updated, 1);
        assert_eq!(
            b.open_by_unid(n.unid())
                .unwrap()
                .get_text("Subject")
                .unwrap(),
            format!("v{}", MAX_REVISIONS * 4)
        );
        assert_eq!(a.document_count().unwrap(), 1, "no conflict documents");
    }

    #[test]
    fn forget_instance_prunes_history_and_cursors() {
        use crate::transport::ScriptedTransport;
        let (a, b, mut r) = pair();
        doc(&a, "x");
        r.sync(&a, &b).unwrap();
        assert_eq!(r.history.len(), 2, "one cutoff per direction");
        // Park a cursor for the pair.
        for i in 0..10 {
            doc(&a, &format!("more{i}"));
        }
        let mut t = ScriptedTransport::failing_at((0..100).collect());
        let _ = r.pull_via(&b, &a, &mut t);
        assert_eq!(r.pending_count(), 1);
        r.forget_instance(a.instance_id());
        assert_eq!(r.history.len(), 0);
        assert_eq!(r.pending_count(), 0);
        assert!(!r.has_pending());
        // The pair still converges from scratch afterwards.
        r.sync(&a, &b).unwrap();
        assert!(docs_equal(&a, &b));
    }
}
