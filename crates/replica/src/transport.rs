//! The replication transport abstraction and retry policy.
//!
//! A [`Replicator`](crate::Replicator) pulls candidates in bounded batches;
//! each batch crosses the wire as one *message* delivered through a
//! [`Transport`]. A transport may fail a delivery with
//! [`DominoError::Unavailable`] — the pull then stops at the last durably
//! applied candidate and its [cursor](crate::replicator::PullCursor)
//! survives, so a later attempt resumes instead of restarting. This is the
//! paper's defining scenario: epidemic replication that stays eventually
//! consistent over flaky dial-up links.
//!
//! [`RetryPolicy`] bounds how hard a caller leans on a flaky transport:
//! attempts, exponential backoff with deterministic jitter (seeded from the
//! logical clock, so simulations stay reproducible), and a per-pass backoff
//! budget.

use domino_types::{DominoError, Result};

/// Delivers replication messages between two replicas.
///
/// One `deliver` call is made per candidate batch, *before* the batch is
/// applied (it models the request/response round-trip that ships the
/// batch). Returning [`DominoError::Unavailable`] marks the message lost in
/// flight; any other error is treated as non-transient and is not retried.
pub trait Transport {
    /// Attempt to deliver one message carrying `notes` candidates.
    fn deliver(&mut self, notes: u64) -> Result<()>;
}

/// The always-reliable in-process transport (the pre-fault default).
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanTransport;

impl Transport for CleanTransport {
    fn deliver(&mut self, _notes: u64) -> Result<()> {
        Ok(())
    }
}

/// A transport that fails scripted deliveries — the unit-test analogue of
/// the storage layer's `FaultPlan`: arm it with the indices (0-based, over
/// the transport's lifetime) of messages to lose.
#[derive(Debug, Clone, Default)]
pub struct ScriptedTransport {
    /// Message indices to fail (sorted not required).
    fail_at: Vec<u64>,
    /// Messages attempted so far.
    sent: u64,
    /// Messages that were failed.
    dropped: u64,
}

impl ScriptedTransport {
    /// Fail the deliveries whose 0-based index appears in `fail_at`.
    pub fn failing_at(fail_at: Vec<u64>) -> ScriptedTransport {
        ScriptedTransport {
            fail_at,
            sent: 0,
            dropped: 0,
        }
    }

    /// Messages attempted so far (delivered + dropped).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages failed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Transport for ScriptedTransport {
    fn deliver(&mut self, _notes: u64) -> Result<()> {
        let idx = self.sent;
        self.sent += 1;
        if self.fail_at.contains(&idx) {
            self.dropped += 1;
            return Err(DominoError::Unavailable(format!(
                "scripted message loss at delivery {idx}"
            )));
        }
        Ok(())
    }
}

/// How hard to retry a replication pass over a flaky transport.
///
/// Backoff is exponential (`base_backoff * 2^(attempt-1)`, capped at
/// `max_backoff`) with optional deterministic jitter drawn from a seed the
/// caller derives from the logical clock — so retry schedules are
/// reproducible tick-for-tick in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per pull, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in clock ticks.
    pub base_backoff: u64,
    /// Ceiling on a single backoff, in clock ticks.
    pub max_backoff: u64,
    /// Randomize each backoff to `[backoff/2, backoff]` (decorrelates
    /// retry storms when many links fail together).
    pub jitter: bool,
    /// Give up once cumulative backoff for one pass exceeds this budget
    /// (0 = unlimited).
    pub pass_timeout: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::standard()
    }
}

impl RetryPolicy {
    /// No retries: fail the pass on the first transport fault (the
    /// pre-fault behaviour, and the E14 baseline).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: 0,
            max_backoff: 0,
            jitter: false,
            pass_timeout: 0,
        }
    }

    /// A sensible default: 8 attempts, 4-tick base backoff doubling to a
    /// 256-tick cap, jittered, no pass timeout.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: 4,
            max_backoff: 256,
            jitter: true,
            pass_timeout: 0,
        }
    }

    /// Does this policy retry at all?
    pub fn retries(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff in ticks before retry number `attempt` (1-based: the wait
    /// after the first failure is `backoff(1, _)`). `seed` feeds the
    /// deterministic jitter; pass something clock-derived.
    pub fn backoff(&self, attempt: u32, seed: u64) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max_backoff.max(self.base_backoff));
        if !self.jitter || raw < 2 {
            return raw;
        }
        let half = raw / 2;
        half + splitmix64(seed ^ u64::from(attempt)) % (raw - half + 1)
    }
}

/// What a retried pull did, beyond its
/// [`ReplicationReport`](crate::ReplicationReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Pull attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Total ticks spent backing off between attempts.
    pub backoff_ticks: u64,
    /// True if a pass was abandoned with the policy exhausted (set by
    /// schedulers that swallow the error and leave the cursor parked —
    /// e.g. the network simulator; a successful pull always reports
    /// `false`).
    pub gave_up: bool,
}

impl RetryStats {
    /// Fold another direction's stats into this one (for `sync`).
    pub fn merge_from(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.backoff_ticks += other.backoff_ticks;
        self.gave_up |= other.gave_up;
    }
}

/// SplitMix64: the tiny deterministic mixer used for backoff jitter (and by
/// the network fault clock). Public so `domino-net` shares one definition.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_transport_fails_listed_messages() {
        let mut t = ScriptedTransport::failing_at(vec![1, 3]);
        assert!(t.deliver(5).is_ok());
        assert!(t.deliver(5).is_err());
        assert!(t.deliver(5).is_ok());
        assert!(t.deliver(5).is_err());
        assert!(t.deliver(5).is_ok());
        assert_eq!(t.sent(), 5);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter: false,
            ..RetryPolicy::standard()
        };
        assert_eq!(p.backoff(1, 0), 4);
        assert_eq!(p.backoff(2, 0), 8);
        assert_eq!(p.backoff(3, 0), 16);
        assert_eq!(p.backoff(10, 0), 256, "capped at max_backoff");
        assert_eq!(p.backoff(33, 0), 256, "huge attempts do not overflow");
    }

    #[test]
    fn jitter_stays_in_range_and_is_deterministic() {
        let p = RetryPolicy::standard();
        for attempt in 1..6 {
            let raw = RetryPolicy { jitter: false, ..p }.backoff(attempt, 0);
            for seed in 0..50u64 {
                let b = p.backoff(attempt, seed);
                assert!(b >= raw / 2 && b <= raw, "{b} outside [{}, {raw}]", raw / 2);
                assert_eq!(b, p.backoff(attempt, seed), "same seed, same jitter");
            }
        }
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retries());
        assert_eq!(p.backoff(1, 42), 0);
    }
}
