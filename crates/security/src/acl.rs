//! Access-control lists, roles, and the group directory.

use std::collections::HashMap;

/// The seven Notes access levels, in increasing order of privilege.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AccessLevel {
    /// May not open the database.
    #[default]
    NoAccess,
    /// May create documents but read none (drop-box databases).
    Depositor,
    /// May read documents (subject to reader fields).
    Reader,
    /// Reader + may create documents and edit those they authored.
    Author,
    /// May edit all documents.
    Editor,
    /// Editor + may change design notes (forms, views).
    Designer,
    /// Designer + may change the ACL itself.
    Manager,
}

impl AccessLevel {
    pub const ALL: [AccessLevel; 7] = [
        AccessLevel::NoAccess,
        AccessLevel::Depositor,
        AccessLevel::Reader,
        AccessLevel::Author,
        AccessLevel::Editor,
        AccessLevel::Designer,
        AccessLevel::Manager,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AccessLevel::NoAccess => "NoAccess",
            AccessLevel::Depositor => "Depositor",
            AccessLevel::Reader => "Reader",
            AccessLevel::Author => "Author",
            AccessLevel::Editor => "Editor",
            AccessLevel::Designer => "Designer",
            AccessLevel::Manager => "Manager",
        }
    }

    pub fn parse(s: &str) -> Option<AccessLevel> {
        AccessLevel::ALL
            .into_iter()
            .find(|l| l.name().eq_ignore_ascii_case(s))
    }

    /// May open the database and read (some) documents.
    pub fn can_read(self) -> bool {
        self >= AccessLevel::Reader
    }

    /// May create new documents.
    pub fn can_create(self) -> bool {
        self == AccessLevel::Depositor || self >= AccessLevel::Author
    }

    /// May edit arbitrary documents (authors handled separately).
    pub fn can_edit_any(self) -> bool {
        self >= AccessLevel::Editor
    }

    pub fn can_change_design(self) -> bool {
        self >= AccessLevel::Designer
    }

    pub fn can_change_acl(self) -> bool {
        self >= AccessLevel::Manager
    }

    /// May delete documents they can edit.
    pub fn can_delete(self) -> bool {
        self >= AccessLevel::Editor
    }
}

/// One ACL row: a level plus role memberships.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AclEntry {
    pub level: AccessLevel,
    pub roles: Vec<String>,
}

impl AclEntry {
    pub fn new(level: AccessLevel) -> AclEntry {
        AclEntry {
            level,
            roles: Vec::new(),
        }
    }

    pub fn with_role(mut self, role: impl Into<String>) -> AclEntry {
        self.roles.push(role.into());
        self
    }
}

/// A user's *effective* access once group memberships are folded in.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EffectiveAccess {
    pub level: AccessLevel,
    pub roles: Vec<String>,
}

/// The group directory (Domino's Name & Address Book, reduced to what ACL
/// evaluation needs). Group membership is transitive.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    groups: HashMap<String, Vec<String>>, // lowercase group -> members
}

impl Directory {
    pub fn new() -> Directory {
        Directory::default()
    }

    pub fn add_group<I, S>(&mut self, name: &str, members: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.groups
            .entry(name.to_lowercase())
            .or_default()
            .extend(members.into_iter().map(|m| m.into().to_lowercase()));
    }

    /// All names `user` answers to: themself plus every group reachable
    /// through membership (transitively), lowercased.
    pub fn names_of(&self, user: &str) -> Vec<String> {
        let mut names = vec![user.to_lowercase()];
        let mut i = 0;
        while i < names.len() {
            for (group, members) in &self.groups {
                if members.contains(&names[i]) && !names.contains(group) {
                    names.push(group.clone());
                }
            }
            i += 1;
        }
        names
    }
}

/// The database access-control list.
#[derive(Debug, Clone, Default)]
pub struct Acl {
    entries: HashMap<String, AclEntry>, // lowercase name -> entry
    default_entry: AclEntry,
}

impl Acl {
    pub fn new(default_level: AccessLevel) -> Acl {
        Acl {
            entries: HashMap::new(),
            default_entry: AclEntry::new(default_level),
        }
    }

    /// A permissive ACL for tests and single-user databases.
    pub fn wide_open() -> Acl {
        Acl::new(AccessLevel::Manager)
    }

    pub fn set(&mut self, name: &str, entry: AclEntry) {
        self.entries.insert(name.to_lowercase(), entry);
    }

    pub fn remove(&mut self, name: &str) -> Option<AclEntry> {
        self.entries.remove(&name.to_lowercase())
    }

    pub fn get(&self, name: &str) -> Option<&AclEntry> {
        self.entries.get(&name.to_lowercase())
    }

    pub fn default_entry(&self) -> &AclEntry {
        &self.default_entry
    }

    pub fn set_default(&mut self, entry: AclEntry) {
        self.default_entry = entry;
    }

    /// Compute effective access: the *highest* level among the user's own
    /// entry and group entries (roles union across all matches); the
    /// -Default- entry applies only when nothing matches.
    pub fn effective(&self, dir: &Directory, user: &str) -> EffectiveAccess {
        let names = dir.names_of(user);
        let mut matched = false;
        let mut level = AccessLevel::NoAccess;
        let mut roles: Vec<String> = Vec::new();
        for name in &names {
            if let Some(entry) = self.entries.get(name) {
                matched = true;
                level = level.max(entry.level);
                for r in &entry.roles {
                    if !roles.iter().any(|x| x.eq_ignore_ascii_case(r)) {
                        roles.push(r.clone());
                    }
                }
            }
        }
        if !matched {
            return EffectiveAccess {
                level: self.default_entry.level,
                roles: self.default_entry.roles.clone(),
            };
        }
        // Deterministic order (group iteration order is not).
        roles.sort_unstable();
        EffectiveAccess { level, roles }
    }

    // --- serialization (the ACL note stores this as a text list) ---------

    /// Encode as text lines `name|level|role,role`. The default entry is
    /// the name `-Default-`.
    pub fn to_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "-Default-|{}|{}",
            self.default_entry.level.name(),
            self.default_entry.roles.join(",")
        )];
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort();
        for name in names {
            let e = &self.entries[name];
            lines.push(format!("{name}|{}|{}", e.level.name(), e.roles.join(",")));
        }
        lines
    }

    pub fn from_lines(lines: &[String]) -> Option<Acl> {
        let mut acl = Acl::new(AccessLevel::NoAccess);
        for line in lines {
            let mut parts = line.splitn(3, '|');
            let name = parts.next()?;
            let level = AccessLevel::parse(parts.next()?)?;
            let roles: Vec<String> = parts
                .next()
                .unwrap_or("")
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.to_string())
                .collect();
            let entry = AclEntry { level, roles };
            if name.eq_ignore_ascii_case("-Default-") {
                acl.default_entry = entry;
            } else {
                acl.set(name, entry);
            }
        }
        Some(acl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        for w in AccessLevel::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn level_capabilities() {
        assert!(!AccessLevel::NoAccess.can_read());
        assert!(AccessLevel::Depositor.can_create());
        assert!(!AccessLevel::Depositor.can_read());
        assert!(AccessLevel::Reader.can_read());
        assert!(!AccessLevel::Reader.can_create());
        assert!(AccessLevel::Author.can_create());
        assert!(!AccessLevel::Author.can_edit_any());
        assert!(AccessLevel::Editor.can_edit_any());
        assert!(!AccessLevel::Editor.can_change_design());
        assert!(AccessLevel::Designer.can_change_design());
        assert!(!AccessLevel::Designer.can_change_acl());
        assert!(AccessLevel::Manager.can_change_acl());
    }

    #[test]
    fn names_roundtrip() {
        for l in AccessLevel::ALL {
            assert_eq!(AccessLevel::parse(l.name()), Some(l));
        }
        assert_eq!(AccessLevel::parse("editor"), Some(AccessLevel::Editor));
        assert_eq!(AccessLevel::parse("nope"), None);
    }

    #[test]
    fn default_applies_only_without_match() {
        let mut acl = Acl::new(AccessLevel::Reader);
        acl.set("bob", AclEntry::new(AccessLevel::NoAccess));
        let dir = Directory::new();
        assert_eq!(acl.effective(&dir, "alice").level, AccessLevel::Reader);
        assert_eq!(acl.effective(&dir, "Bob").level, AccessLevel::NoAccess);
    }

    #[test]
    fn highest_level_among_groups_wins() {
        let mut dir = Directory::new();
        dir.add_group("staff", ["ann"]);
        dir.add_group("admins", ["ann"]);
        let mut acl = Acl::new(AccessLevel::NoAccess);
        acl.set("staff", AclEntry::new(AccessLevel::Reader).with_role("R1"));
        acl.set(
            "admins",
            AclEntry::new(AccessLevel::Manager).with_role("R2"),
        );
        let eff = acl.effective(&dir, "ann");
        assert_eq!(eff.level, AccessLevel::Manager);
        assert_eq!(eff.roles, vec!["R1".to_string(), "R2".to_string()]);
    }

    #[test]
    fn nested_groups_resolve_transitively() {
        let mut dir = Directory::new();
        dir.add_group("dev", ["zoe"]);
        dir.add_group("all-staff", ["dev"]);
        let mut acl = Acl::new(AccessLevel::NoAccess);
        acl.set("all-staff", AclEntry::new(AccessLevel::Author));
        assert_eq!(acl.effective(&dir, "zoe").level, AccessLevel::Author);
    }

    #[test]
    fn acl_serialization_roundtrip() {
        let mut acl = Acl::new(AccessLevel::Reader);
        acl.set_default(AclEntry::new(AccessLevel::Reader).with_role("Everyone"));
        acl.set(
            "alice",
            AclEntry::new(AccessLevel::Manager).with_role("Admin"),
        );
        acl.set("HR", AclEntry::new(AccessLevel::Editor));
        let lines = acl.to_lines();
        let back = Acl::from_lines(&lines).unwrap();
        assert_eq!(back.default_entry().level, AccessLevel::Reader);
        assert_eq!(back.get("ALICE").unwrap().level, AccessLevel::Manager);
        assert_eq!(back.get("alice").unwrap().roles, vec!["Admin".to_string()]);
        assert_eq!(back.get("hr").unwrap().level, AccessLevel::Editor);
    }

    #[test]
    fn from_lines_rejects_garbage() {
        assert!(Acl::from_lines(&["no pipes here".to_string()]).is_none());
        assert!(Acl::from_lines(&["x|NotALevel|".to_string()]).is_none());
    }

    #[test]
    fn remove_entry() {
        let mut acl = Acl::new(AccessLevel::NoAccess);
        acl.set("x", AclEntry::new(AccessLevel::Reader));
        assert!(acl.remove("X").is_some());
        assert!(acl.get("x").is_none());
    }
}
