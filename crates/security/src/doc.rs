//! Per-document reader/author enforcement.
//!
//! A document with any `$Readers`-flagged item is visible only to names on
//! that list (user, group, or `[Role]`) — *regardless of ACL level*, except
//! that the list never grants more than the ACL does. `$Authors` items work
//! the other way: they let Author-level users edit documents they did not
//! create.

use crate::acl::EffectiveAccess;

/// Does any entry of `list` name the user (one of `user_names`, lowercase)
/// or one of their `[Roles]`?
fn list_matches(access: &EffectiveAccess, user_names: &[String], list: &[String]) -> bool {
    list.iter().any(|entry| {
        let e = entry.trim();
        if let Some(role) = e.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            access.roles.iter().any(|r| r.eq_ignore_ascii_case(role))
        } else {
            user_names.iter().any(|n| n.eq_ignore_ascii_case(e))
        }
    })
}

/// May the user read a document whose combined `$Readers` lists are
/// `readers`? An empty list means "unrestricted".
///
/// `user_names` must be the user's full alias set
/// ([`crate::Directory::names_of`]).
pub fn can_read_document(
    access: &EffectiveAccess,
    user_names: &[String],
    readers: &[String],
) -> bool {
    if !access.level.can_read() {
        return false;
    }
    if readers.is_empty() {
        return true;
    }
    list_matches(access, user_names, readers)
}

/// May the user edit a document? Editors and above always can. Authors can
/// if a `$Authors` list names them or they are the document's author.
///
/// `authors` is the combined `$Authors` lists; `doc_author` the stored
/// creator name.
pub fn can_edit_document(
    access: &EffectiveAccess,
    user_names: &[String],
    authors: &[String],
    doc_author: &str,
) -> bool {
    if access.level.can_edit_any() {
        return true;
    }
    if !access.level.can_create() || !access.level.can_read() {
        // Depositors may create but never edit.
        return false;
    }
    // Author level.
    if user_names
        .iter()
        .any(|n| n.eq_ignore_ascii_case(doc_author))
    {
        return true;
    }
    list_matches(access, user_names, authors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AccessLevel, EffectiveAccess};

    fn eff(level: AccessLevel, roles: &[&str]) -> EffectiveAccess {
        EffectiveAccess {
            level,
            roles: roles.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn names(user: &str) -> Vec<String> {
        vec![user.to_lowercase()]
    }

    #[test]
    fn empty_readers_means_unrestricted() {
        assert!(can_read_document(
            &eff(AccessLevel::Reader, &[]),
            &names("a"),
            &[]
        ));
    }

    #[test]
    fn no_access_never_reads() {
        let r = vec!["a".to_string()];
        assert!(!can_read_document(
            &eff(AccessLevel::NoAccess, &[]),
            &names("a"),
            &r
        ));
        assert!(!can_read_document(
            &eff(AccessLevel::Depositor, &[]),
            &names("a"),
            &[]
        ));
    }

    #[test]
    fn reader_list_filters_by_name_case_insensitive() {
        let readers = vec!["Alice".to_string(), "Bob".to_string()];
        assert!(can_read_document(
            &eff(AccessLevel::Editor, &[]),
            &names("ALICE"),
            &readers
        ));
        assert!(!can_read_document(
            &eff(AccessLevel::Manager, &[]),
            &names("carol"),
            &readers
        ));
    }

    #[test]
    fn reader_list_matches_groups() {
        let readers = vec!["HR".to_string()];
        let mut user_names = names("dana");
        user_names.push("hr".to_string()); // from Directory::names_of
        assert!(can_read_document(
            &eff(AccessLevel::Reader, &[]),
            &user_names,
            &readers
        ));
    }

    #[test]
    fn reader_list_matches_roles() {
        let readers = vec!["[Auditors]".to_string()];
        assert!(can_read_document(
            &eff(AccessLevel::Reader, &["Auditors"]),
            &names("eve"),
            &readers
        ));
        assert!(!can_read_document(
            &eff(AccessLevel::Reader, &["Other"]),
            &names("eve"),
            &readers
        ));
    }

    #[test]
    fn editors_edit_everything() {
        assert!(can_edit_document(
            &eff(AccessLevel::Editor, &[]),
            &names("x"),
            &[],
            "someone-else"
        ));
    }

    #[test]
    fn authors_edit_own_documents_only() {
        let a = eff(AccessLevel::Author, &[]);
        assert!(can_edit_document(&a, &names("ann"), &[], "Ann"));
        assert!(!can_edit_document(&a, &names("ann"), &[], "bob"));
    }

    #[test]
    fn authors_field_extends_editability() {
        let a = eff(AccessLevel::Author, &[]);
        let authors = vec!["ann".to_string()];
        assert!(can_edit_document(&a, &names("ann"), &authors, "bob"));
        // ...but never below Author level.
        let r = eff(AccessLevel::Reader, &[]);
        assert!(!can_edit_document(&r, &names("ann"), &authors, "bob"));
    }

    #[test]
    fn depositor_cannot_edit() {
        let d = eff(AccessLevel::Depositor, &[]);
        assert!(!can_edit_document(&d, &names("ann"), &[], "ann"));
    }
}
