//! Notes security: database ACLs plus per-document reader/author fields.
//!
//! Domino checks access at two levels. The database ACL grants each user
//! (or group, or server) one of seven ordered [`AccessLevel`]s plus a set of
//! *roles*; then individual documents can narrow readability with
//! `$Readers`-flagged items and broaden editability with `$Authors` items.
//! This crate is pure policy — it knows names, levels, roles, and lists,
//! and is wired to actual notes by `domino-core`.

pub mod acl;
pub mod doc;

pub use acl::{AccessLevel, Acl, AclEntry, Directory};
pub use doc::{can_edit_document, can_read_document};

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// End-to-end policy check: ACL + groups + reader fields together.
    #[test]
    fn acl_and_reader_fields_compose() {
        let mut dir = Directory::new();
        dir.add_group("HR", ["alice", "bob"]);

        let mut acl = Acl::new(AccessLevel::NoAccess);
        acl.set(
            "HR",
            AclEntry::new(AccessLevel::Reader).with_role("Personnel"),
        );
        acl.set("carol", AclEntry::new(AccessLevel::Editor));

        // Alice reads via the HR group...
        let alice = acl.effective(&dir, "alice");
        assert_eq!(alice.level, AccessLevel::Reader);
        // ...but a reader field naming only [Personnel] role holders still
        // admits her, while excluding Carol despite Editor access.
        let readers = vec!["[Personnel]".to_string()];
        assert!(can_read_document(&alice, &dir.names_of("alice"), &readers));
        let carol = acl.effective(&dir, "carol");
        assert!(!can_read_document(&carol, &dir.names_of("carol"), &readers));
    }
}
