//! The Domino command cache.
//!
//! Domino keeps rendered `?OpenView`/`?ReadViewEntries` pages in a
//! server-wide *command cache* so hot view pages are served without
//! touching the view index at all. A cached page is keyed by everything
//! that can change its bytes: database, view, window (`start`, `count`),
//! output flavor, and the requesting user's *access class* — a digest of
//! their ACL level, roles, and full alias set. Because the alias set
//! includes the user's own name (the same inputs the `$Readers` check
//! consumes), two users share a class only when the reader-field check
//! could never tell them apart; a cached page can therefore never leak a
//! document across an access boundary.
//!
//! Invalidation is by *change sequence*
//! ([`Database::change_seq`](domino_core::Database::change_seq)): each
//! page records the sequence it was rendered at and a lookup only hits
//! when the database's current sequence still matches — any committed
//! save or delete silently expires every page of that database. Eviction
//! beyond that is FIFO within a fixed capacity.

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

use domino_obs as obs;
use parking_lot::Mutex;

struct Metrics {
    hits: &'static obs::Counter,
    misses: &'static obs::Counter,
    evictions: &'static obs::Counter,
    invalidations: &'static obs::Counter,
    entries: &'static obs::Gauge,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        hits: obs::counter("Http.Cache.Hits"),
        misses: obs::counter("Http.Cache.Misses"),
        evictions: obs::counter("Http.Cache.Evictions"),
        invalidations: obs::counter("Http.Cache.Invalidations"),
        entries: obs::gauge("Http.Cache.Entries"),
    })
}

/// Which rendered flavor of a view page a key addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// `?OpenView` HTML.
    Html,
    /// `?ReadViewEntries` JSON.
    Json,
}

/// Everything that can change the bytes of a cacheable page.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Database path element.
    pub db: String,
    /// View name (lowercased).
    pub view: String,
    /// 1-based first row of the window.
    pub start: usize,
    /// Window size.
    pub count: usize,
    /// HTML or JSON.
    pub kind: PageKind,
    /// Digest of the user's ACL level, roles, and alias set.
    pub access_class: u64,
}

/// One cached rendered page.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// The database change sequence the page was rendered at.
    pub seq: u64,
    /// Rendered bytes.
    pub body: String,
    /// MIME type of `body`.
    pub content_type: &'static str,
}

struct Inner {
    map: HashMap<CacheKey, CachedPage>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A fixed-capacity command cache. Capacity 0 disables caching entirely
/// (every lookup misses, nothing is stored).
pub struct CommandCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl CommandCache {
    /// A cache holding at most `capacity` rendered pages.
    pub fn new(capacity: usize) -> CommandCache {
        CommandCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
        }
    }

    /// Look up a page, hitting only if it was rendered at `current_seq`.
    /// A present-but-stale page counts as an invalidation and is dropped.
    pub fn lookup(&self, key: &CacheKey, current_seq: u64) -> Option<CachedPage> {
        if self.capacity == 0 {
            return None;
        }
        let mut g = self.inner.lock();
        match g.map.get(key) {
            Some(page) if page.seq == current_seq => {
                m().hits.inc();
                Some(page.clone())
            }
            Some(_) => {
                g.map.remove(key);
                g.order.retain(|k| k != key);
                m().invalidations.inc();
                m().misses.inc();
                m().entries.set(g.map.len() as i64);
                None
            }
            None => {
                m().misses.inc();
                None
            }
        }
    }

    /// Store a rendered page (replacing any entry under the same key),
    /// evicting the oldest entry when at capacity.
    pub fn insert(&self, key: CacheKey, page: CachedPage) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if g.map.insert(key.clone(), page).is_none() {
            g.order.push_back(key);
            while g.map.len() > self.capacity {
                if let Some(old) = g.order.pop_front() {
                    g.map.remove(&old);
                    m().evictions.inc();
                } else {
                    break;
                }
            }
        }
        m().entries.set(g.map.len() as i64);
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(start: usize, class: u64) -> CacheKey {
        CacheKey {
            db: "d".into(),
            view: "v".into(),
            start,
            count: 10,
            kind: PageKind::Html,
            access_class: class,
        }
    }

    fn page(seq: u64, body: &str) -> CachedPage {
        CachedPage {
            seq,
            body: body.into(),
            content_type: "text/html",
        }
    }

    #[test]
    fn hits_only_at_matching_change_seq() {
        let c = CommandCache::new(8);
        c.insert(key(1, 0), page(5, "v5"));
        assert_eq!(c.lookup(&key(1, 0), 5).unwrap().body, "v5");
        // Any database change expires the page.
        assert!(c.lookup(&key(1, 0), 6).is_none());
        // The stale entry was dropped, not resurrected.
        assert!(c.lookup(&key(1, 0), 5).is_none());
    }

    #[test]
    fn access_class_partitions_the_cache() {
        let c = CommandCache::new(8);
        c.insert(key(1, 0xA), page(1, "alice's page"));
        assert!(c.lookup(&key(1, 0xB), 1).is_none());
        assert_eq!(c.lookup(&key(1, 0xA), 1).unwrap().body, "alice's page");
    }

    #[test]
    fn fifo_eviction_and_zero_capacity() {
        let c = CommandCache::new(2);
        c.insert(key(1, 0), page(1, "a"));
        c.insert(key(2, 0), page(1, "b"));
        c.insert(key(3, 0), page(1, "c"));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&key(1, 0), 1).is_none(), "oldest evicted");
        assert!(c.lookup(&key(3, 0), 1).is_some());

        let off = CommandCache::new(0);
        off.insert(key(1, 0), page(1, "a"));
        assert!(off.lookup(&key(1, 0), 1).is_none());
        assert!(off.is_empty());
    }
}
