//! The Domino command cache.
//!
//! Domino keeps rendered `?OpenView`/`?ReadViewEntries` pages in a
//! server-wide *command cache* so hot view pages are served without
//! touching the view index at all. A cached page is keyed by everything
//! that can change its bytes: database, view, window (`start`, `count`),
//! output flavor, and the requesting user's *access class* — a digest of
//! their ACL level, roles, and full alias set. Because the alias set
//! includes the user's own name (the same inputs the `$Readers` check
//! consumes), two users share a class only when the reader-field check
//! could never tell them apart; a cached page can therefore never leak a
//! document across an access boundary.
//!
//! Invalidation is by *version pair*: each page records the view-index
//! version and the snapshot change sequence
//! ([`Snapshot::seq`](domino_core::Snapshot::seq)) it was rendered from,
//! and a lookup only hits when both still match. The view version covers
//! everything the rendered rows depend on (index contents, ordering,
//! totals); the snapshot sequence covers the per-row document reads the
//! renderer performed outside the index. Equal pairs imply byte-identical
//! pages — the index mutates under an exclusive guard that bumps its
//! version, and snapshots at equal sequences are immutable — so a
//! concurrent writer can only make a page expire, never hit stale.
//! Eviction beyond that is FIFO within a fixed capacity.

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

use domino_obs as obs;
use parking_lot::Mutex;

struct Metrics {
    hits: &'static obs::Counter,
    misses: &'static obs::Counter,
    evictions: &'static obs::Counter,
    invalidations: &'static obs::Counter,
    entries: &'static obs::Gauge,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        hits: obs::counter("Http.Cache.Hits"),
        misses: obs::counter("Http.Cache.Misses"),
        evictions: obs::counter("Http.Cache.Evictions"),
        invalidations: obs::counter("Http.Cache.Invalidations"),
        entries: obs::gauge("Http.Cache.Entries"),
    })
}

/// Which rendered flavor of a view page a key addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// `?OpenView` HTML.
    Html,
    /// `?ReadViewEntries` JSON.
    Json,
}

/// Everything that can change the bytes of a cacheable page.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Database path element.
    pub db: String,
    /// View name (lowercased).
    pub view: String,
    /// 1-based first row of the window.
    pub start: usize,
    /// Window size.
    pub count: usize,
    /// HTML or JSON.
    pub kind: PageKind,
    /// Digest of the user's ACL level, roles, and alias set.
    pub access_class: u64,
}

/// One cached rendered page.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// The view-index version the rows were taken at.
    pub view_version: u64,
    /// The snapshot change sequence the per-row reads ran against.
    pub snapshot_seq: u64,
    /// Rendered bytes.
    pub body: String,
    /// MIME type of `body`.
    pub content_type: &'static str,
}

struct Inner {
    map: HashMap<CacheKey, CachedPage>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A fixed-capacity command cache. Capacity 0 disables caching entirely
/// (every lookup misses, nothing is stored).
pub struct CommandCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl CommandCache {
    /// A cache holding at most `capacity` rendered pages.
    pub fn new(capacity: usize) -> CommandCache {
        CommandCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
        }
    }

    /// Look up a page, hitting only if it was rendered at exactly this
    /// `(view_version, snapshot_seq)` pair. A present-but-stale page
    /// counts as an invalidation and is dropped.
    pub fn lookup(
        &self,
        key: &CacheKey,
        view_version: u64,
        snapshot_seq: u64,
    ) -> Option<CachedPage> {
        if self.capacity == 0 {
            return None;
        }
        let mut g = self.inner.lock();
        match g.map.get(key) {
            Some(page)
                if page.view_version == view_version && page.snapshot_seq == snapshot_seq =>
            {
                m().hits.inc();
                Some(page.clone())
            }
            Some(_) => {
                g.map.remove(key);
                g.order.retain(|k| k != key);
                m().invalidations.inc();
                m().misses.inc();
                m().entries.set(g.map.len() as i64);
                None
            }
            None => {
                m().misses.inc();
                None
            }
        }
    }

    /// Store a rendered page (replacing any entry under the same key),
    /// evicting the oldest entry when at capacity.
    pub fn insert(&self, key: CacheKey, page: CachedPage) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if g.map.insert(key.clone(), page).is_none() {
            g.order.push_back(key);
            while g.map.len() > self.capacity {
                if let Some(old) = g.order.pop_front() {
                    g.map.remove(&old);
                    m().evictions.inc();
                } else {
                    break;
                }
            }
        }
        m().entries.set(g.map.len() as i64);
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(start: usize, class: u64) -> CacheKey {
        CacheKey {
            db: "d".into(),
            view: "v".into(),
            start,
            count: 10,
            kind: PageKind::Html,
            access_class: class,
        }
    }

    fn page(view_version: u64, snapshot_seq: u64, body: &str) -> CachedPage {
        CachedPage {
            view_version,
            snapshot_seq,
            body: body.into(),
            content_type: "text/html",
        }
    }

    #[test]
    fn hits_only_at_matching_version_pair() {
        let c = CommandCache::new(8);
        c.insert(key(1, 0), page(3, 5, "v5"));
        assert_eq!(c.lookup(&key(1, 0), 3, 5).unwrap().body, "v5");
        // A database commit (snapshot seq moved) expires the page...
        assert!(c.lookup(&key(1, 0), 3, 6).is_none());
        // ...and the stale entry was dropped, not resurrected.
        assert!(c.lookup(&key(1, 0), 3, 5).is_none());
        // A view mutation alone (version moved) expires it too.
        c.insert(key(2, 0), page(3, 5, "w"));
        assert!(c.lookup(&key(2, 0), 4, 5).is_none());
    }

    /// The old single-sequence scheme had a caveat: a page rendered while
    /// a commit was mid-flight could be validated against a sequence that
    /// no longer described the rows ("races only expire early"). With the
    /// pair key there is no such window: the rows come from one view
    /// guard (whose version is captured under that same guard) and one
    /// immutable snapshot, so a page inserted by a racing renderer is
    /// either byte-identical to what the pair describes, or carries a
    /// different pair and can never hit.
    #[test]
    fn racing_renderer_cannot_publish_a_stale_hit() {
        let c = CommandCache::new(8);
        // Renderer A paged the view at version 7 against snapshot 10.
        c.insert(key(1, 0), page(7, 10, "rows as of v7/s10"));
        // A writer commits (snapshot 11) and the view applies the event
        // (version 8) while renderer B is mid-render. Whatever B saw, its
        // insert carries the pair it actually read under its guards:
        c.insert(key(1, 0), page(8, 11, "rows as of v8/s11"));
        // A reader validating at the current pair gets the current bytes;
        // the old pair can no longer hit at all.
        assert_eq!(
            c.lookup(&key(1, 0), 8, 11).unwrap().body,
            "rows as of v8/s11"
        );
        assert!(c.lookup(&key(1, 0), 7, 10).is_none());
    }

    #[test]
    fn access_class_partitions_the_cache() {
        let c = CommandCache::new(8);
        c.insert(key(1, 0xA), page(1, 1, "alice's page"));
        assert!(c.lookup(&key(1, 0xB), 1, 1).is_none());
        assert_eq!(c.lookup(&key(1, 0xA), 1, 1).unwrap().body, "alice's page");
    }

    #[test]
    fn fifo_eviction_and_zero_capacity() {
        let c = CommandCache::new(2);
        c.insert(key(1, 0), page(1, 1, "a"));
        c.insert(key(2, 0), page(1, 1, "b"));
        c.insert(key(3, 0), page(1, 1, "c"));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&key(1, 0), 1, 1).is_none(), "oldest evicted");
        assert!(c.lookup(&key(3, 0), 1, 1).is_some());

        let off = CommandCache::new(0);
        off.insert(key(1, 0), page(1, 1, "a"));
        assert!(off.lookup(&key(1, 0), 1, 1).is_none());
        assert!(off.is_empty());
    }
}
