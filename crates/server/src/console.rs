//! The server console: `show` and `tell` commands over the observability
//! stack.
//!
//! Domino administrators drive the server from a console prompt — `show
//! statistics`, `show tasks`, `tell router quit`. This module is that
//! prompt as a library: [`Console::exec`] takes one command line and
//! returns the text a console would print, wiring the commands onto
//! [`domino_obs`] (statistics, task roster, event tail) and the
//! [`ServerLog`] (rotation).
//!
//! Tasks living in other crates (the HTTP listener in `domino-netio`,
//! say) plug their own `tell <task> …` verbs in through
//! [`Console::register_tell`] — the console owns the grammar, the task
//! owns the behaviour, and no dependency edge points outward from here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use domino_obs as obs;

use crate::logger::ServerLog;

/// A `tell <task> …` handler: receives the words after the task name
/// (already lowercased) and returns the console text.
pub type TellHandler = Box<dyn Fn(&[&str]) -> String + Send + Sync>;

/// A console bound to a server log.
pub struct Console {
    log: Arc<ServerLog>,
    tells: Mutex<HashMap<String, TellHandler>>,
}

impl Console {
    /// A console over `log`.
    pub fn new(log: Arc<ServerLog>) -> Console {
        Console {
            log,
            tells: Mutex::new(HashMap::new()),
        }
    }

    /// Route `tell <task> …` lines to `handler`. Registering a task name
    /// again replaces the previous handler; the built-in `logger` verbs
    /// cannot be shadowed.
    pub fn register_tell(
        &self,
        task: &str,
        handler: impl Fn(&[&str]) -> String + Send + Sync + 'static,
    ) {
        self.tells
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(task.to_lowercase(), Box::new(handler));
    }

    /// Execute one command line and return what the console prints.
    ///
    /// Commands (case-insensitive, Domino spelling):
    ///
    /// * `show statistics` — every registered metric.
    /// * `show tasks` — the background task roster with heartbeats.
    /// * `show events [severity]` — the recent event tail, optionally
    ///   filtered to `severity` or worse (`fatal`, `failure`, `warning`,
    ///   `normal`, `info`).
    /// * `tell logger drain` — file pending bus events now.
    /// * `tell logger rotate` — force a log rotation now.
    /// * `tell <task> …` — any verb registered with
    ///   [`Console::register_tell`] (e.g. `tell http quit` once the
    ///   socket listener is up).
    pub fn exec(&self, line: &str) -> String {
        let words: Vec<String> = line.split_whitespace().map(str::to_lowercase).collect();
        let words: Vec<&str> = words.iter().map(String::as_str).collect();
        match words.as_slice() {
            ["show", "statistics"] | ["show", "stat"] => obs::show_statistics(),
            ["show", "tasks"] => obs::show_tasks(),
            ["show", "events"] => self.log.show_events(None),
            ["show", "events", sev] => match obs::Severity::parse(sev) {
                Some(floor) => self.log.show_events(Some(floor)),
                None => format!(
                    "> show events {sev}\n  unknown severity {sev:?} (try fatal, failure, warning, normal, info)\n"
                ),
            },
            ["tell", "logger", "drain"] => {
                let report = self.log.drain();
                format!(
                    "> tell logger drain\n  drained {} events, wrote {} documents ({} in log)\n",
                    report.drained,
                    report.written,
                    self.log.document_count()
                )
            }
            ["tell", "logger", "rotate"] => {
                let deleted = self.log.rotate();
                format!(
                    "> tell logger rotate\n  deleted {} documents, {} remain\n",
                    deleted,
                    self.log.document_count()
                )
            }
            ["tell", task, rest @ ..] => {
                let tells = self.tells.lock().unwrap_or_else(|p| p.into_inner());
                match tells.get(*task) {
                    Some(handler) => handler(rest),
                    None => format!(
                        "> {line}\n  no task {task:?} is listening (register_tell wires tasks in)\n"
                    ),
                }
            }
            [] => String::from("> \n"),
            _ => format!(
                "> {line}\n  unknown command (try: show statistics | show tasks | show events [severity] | tell logger drain | tell logger rotate | tell <task> ...)\n"
            ),
        }
    }
}
