//! The server console: `show` and `tell` commands over the observability
//! stack.
//!
//! Domino administrators drive the server from a console prompt — `show
//! statistics`, `show tasks`, `tell router quit`. This module is that
//! prompt as a library: [`Console::exec`] takes one command line and
//! returns the text a console would print, wiring the commands onto
//! [`domino_obs`] (statistics, task roster, event tail) and the
//! [`ServerLog`] (rotation).

use std::sync::Arc;

use domino_obs as obs;

use crate::logger::ServerLog;

/// A console bound to a server log.
pub struct Console {
    log: Arc<ServerLog>,
}

impl Console {
    /// A console over `log`.
    pub fn new(log: Arc<ServerLog>) -> Console {
        Console { log }
    }

    /// Execute one command line and return what the console prints.
    ///
    /// Commands (case-insensitive, Domino spelling):
    ///
    /// * `show statistics` — every registered metric.
    /// * `show tasks` — the background task roster with heartbeats.
    /// * `show events [severity]` — the recent event tail, optionally
    ///   filtered to `severity` or worse (`fatal`, `failure`, `warning`,
    ///   `normal`, `info`).
    /// * `tell logger drain` — file pending bus events now.
    /// * `tell logger rotate` — force a log rotation now.
    pub fn exec(&self, line: &str) -> String {
        let words: Vec<String> = line.split_whitespace().map(str::to_lowercase).collect();
        let words: Vec<&str> = words.iter().map(String::as_str).collect();
        match words.as_slice() {
            ["show", "statistics"] | ["show", "stat"] => obs::show_statistics(),
            ["show", "tasks"] => obs::show_tasks(),
            ["show", "events"] => self.log.show_events(None),
            ["show", "events", sev] => match obs::Severity::parse(sev) {
                Some(floor) => self.log.show_events(Some(floor)),
                None => format!(
                    "> show events {sev}\n  unknown severity {sev:?} (try fatal, failure, warning, normal, info)\n"
                ),
            },
            ["tell", "logger", "drain"] => {
                let report = self.log.drain();
                format!(
                    "> tell logger drain\n  drained {} events, wrote {} documents ({} in log)\n",
                    report.drained,
                    report.written,
                    self.log.document_count()
                )
            }
            ["tell", "logger", "rotate"] => {
                let deleted = self.log.rotate();
                format!(
                    "> tell logger rotate\n  deleted {} documents, {} remain\n",
                    deleted,
                    self.log.document_count()
                )
            }
            [] => String::from("> \n"),
            _ => format!(
                "> {line}\n  unknown command (try: show statistics | show tasks | show events [severity] | tell logger drain | tell logger rotate)\n"
            ),
        }
    }
}
