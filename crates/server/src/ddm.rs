//! Domino Domain Monitoring, scaled to one process: health probes over
//! the metric registry.
//!
//! Real Domino's DDM runs probes against server statistics and files the
//! results in `ddm.nsf` with severities that escalate while a condition
//! persists and clear when it stops. This module is that loop: a
//! [`ProbeEngine`] holds declarative [`ProbeRule`]s, and every
//! [`ProbeEngine::tick`] takes a registry [`Snapshot`](obs::Snapshot),
//! diffs it against the previous tick, and evaluates each rule against
//! the *delta* (rates, not lifetime totals) or the absolute state
//! (gauges, hit ratios, quantiles).
//!
//! Outcomes become events on the bus — `Ddm.Probe` while a condition
//! holds (severity escalating one step once it has persisted for
//! [`ProbeRule::escalate_after`] consecutive ticks) and a `Normal`
//! `Ddm.Probe.Cleared` on the tick a previously-firing condition stops —
//! so the logger task files them in `log.nsf` like any other event and
//! `show events` surfaces them on the console.

use std::fmt;

use domino_obs as obs;

/// What a probe checks each tick. Delta conditions look at the change
/// since the previous tick; the others look at the current snapshot.
#[derive(Debug, Clone)]
pub enum ProbeCondition {
    /// Counter grew by at least `threshold` this tick (a rate alarm:
    /// e.g. `Http.Worker.Shed` climbing means the pool is saturated).
    CounterDeltaAtLeast {
        /// Counter name.
        metric: &'static str,
        /// Minimum per-tick growth that fires the probe.
        threshold: u64,
    },
    /// Gauge is below `floor` right now.
    GaugeBelow {
        /// Gauge name.
        metric: &'static str,
        /// Fires when the level is strictly below this.
        floor: i64,
    },
    /// Gauge is above `ceiling` right now.
    GaugeAbove {
        /// Gauge name.
        metric: &'static str,
        /// Fires when the level is strictly above this.
        ceiling: i64,
    },
    /// Cache efficiency floor: `hits / (hits + misses)` over this tick's
    /// delta fell below `floor_percent`. Quiet ticks (fewer lookups than
    /// `min_samples`) never fire — a cold cache is not a sick cache.
    HitRateBelow {
        /// Hit counter name.
        hits: &'static str,
        /// Miss counter name.
        misses: &'static str,
        /// Fires below this percentage (0-100).
        floor_percent: u64,
        /// Minimum lookups this tick for the ratio to mean anything.
        min_samples: u64,
    },
    /// Latency ceiling: the histogram's p99 over this tick's delta
    /// exceeded `threshold` (lock waits, request latency).
    P99Above {
        /// Histogram name.
        metric: &'static str,
        /// Fires when the tick's p99 exceeds this.
        threshold: u64,
        /// Minimum samples this tick for the quantile to mean anything.
        min_samples: u64,
    },
    /// Progress stall: `busy` advanced by at least `min_busy` this tick
    /// while `idle` did not move at all — work is arriving but the
    /// counter that should track it is stuck (e.g. commits without
    /// checkpoints means checkpoint lag is growing).
    StalledWhile {
        /// The counter that should be advancing.
        idle: &'static str,
        /// The counter proving there is work to do.
        busy: &'static str,
        /// How much `busy` must move for the stall to count.
        min_busy: u64,
    },
}

impl ProbeCondition {
    /// Evaluate against this tick's delta and the absolute snapshot.
    /// Returns `Some(measurement)` when firing, `None` when healthy.
    fn evaluate(&self, delta: &obs::Snapshot, now: &obs::Snapshot) -> Option<u64> {
        match self {
            ProbeCondition::CounterDeltaAtLeast { metric, threshold } => {
                let d = delta.counter(metric);
                (d >= *threshold).then_some(d)
            }
            ProbeCondition::GaugeBelow { metric, floor } => {
                let level = now.gauge(metric);
                (level < *floor).then_some(level.max(0) as u64)
            }
            ProbeCondition::GaugeAbove { metric, ceiling } => {
                let level = now.gauge(metric);
                (level > *ceiling).then_some(level.max(0) as u64)
            }
            ProbeCondition::HitRateBelow {
                hits,
                misses,
                floor_percent,
                min_samples,
            } => {
                let h = delta.counter(hits);
                let m = delta.counter(misses);
                let total = h + m;
                if total < *min_samples {
                    return None;
                }
                let rate = h * 100 / total;
                (rate < *floor_percent).then_some(rate)
            }
            ProbeCondition::P99Above {
                metric,
                threshold,
                min_samples,
            } => {
                let h = delta.histogram(metric);
                if h.count < *min_samples {
                    return None;
                }
                let p99 = h.quantile(0.99);
                (p99 > *threshold).then_some(p99)
            }
            ProbeCondition::StalledWhile {
                idle,
                busy,
                min_busy,
            } => {
                let work = delta.counter(busy);
                (work >= *min_busy && delta.counter(idle) == 0).then_some(work)
            }
        }
    }
}

/// One declarative health check.
#[derive(Debug, Clone)]
pub struct ProbeRule {
    /// Probe name, filed as the `probe` field of the `Ddm.Probe` event
    /// (shows up as the Probe item in log.nsf).
    pub name: &'static str,
    /// The condition checked each tick.
    pub condition: ProbeCondition,
    /// Severity of the event while the condition holds.
    pub severity: obs::Severity,
    /// After this many *consecutive* firing ticks the reported severity
    /// escalates one step ([`obs::Severity::escalated`]) — a persistent
    /// condition is worse news than a blip. 0 never escalates.
    pub escalate_after: u32,
}

impl ProbeRule {
    /// A rule at the given severity that never escalates.
    pub fn new(
        name: &'static str,
        condition: ProbeCondition,
        severity: obs::Severity,
    ) -> ProbeRule {
        ProbeRule {
            name,
            condition,
            severity,
            escalate_after: 0,
        }
    }

    /// Escalate the severity one step once the condition has held for
    /// `ticks` consecutive ticks.
    pub fn escalating_after(mut self, ticks: u32) -> ProbeRule {
        self.escalate_after = ticks;
        self
    }
}

/// What one rule concluded on one tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The rule's name.
    pub probe: &'static str,
    /// True while the condition holds.
    pub firing: bool,
    /// Consecutive firing ticks including this one (0 when healthy).
    pub streak: u32,
    /// Severity reported this tick (escalated if the streak is long
    /// enough); `None` when healthy and nothing was emitted.
    pub severity: Option<obs::Severity>,
    /// The measured value that fired the probe (delta, level, rate, or
    /// p99 depending on the condition).
    pub measured: u64,
}

impl fmt::Display for ProbeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.firing {
            write!(
                f,
                "{} FIRING ({}, streak {}, measured {})",
                self.probe,
                self.severity.map(|s| s.as_str()).unwrap_or("?"),
                self.streak,
                self.measured
            )
        } else {
            write!(f, "{} ok", self.probe)
        }
    }
}

/// The probe engine: rules plus the previous tick's snapshot and each
/// rule's consecutive-firing streak.
pub struct ProbeEngine {
    rules: Vec<ProbeRule>,
    last: obs::Snapshot,
    streaks: Vec<u32>,
}

impl ProbeEngine {
    /// An engine over the given rules. The first [`tick`](Self::tick)
    /// diffs against the registry as it is *now*, so pre-existing totals
    /// never fire delta probes.
    pub fn new(rules: Vec<ProbeRule>) -> ProbeEngine {
        let streaks = vec![0; rules.len()];
        ProbeEngine {
            rules,
            last: obs::snapshot(),
            streaks,
        }
    }

    /// The default probe set, wired to the metrics the subsystems
    /// actually publish (see DESIGN.md for the name registry).
    pub fn with_default_rules() -> ProbeEngine {
        ProbeEngine::new(default_rules())
    }

    /// The rules under watch.
    pub fn rules(&self) -> &[ProbeRule] {
        &self.rules
    }

    /// Evaluate every rule against the registry delta since the last
    /// tick, emitting `Ddm.Probe` / `Ddm.Probe.Cleared` events for
    /// transitions and ongoing conditions. Call *outside* any
    /// [`obs::suppress`] guard or the verdict events are discarded.
    pub fn tick(&mut self) -> Vec<ProbeOutcome> {
        let now = obs::snapshot();
        let delta = now.diff(&self.last);
        let mut out = Vec::with_capacity(self.rules.len());
        for (rule, streak) in self.rules.iter().zip(self.streaks.iter_mut()) {
            match rule.condition.evaluate(&delta, &now) {
                Some(measured) => {
                    *streak += 1;
                    let escalate = rule.escalate_after > 0 && *streak > rule.escalate_after;
                    let severity = if escalate {
                        rule.severity.escalated()
                    } else {
                        rule.severity
                    };
                    obs::emit(
                        obs::Event::new(obs::EventKind::Server, severity, "Ddm.Probe")
                            .with("probe", rule.name)
                            .with("measured", measured)
                            .with("streak", u64::from(*streak))
                            .with("escalated", u64::from(escalate)),
                    );
                    out.push(ProbeOutcome {
                        probe: rule.name,
                        firing: true,
                        streak: *streak,
                        severity: Some(severity),
                        measured,
                    });
                }
                None => {
                    if *streak > 0 {
                        // Transition to healthy: file the all-clear once.
                        obs::emit(
                            obs::Event::new(
                                obs::EventKind::Server,
                                obs::Severity::Normal,
                                "Ddm.Probe.Cleared",
                            )
                            .with("probe", rule.name)
                            .with("after_ticks", u64::from(*streak)),
                        );
                    }
                    *streak = 0;
                    out.push(ProbeOutcome {
                        probe: rule.name,
                        firing: false,
                        streak: 0,
                        severity: None,
                        measured: 0,
                    });
                }
            }
        }
        self.last = now;
        out
    }
}

/// The stock probe set: worker shedding, replication retry exhaustion,
/// checkpoint lag, buffer-pool efficiency, and lock-wait latency.
pub fn default_rules() -> Vec<ProbeRule> {
    vec![
        ProbeRule::new(
            "http.workers.shedding",
            ProbeCondition::CounterDeltaAtLeast {
                metric: "Http.Worker.Shed",
                threshold: 1,
            },
            obs::Severity::Warning,
        )
        .escalating_after(1),
        ProbeRule::new(
            "replica.retry.exhausted",
            ProbeCondition::CounterDeltaAtLeast {
                metric: "Replica.Retry.Exhausted",
                threshold: 1,
            },
            obs::Severity::Failure,
        ),
        ProbeRule::new(
            "checkpoint.lagging",
            ProbeCondition::StalledWhile {
                idle: "Database.Checkpoint.Completed",
                busy: "Database.Txn.Commits",
                min_busy: 512,
            },
            obs::Severity::Warning,
        )
        .escalating_after(2),
        ProbeRule::new(
            "pool.hit-rate.low",
            ProbeCondition::HitRateBelow {
                hits: "Database.Pool.Hits",
                misses: "Database.Pool.Misses",
                floor_percent: 50,
                min_samples: 256,
            },
            obs::Severity::Warning,
        ),
        ProbeRule::new(
            "lock.waits.slow",
            ProbeCondition::P99Above {
                metric: "Db.Lock.Wait.Micros",
                threshold: 100_000,
                min_samples: 16,
            },
            obs::Severity::Warning,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Probe tests share the global registry with every other test in the
    // binary, so each uses its own uniquely named metrics.

    #[test]
    fn delta_probe_fires_escalates_and_clears() {
        let c = obs::counter("Http.Test.DdmShed");
        let mut engine = ProbeEngine::new(vec![ProbeRule::new(
            "test.shed",
            ProbeCondition::CounterDeltaAtLeast {
                metric: "Http.Test.DdmShed",
                threshold: 5,
            },
            obs::Severity::Warning,
        )
        .escalating_after(1)]);

        // Quiet tick: nothing fires.
        let out = engine.tick();
        assert!(!out[0].firing);

        // Burst: fires at the base severity.
        c.add(10);
        let out = engine.tick();
        assert!(out[0].firing);
        assert_eq!(out[0].severity, Some(obs::Severity::Warning));
        assert_eq!(out[0].streak, 1);

        // Still bursting: the streak passes escalate_after, one step up.
        c.add(10);
        let out = engine.tick();
        assert_eq!(out[0].severity, Some(obs::Severity::Failure));
        assert_eq!(out[0].streak, 2);

        // Quiet again: clears, streak resets.
        let out = engine.tick();
        assert!(!out[0].firing);
        assert_eq!(out[0].streak, 0);
    }

    #[test]
    fn lifetime_totals_do_not_fire_delta_probes() {
        let c = obs::counter("Http.Test.DdmOldTotal");
        c.add(1_000_000); // history from "before monitoring started"
        let mut engine = ProbeEngine::new(vec![ProbeRule::new(
            "test.old-total",
            ProbeCondition::CounterDeltaAtLeast {
                metric: "Http.Test.DdmOldTotal",
                threshold: 1,
            },
            obs::Severity::Warning,
        )]);
        // The engine baselined at construction, so the old million is
        // invisible; only post-construction growth counts.
        assert!(!engine.tick()[0].firing);
        c.add(1);
        assert!(engine.tick()[0].firing);
    }

    #[test]
    fn hit_rate_probe_ignores_quiet_ticks() {
        let hits = obs::counter("Http.Test.DdmHits");
        let misses = obs::counter("Http.Test.DdmMisses");
        let mut engine = ProbeEngine::new(vec![ProbeRule::new(
            "test.hit-rate",
            ProbeCondition::HitRateBelow {
                hits: "Http.Test.DdmHits",
                misses: "Http.Test.DdmMisses",
                floor_percent: 90,
                min_samples: 100,
            },
            obs::Severity::Warning,
        )]);
        engine.tick();

        // 10 lookups at 0% — too few to judge.
        misses.add(10);
        assert!(!engine.tick()[0].firing);

        // 200 lookups at 50% — fires with the measured rate.
        hits.add(100);
        misses.add(100);
        let out = engine.tick();
        assert!(out[0].firing);
        assert_eq!(out[0].measured, 50);
    }

    #[test]
    fn stall_probe_needs_work_to_call_it_a_stall() {
        let idle = obs::counter("Http.Test.DdmCkpt");
        let busy = obs::counter("Http.Test.DdmCommits");
        let mut engine = ProbeEngine::new(vec![ProbeRule::new(
            "test.stall",
            ProbeCondition::StalledWhile {
                idle: "Http.Test.DdmCkpt",
                busy: "Http.Test.DdmCommits",
                min_busy: 100,
            },
            obs::Severity::Warning,
        )]);
        engine.tick();

        // Nothing happening at all: healthy.
        assert!(!engine.tick()[0].firing);

        // Commits without checkpoints: stalled.
        busy.add(500);
        assert!(engine.tick()[0].firing);

        // Commits *with* a checkpoint: healthy again (and the clear is
        // emitted for the logger to file).
        busy.add(500);
        idle.inc();
        assert!(!engine.tick()[0].firing);
    }
}
