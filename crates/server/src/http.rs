//! Typed requests and responses.
//!
//! There is no socket here (the repo is transport-free by design — see
//! DESIGN.md): a [`Request`] is what a front door would produce after
//! reading the request line, `Authorization` header, and body, and a
//! [`Response`] is what it would serialize back. Keeping the types pure
//! makes the whole task deterministic and testable in-process.

/// The HTTP methods the Domino task answers. Like Domino, commands are
/// not method-strict: a `?SaveDocument` works as GET-with-body too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a page.
    Get,
    /// Submit a form body.
    Post,
}

impl Method {
    /// The request-line verb, as a front door would have read it.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// Who the request claims to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Credentials {
    /// No `Authorization` header: the Notes "Anonymous" identity.
    Anonymous,
    /// HTTP basic authentication.
    Basic {
        /// User name as registered with the server.
        user: String,
        /// Password checked against the server's user registry.
        password: String,
    },
}

/// One parsed HTTP request aimed at the Domino task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// GET or POST.
    pub method: Method,
    /// Request target, e.g. `/disc.nsf/topics?OpenView&Count=10`.
    pub target: String,
    /// Claimed identity (verified by the executor).
    pub credentials: Credentials,
    /// Form body (`key=value&...`) for save/create commands.
    pub body: String,
}

impl Request {
    /// An anonymous GET.
    pub fn get(target: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.to_string(),
            credentials: Credentials::Anonymous,
            body: String::new(),
        }
    }

    /// An anonymous POST with a form body.
    pub fn post(target: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            target: target.to_string(),
            credentials: Credentials::Basic {
                user: String::new(),
                password: String::new(),
            },
            body: body.to_string(),
        }
        .anonymous()
    }

    /// Attach basic-auth credentials.
    pub fn as_user(mut self, user: &str, password: &str) -> Request {
        self.credentials = Credentials::Basic {
            user: user.to_string(),
            password: password.to_string(),
        };
        self
    }

    /// Strip credentials (back to the Anonymous identity).
    pub fn anonymous(mut self) -> Request {
        self.credentials = Credentials::Anonymous;
        self
    }
}

/// The status codes the task emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200 — page rendered.
    Ok,
    /// 400 — malformed URL command or body.
    BadRequest,
    /// 401 — anonymous (or wrongly-authenticated) access to something
    /// that needs an identity: the browser should ask for credentials.
    Unauthorized,
    /// 403 — an authenticated identity the ACL or `$Readers` rejects.
    Forbidden,
    /// 404 — no such database, view, or document.
    NotFound,
    /// 409 — the save raced another update.
    Conflict,
    /// 500 — internal failure.
    ServerError,
    /// 503 — request queue full (load shed) or backend unavailable.
    Unavailable,
}

impl Status {
    /// Numeric status code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::Conflict => 409,
            Status::ServerError => 500,
            Status::Unavailable => 503,
        }
    }

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::BadRequest => "Bad Request",
            Status::Unauthorized => "Unauthorized",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::Conflict => "Conflict",
            Status::ServerError => "Internal Server Error",
            Status::Unavailable => "Service Unavailable",
        }
    }
}

/// What the task sends back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Response status.
    pub status: Status,
    /// MIME type of `body`.
    pub content_type: &'static str,
    /// Rendered page.
    pub body: String,
    /// Whether the body came out of the command cache (diagnostic; a
    /// real front door would not serialize this).
    pub from_cache: bool,
}

impl Response {
    /// A 200 HTML page.
    pub fn html(body: String) -> Response {
        Response {
            status: Status::Ok,
            content_type: "text/html",
            body,
            from_cache: false,
        }
    }

    /// A 200 JSON payload.
    pub fn json(body: String) -> Response {
        Response {
            status: Status::Ok,
            content_type: "application/json",
            body,
            from_cache: false,
        }
    }

    /// An error page (any non-200 status) with a small HTML body.
    pub fn error(status: Status, detail: &str) -> Response {
        Response {
            status,
            content_type: "text/html",
            body: crate::render::message_page(
                &format!("{} {}", status.code(), status.reason()),
                detail,
            ),
            from_cache: false,
        }
    }

    /// Did the request succeed?
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_and_reasons() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Unauthorized.code(), 401);
        assert_eq!(Status::Forbidden.code(), 403);
        assert_eq!(Status::Unavailable.code(), 503);
        assert_eq!(Status::Unavailable.reason(), "Service Unavailable");
    }

    #[test]
    fn request_builders() {
        let r = Request::get("/d.nsf/v?OpenView").as_user("alice", "pw");
        assert_eq!(r.method, Method::Get);
        assert_eq!(
            r.credentials,
            Credentials::Basic {
                user: "alice".into(),
                password: "pw".into()
            }
        );
        let p = Request::post("/d.nsf/Topic?CreateDocument", "Subject=hi");
        assert_eq!(p.method, Method::Post);
        assert_eq!(p.credentials, Credentials::Anonymous);
    }
}
