//! `domino-server`: the Domino HTTP task — a concurrent web front-end
//! over the note store.
//!
//! The day Lotus Notes grew a web server it was renamed Domino: the HTTP
//! task turns every database into a live web application by mapping *URL
//! commands* straight onto the note store — `?OpenView` renders a view
//! page, `?OpenDocument` a document, `?ReadViewEntries` the same view
//! window as JSON (see [`url`] for the grammar). This crate reproduces
//! that task, dependency-free and transport-free: typed
//! [`Request`]/[`Response`] values stand in for the socket.
//!
//! The moving parts:
//!
//! * [`url`] — the URL-command parser.
//! * [`DominoServer`] — the executor: per-request authentication, then a
//!   `domino-core` [`Session`](domino_core::Session) so ACL levels,
//!   `$Readers` fields, and protected items are enforced exactly as for
//!   native clients; denials become `401`/`403`.
//! * [`WorkerPool`] — a fixed set of worker threads behind a bounded
//!   queue; overload answers `503` instead of queueing unboundedly.
//! * [`CommandCache`] — rendered view pages keyed by
//!   `(db, view, window, access class)` and expired by the database
//!   [change sequence](domino_core::Database::change_seq), so hot pages
//!   are served without touching the view index.
//! * An "amgr" driver ([`DominoServer::amgr_tick`] /
//!   [`DominoServer::start_amgr`]) running stored agents on schedule and
//!   on database change.
//! * [`ServerLog`] (the `logger` module) — the Domino logger task: a
//!   background drainer filing every structured event from the
//!   `domino-obs` bus as a document in a real `log.nsf` database, with
//!   domlog-style `HttpRequest` documents, stock views, size-bounded
//!   rotation, and its own ACL — browsable through this very server.
//! * [`ProbeEngine`] (the `ddm` module) — DDM-style health probes over
//!   registry snapshot deltas, escalating and clearing as verdict
//!   events.
//! * [`Console`] — the admin surface: `show statistics`, `show tasks`,
//!   `show events [severity]`, `tell logger drain|rotate`.
//!
//! Everything reports under `Http.*` in `domino-obs` (`show statistics`),
//! and every request lands on the event bus as an `Http.Request` event
//! (denials additionally as `Security`-kind `Http.Denied`).
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note};
//! use domino_server::{DominoServer, Request, ServerConfig};
//! use domino_types::{LogicalClock, ReplicaId, Value};
//! use domino_views::{ColumnSpec, ViewDesign};
//!
//! let db = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Discussion", ReplicaId(1), ReplicaId(2)),
//!     LogicalClock::new()).unwrap());
//! let mut topic = Note::document("Topic");
//! topic.set("Subject", Value::text("welcome"));
//! db.save(&mut topic).unwrap();
//!
//! let server = DominoServer::new(ServerConfig::default());
//! server.register_database("disc", &db).unwrap();
//! let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#).unwrap();
//! design.columns = vec![ColumnSpec::new("Subject", "Subject").unwrap()];
//! server.add_view("disc", design).unwrap();
//!
//! let page = server.serve(Request::get("/disc.nsf/topics?OpenView"));
//! assert_eq!(page.status.code(), 200);
//! assert!(page.body.contains("welcome"));
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod console;
pub mod ddm;
pub mod http;
pub mod logger;
pub mod pool;
pub mod render;
mod server;
pub mod url;

pub use cache::{CacheKey, CachedPage, CommandCache, PageKind};
pub use console::{Console, TellHandler};
pub use ddm::{default_rules, ProbeCondition, ProbeEngine, ProbeOutcome, ProbeRule};
pub use http::{Credentials, Method, Request, Response, Status};
pub use logger::{DrainReport, LoggerConfig, LoggerHandle, ServerLog};
pub use pool::WorkerPool;
pub use server::{AmgrHandle, DominoServer, ServerConfig, ANONYMOUS};
pub use url::{parse, UrlCommand, DEFAULT_COUNT};
