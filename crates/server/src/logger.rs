//! `log.nsf`: the server logs itself.
//!
//! Domino's log *is a Notes database* — the logger task files console
//! output, per-request domlog records, and statistic snapshots as
//! documents in `log.nsf`, where they are read through the same views,
//! ACL, and replication machinery as any application data. This module
//! reproduces that loop: a [`ServerLog`] owns a real
//! [`Database`] titled `log`, and each
//! [`drain`](ServerLog::drain) empties the process-wide event bus
//! ([`domino_obs::drain`]) into Form-typed documents:
//!
//! | Form          | Source events                                  |
//! |---------------|------------------------------------------------|
//! | `HttpRequest` | `Http.Request` (method/command/status/duration/user — domlog.nsf) |
//! | `Replication` | every [`EventKind::Replica`](domino_obs::EventKind::Replica) event |
//! | `Probe`       | `Ddm.Probe*` verdicts from the [`ProbeEngine`] |
//! | `Statistics`  | periodic registry snapshot deltas              |
//! | `Event`       | everything else                                |
//!
//! Built-in views (`events`, `byseverity`, `requests`, `replication`,
//! `statistics`, `probes`) are saved as design notes, so registering the
//! database with a [`DominoServer`](crate::DominoServer) makes the log
//! browsable over HTTP — subject to its ACL, which defaults to
//! NoAccess (grant admins explicitly with [`ServerLog::grant`]).
//!
//! Two rules keep the loop sound:
//!
//! * **No recursion.** All log writes happen under [`domino_obs::suppress`],
//!   so anything the write path itself emits is counted in
//!   `Obs.Event.Suppressed` and discarded instead of being filed again
//!   (the server must not log its logging, or one event becomes an
//!   avalanche). Pinned by a test that emits from inside a change
//!   observer on `log.nsf`.
//! * **Bounded size.** When the document count passes
//!   [`LoggerConfig::max_documents`], the oldest documents (by file
//!   order) are deleted down to [`LoggerConfig::rotate_to`] and the
//!   deletion stubs purged — the same machinery application databases
//!   use, because the log is one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use domino_core::{Database, DbConfig, Note};
use domino_obs as obs;
use domino_security::{AccessLevel, Acl, AclEntry};
use domino_types::{Clock, LogicalClock, NoteClass, NoteId, ReplicaId, Result, Value};
use domino_views::{ColumnSpec, SortDir, ViewDesign};
use parking_lot::Mutex;

use crate::ddm::ProbeEngine;

/// Tuning for the logger task.
#[derive(Debug, Clone)]
pub struct LoggerConfig {
    /// Document-count ceiling; crossing it triggers rotation.
    pub max_documents: usize,
    /// Rotation deletes oldest documents down to this count.
    pub rotate_to: usize,
    /// File a `Statistics` snapshot document every this many drains
    /// (0 = never).
    pub stats_every: u64,
    /// Run the probe engine every this many drains (0 = never).
    pub probe_every: u64,
    /// In-memory tail of recent events kept for `show events`.
    pub tail: usize,
    /// Purge interval (ticks) for the log database's deletion stubs —
    /// short, because nobody replicates deletions out of a log.
    pub purge_ticks: u64,
}

impl Default for LoggerConfig {
    fn default() -> LoggerConfig {
        LoggerConfig {
            max_documents: 5000,
            rotate_to: 3750,
            stats_every: 10,
            probe_every: 1,
            tail: 256,
            purge_ticks: 16,
        }
    }
}

/// What one [`ServerLog::drain`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Events taken off the bus.
    pub drained: usize,
    /// Documents written to `log.nsf` (events + any statistics doc).
    pub written: usize,
    /// Emits attempted *by the write path itself* and discarded by the
    /// re-entrancy guard (must stay 0 unless something on the write path
    /// has grown an emit — the pinned recursion test forces it nonzero).
    pub suppressed: u64,
    /// Documents deleted by rotation this drain.
    pub rotated: usize,
}

/// Registry handles for the logger's own health (it reports like any
/// other task — but through metrics, never through events it would then
/// have to file about itself).
struct Metrics {
    drains: &'static obs::Counter,
    filed: &'static obs::Counter,
    rotations: &'static obs::Counter,
    deleted: &'static obs::Counter,
    write_errors: &'static obs::Counter,
    backlog: &'static obs::Gauge,
}

fn m() -> &'static Metrics {
    static M: std::sync::OnceLock<Metrics> = std::sync::OnceLock::new();
    M.get_or_init(|| Metrics {
        drains: obs::counter("Logger.Drains"),
        filed: obs::counter("Logger.Documents.Filed"),
        rotations: obs::counter("Logger.Rotations"),
        deleted: obs::counter("Logger.Documents.Deleted"),
        write_errors: obs::counter("Logger.Write.Errors"),
        backlog: obs::gauge("Logger.Backlog"),
    })
}

/// The logger task: a `log.nsf` database plus the machinery that fills
/// it from the event bus. Cheap to share (`Arc`); the background thread
/// holds only a weak reference.
pub struct ServerLog {
    db: Arc<Database>,
    cfg: LoggerConfig,
    log_seq: AtomicU64,
    drains: AtomicU64,
    recursion: AtomicU64,
    tail: Mutex<VecDeque<obs::Event>>,
    last_stats: Mutex<obs::Snapshot>,
    probes: Mutex<Option<ProbeEngine>>,
}

impl ServerLog {
    /// Open a fresh `log.nsf` with default tuning and the stock DDM
    /// probe rules.
    pub fn open() -> Result<Arc<ServerLog>> {
        ServerLog::with_config(LoggerConfig::default())
    }

    /// Open with explicit tuning.
    pub fn with_config(cfg: LoggerConfig) -> Result<Arc<ServerLog>> {
        let db = Arc::new(Database::open_in_memory(
            DbConfig::new("log", ReplicaId(0x0C10), ReplicaId(0x0C11))
                .with_purge_interval(cfg.purge_ticks),
            LogicalClock::new(),
        )?);
        // The log is born locked: nobody reads it over HTTP until an
        // admin is granted in. (The logger itself writes through the raw
        // Database handle — ACLs bind sessions, not the server's pen.)
        db.set_acl(&Acl::new(AccessLevel::NoAccess))?;
        for design in builtin_views()? {
            let mut note = design.to_note();
            db.save(&mut note)?;
        }
        let log = ServerLog {
            db,
            cfg,
            log_seq: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            recursion: AtomicU64::new(0),
            tail: Mutex::new(VecDeque::new()),
            last_stats: Mutex::new(obs::snapshot()),
            probes: Mutex::new(Some(ProbeEngine::with_default_rules())),
        };
        Ok(Arc::new(log))
    }

    /// The underlying database — register it with a
    /// [`DominoServer`](crate::DominoServer) as `log` to serve it at
    /// `/log.nsf/...`.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Grant `user` access to read (or manage) the log over HTTP.
    pub fn grant(&self, user: &str, level: AccessLevel) -> Result<()> {
        let mut acl = self.db.acl()?;
        acl.set(user, AclEntry::new(level));
        self.db.set_acl(&acl)
    }

    /// Replace the probe rule set (`None` disables probing).
    pub fn set_probes(&self, engine: Option<ProbeEngine>) {
        *self.probes.lock() = engine;
    }

    /// Total events the write path itself tried to emit (and the guard
    /// discarded) across all drains. Zero unless the pinned recursion
    /// test — or a bug — put an emit on the write path.
    pub fn recursion_events(&self) -> u64 {
        self.recursion.load(Ordering::Relaxed)
    }

    /// Empty the event bus into `log.nsf`: run due probes, file every
    /// pending event as a document, file a periodic statistics snapshot,
    /// and rotate if the log has outgrown its ceiling.
    pub fn drain(&self) -> DrainReport {
        let drains = self.drains.fetch_add(1, Ordering::Relaxed) + 1;
        m().drains.inc();
        // Probes run *before* the suppression guard goes up: their
        // verdict events must reach the bus to be filed in this drain.
        if self.cfg.probe_every > 0 && drains.is_multiple_of(self.cfg.probe_every) {
            if let Some(engine) = self.probes.lock().as_mut() {
                engine.tick();
            }
        }
        let events = obs::drain(usize::MAX);
        m().backlog.set(obs::pending() as i64);
        let mut report = DrainReport {
            drained: events.len(),
            ..DrainReport::default()
        };
        let suppressed_before = obs::counter("Obs.Event.Suppressed").get();
        {
            // Re-entrancy guard: anything the writes below emit is
            // counted and discarded, never filed. All writes happen on
            // this thread, so the thread-local guard covers them all.
            let _guard = obs::suppress();
            {
                let _batch = self.db.begin_batch();
                for event in &events {
                    match self.file(event) {
                        Ok(()) => report.written += 1,
                        Err(_) => m().write_errors.inc(),
                    }
                }
            }
            if self.cfg.stats_every > 0 && drains.is_multiple_of(self.cfg.stats_every) {
                match self.file_statistics() {
                    Ok(()) => report.written += 1,
                    Err(_) => m().write_errors.inc(),
                }
            }
            report.rotated = self.rotate_if_over(self.cfg.max_documents);
        }
        let suppressed = obs::counter("Obs.Event.Suppressed").get() - suppressed_before;
        report.suppressed = suppressed;
        self.recursion.fetch_add(suppressed, Ordering::Relaxed);
        m().filed.add(report.written as u64);
        let mut tail = self.tail.lock();
        for event in events {
            if tail.len() >= self.cfg.tail {
                tail.pop_front();
            }
            tail.push_back(event);
        }
        report
    }

    /// File one event as a Form-typed document.
    fn file(&self, event: &obs::Event) -> Result<()> {
        let mut doc = Note::document(form_of(event));
        doc.set("Kind", Value::text(event.kind.as_str()));
        doc.set("Severity", Value::text(event.severity.as_str()));
        doc.set("SevRank", Value::Number(event.severity as u64 as f64));
        doc.set("Code", Value::text(event.code));
        doc.set("Time", Value::Number(event.stamp as f64));
        doc.set("Seq", Value::Number(event.seq as f64));
        doc.set(
            "LogSeq",
            Value::Number(self.log_seq.fetch_add(1, Ordering::Relaxed) as f64),
        );
        doc.set("Subject", Value::text(event.to_string()));
        for (key, value) in &event.fields {
            doc.set(&item_name(event, key), field_to_value(value));
        }
        self.db.save(&mut doc)?;
        Ok(())
    }

    /// File a `Statistics` document: the registry delta since the last
    /// snapshot (so each document reads as "what happened this window",
    /// the way Domino's statistic reports do).
    fn file_statistics(&self) -> Result<()> {
        let now = obs::snapshot();
        let delta = {
            let mut last = self.last_stats.lock();
            let d = now.diff(&last);
            *last = now;
            d
        };
        let mut doc = Note::document("Statistics");
        doc.set("Kind", Value::text(obs::EventKind::Server.as_str()));
        doc.set("Severity", Value::text(obs::Severity::Info.as_str()));
        doc.set("SevRank", Value::Number(obs::Severity::Info as u64 as f64));
        doc.set("Code", Value::text("Statistics.Snapshot"));
        doc.set("Time", Value::Number(self.db.clock().peek().0 as f64));
        doc.set(
            "LogSeq",
            Value::Number(self.log_seq.fetch_add(1, Ordering::Relaxed) as f64),
        );
        doc.set(
            "Subject",
            Value::text(format!("statistics snapshot ({} metrics)", delta.len())),
        );
        doc.set("Json", Value::text(delta.to_json()));
        self.db.save(&mut doc)?;
        Ok(())
    }

    /// Delete oldest documents (by `LogSeq`) until at most `ceiling`
    /// remain... if we are over it at all. Returns how many went.
    fn rotate_if_over(&self, ceiling: usize) -> usize {
        let Ok(ids) = self.db.note_ids(Some(NoteClass::Document)) else {
            return 0;
        };
        if ids.len() <= ceiling {
            return 0;
        }
        let mut entries: Vec<(u64, NoteId)> = Vec::with_capacity(ids.len());
        for id in ids {
            let Ok(doc) = self.db.open_summary(id) else {
                continue;
            };
            let seq = doc
                .get("LogSeq")
                .and_then(|v| v.as_number().ok())
                .unwrap_or(0.0) as u64;
            entries.push((seq, id));
        }
        entries.sort_unstable();
        let excess = entries
            .len()
            .saturating_sub(self.cfg.rotate_to.min(ceiling));
        let mut deleted = 0;
        for (_, id) in entries.into_iter().take(excess) {
            if self.db.delete(id).is_ok() {
                deleted += 1;
            }
        }
        if deleted > 0 {
            m().rotations.inc();
            m().deleted.add(deleted as u64);
            // The stubs would otherwise linger for the purge interval;
            // the log recycles them immediately (nothing replicates a
            // log's deletions).
            self.db.clock().advance(self.cfg.purge_ticks + 1);
            let _ = self.db.purge_stubs();
        }
        deleted
    }

    /// Force a rotation down to [`LoggerConfig::rotate_to`] regardless
    /// of the ceiling (the `tell logger rotate` console command).
    pub fn rotate(&self) -> usize {
        let _guard = obs::suppress();
        self.rotate_if_over(self.cfg.rotate_to)
    }

    /// Live documents currently in `log.nsf`.
    pub fn document_count(&self) -> usize {
        self.db.document_count().unwrap_or(0)
    }

    /// Render the in-memory tail of recent events at or above `floor`
    /// (newest last), console style.
    pub fn show_events(&self, floor: Option<obs::Severity>) -> String {
        let floor = floor.unwrap_or(obs::Severity::Info);
        let mut out = format!("> show events {}\n", floor.as_str().to_lowercase());
        let tail = self.tail.lock();
        let mut shown = 0;
        for event in tail.iter() {
            if event.severity.at_least(floor) {
                out.push_str(&format!("  {event}\n"));
                shown += 1;
            }
        }
        if shown == 0 {
            out.push_str("  (no matching events in the tail)\n");
        }
        out
    }

    /// Drive [`drain`](ServerLog::drain) from a background thread every
    /// `every` (the logger task proper). The thread registers on the
    /// task roster (`show tasks`) and holds only a weak reference: drop
    /// the last [`ServerLog`] and it exits on its own. Stopping the
    /// handle performs a final drain so shutdown never strands events.
    pub fn start(self: &Arc<ServerLog>, every: Duration) -> LoggerHandle {
        let weak = Arc::downgrade(self);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let join = std::thread::Builder::new()
            .name("logger".into())
            .spawn(move || {
                let task = obs::register_task("logger", "Event log writer");
                let slice = Duration::from_millis(5)
                    .min(every)
                    .max(Duration::from_millis(1));
                let mut elapsed = Duration::ZERO;
                let mut filed: u64 = 0;
                loop {
                    if flag.load(Ordering::Relaxed) {
                        // Final drain: whatever is on the bus gets filed
                        // before the task exits.
                        if let Some(log) = weak.upgrade() {
                            log.drain();
                        }
                        return;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed < every {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    let Some(log) = weak.upgrade() else { return };
                    let report = log.drain();
                    filed += report.written as u64;
                    task.beat();
                    task.set_status(&format!(
                        "{} docs filed, {} in log",
                        filed,
                        log.document_count()
                    ));
                }
            })
            .expect("spawn logger");
        LoggerHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle on the background logger thread; stops (with a final drain)
/// when dropped.
pub struct LoggerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl LoggerHandle {
    /// Stop the logger thread, flush the bus one last time, and wait.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for LoggerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Which form files this event.
fn form_of(event: &obs::Event) -> &'static str {
    if event.code == "Http.Request" {
        "HttpRequest"
    } else if event.code.starts_with("Ddm.Probe") {
        "Probe"
    } else if event.kind == obs::EventKind::Replica {
        "Replication"
    } else {
        "Event"
    }
}

/// Item name for an event field. `HttpRequest` documents use the classic
/// domlog.nsf item names; everything else capitalizes the field key.
fn item_name(event: &obs::Event, key: &str) -> String {
    if form_of(event) == "HttpRequest" {
        match key {
            "method" => return "Method".to_string(),
            "command" => return "Command".to_string(),
            "status" => return "Status".to_string(),
            "micros" => return "DurationMicros".to_string(),
            "user" => return "User".to_string(),
            _ => {}
        }
    }
    let mut chars = key.chars();
    match chars.next() {
        Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

fn field_to_value(value: &obs::FieldValue) -> Value {
    match value {
        obs::FieldValue::U64(v) => Value::Number(*v as f64),
        obs::FieldValue::I64(v) => Value::Number(*v as f64),
        obs::FieldValue::F64(v) => Value::Number(*v),
        obs::FieldValue::Str(s) => Value::text(*s),
        obs::FieldValue::Text(s) => Value::text(s.clone()),
    }
}

/// The stock view designs saved into every fresh `log.nsf`.
fn builtin_views() -> Result<Vec<ViewDesign>> {
    Ok(vec![
        ViewDesign::new("events", "SELECT @All")?
            .column(ColumnSpec::new("Time", "Time")?.sorted(SortDir::Ascending))
            .column(ColumnSpec::new("Severity", "Severity")?)
            .column(ColumnSpec::new("Code", "Code")?)
            .column(ColumnSpec::new("Subject", "Subject")?),
        ViewDesign::new("byseverity", "SELECT @All")?
            .column(ColumnSpec::new("SevRank", "SevRank")?.sorted(SortDir::Ascending))
            .column(ColumnSpec::new("Severity", "Severity")?)
            .column(ColumnSpec::new("Code", "Code")?)
            .column(ColumnSpec::new("Subject", "Subject")?),
        ViewDesign::new("requests", r#"SELECT Form = "HttpRequest""#)?
            .column(ColumnSpec::new("Time", "Time")?.sorted(SortDir::Ascending))
            .column(ColumnSpec::new("Method", "Method")?)
            .column(ColumnSpec::new("Command", "Command")?)
            .column(ColumnSpec::new("Status", "Status")?)
            .column(ColumnSpec::new("DurationMicros", "DurationMicros")?)
            .column(ColumnSpec::new("User", "User")?),
        ViewDesign::new("replication", r#"SELECT Form = "Replication""#)?
            .column(ColumnSpec::new("Time", "Time")?.sorted(SortDir::Ascending))
            .column(ColumnSpec::new("Code", "Code")?)
            .column(ColumnSpec::new("Subject", "Subject")?),
        ViewDesign::new("statistics", r#"SELECT Form = "Statistics""#)?
            .column(ColumnSpec::new("Time", "Time")?.sorted(SortDir::Ascending))
            .column(ColumnSpec::new("Subject", "Subject")?),
        ViewDesign::new("probes", r#"SELECT Form = "Probe""#)?
            .column(ColumnSpec::new("Time", "Time")?.sorted(SortDir::Ascending))
            .column(ColumnSpec::new("Severity", "Severity")?)
            .column(ColumnSpec::new("Probe", "Probe")?)
            .column(ColumnSpec::new("Measured", "Measured")?)
            .column(ColumnSpec::new("Subject", "Subject")?),
    ])
}
