//! The fixed worker pool behind the HTTP task.
//!
//! Domino runs a configurable number of HTTP worker threads pulling from
//! a bounded request queue; when the queue is full the server sheds load
//! with `503 Service Unavailable` rather than queueing unboundedly. The
//! pool here reproduces that: [`WorkerPool::try_execute`] either enqueues
//! a job or hands it back immediately, and `Http.Worker.*` gauges expose
//! queue depth and busy workers for the operator.
//!
//! (Uses `std::sync::Condvar` — the vendored `parking_lot` shim has no
//! condition variables.)

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use domino_obs as obs;

struct Metrics {
    executed: &'static obs::Counter,
    shed: &'static obs::Counter,
    queue_depth: &'static obs::Gauge,
    busy: &'static obs::Gauge,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        executed: obs::counter("Http.Worker.Executed"),
        shed: obs::counter("Http.Worker.Shed"),
        queue_depth: obs::gauge("Http.Worker.QueueDepth"),
        busy: obs::gauge("Http.Worker.Busy"),
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
    /// Jobs currently executing on a worker (for [`WorkerPool::drain`]).
    busy: usize,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    /// Signalled whenever the pool may have gone idle (queue empty and
    /// no job executing).
    idle: Condvar,
}

/// A fixed set of worker threads draining a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    queue_bound: usize,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Start `workers` threads (at least one) behind a queue holding at
    /// most `queue_bound` waiting jobs (at least one).
    pub fn new(workers: usize, queue_bound: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
                busy: 0,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn http worker")
            })
            .collect();
        WorkerPool {
            shared,
            queue_bound: queue_bound.max(1),
            workers: handles,
        }
    }

    /// Enqueue a job, or refuse it when the queue is full (the caller
    /// answers 503). Refusals count into `Http.Worker.Shed`.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        {
            let mut g = self.shared.state.lock().expect("pool lock");
            if g.queue.len() >= self.queue_bound {
                m().shed.inc();
                return false;
            }
            g.queue.push_back(Box::new(job));
            m().queue_depth.set(g.queue.len() as i64);
        }
        self.shared.work_ready.notify_one();
        true
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Block until every job accepted so far has *finished executing* —
    /// the queue is empty and no worker is mid-job. New submissions stay
    /// possible throughout (drain is a fence, not a shutdown); the
    /// listener's graceful-drain path calls this after its last
    /// connection closes, and `Drop` still joins the threads afterwards.
    pub fn drain(&self) {
        let mut g = self.shared.state.lock().expect("pool lock");
        while !(g.queue.is_empty() && g.busy == 0) {
            g = self.shared.idle.wait(g).expect("pool wait");
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut g = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = g.queue.pop_front() {
                    m().queue_depth.set(g.queue.len() as i64);
                    g.busy += 1;
                    break job;
                }
                if g.shutdown {
                    return;
                }
                g = shared.work_ready.wait(g).expect("pool wait");
            }
        };
        m().busy.add(1);
        job();
        m().busy.add(-1);
        m().executed.inc();
        let mut g = shared.state.lock().expect("pool lock");
        g.busy -= 1;
        if g.queue.is_empty() && g.busy == 0 {
            shared.idle.notify_all();
        }
        drop(g);
    }
}

impl Drop for WorkerPool {
    /// Drain the queue, then stop: workers finish everything already
    /// accepted before exiting (accepted work is never dropped).
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_accepted_jobs() {
        let pool = WorkerPool::new(2, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = done.clone();
            assert!(pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // join: all accepted jobs ran
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn drain_finishes_all_accepted_work_then_keeps_serving() {
        let pool = WorkerPool::new(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let done = done.clone();
            assert!(pool.try_execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.drain();
        assert_eq!(
            done.load(Ordering::SeqCst),
            20,
            "drain returns only after every accepted job finished"
        );
        // Drain is a fence, not a shutdown: the pool keeps working.
        let after = done.clone();
        assert!(pool.try_execute(move || {
            after.fetch_add(1, Ordering::SeqCst);
        }));
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), 21);
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Park the single worker...
        let g = gate.clone();
        assert!(pool.try_execute(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }));
        // Give the worker a moment to claim the parked job, leaving the
        // queue empty for the next two.
        while pool.queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...fill the queue...
        assert!(pool.try_execute(|| {}));
        assert!(pool.try_execute(|| {}));
        // ...and the next submission is shed.
        let before = obs::snapshot().counter("Http.Worker.Shed");
        assert!(!pool.try_execute(|| {}));
        assert_eq!(obs::snapshot().counter("Http.Worker.Shed"), before + 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}
