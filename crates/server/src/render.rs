//! HTML and JSON page rendering.
//!
//! Domino renders web pages straight from the note store: a view page is
//! the view's column values in a table, a document page is its items, an
//! edit form is `<input>` fields that post back to `?SaveDocument`. The
//! functions here are pure — the executor assembles the data (already
//! access-filtered) and the renderer only formats it, so every byte that
//! can reach a cache or a wire goes through the escapers below.

use domino_core::Note;
use domino_types::Unid;

/// One renderable view row: absolute position, identity, and the cell
/// text for each design column.
#[derive(Debug, Clone)]
pub struct Row {
    /// 1-based absolute position in the collation order.
    pub position: usize,
    /// Document UNID (used to link to `?OpenDocument`).
    pub unid: Unid,
    /// Response-hierarchy depth (0 = main document), indented like the
    /// Notes client renders discussion threads.
    pub response_level: u32,
    /// One formatted cell per view column.
    pub cells: Vec<String>,
}

/// Escape text for HTML element/attribute content.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Escape text for a JSON string literal (quotes not included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A minimal page shell shared by every HTML response.
fn shell(title: &str, body: &str) -> String {
    format!(
        "<!DOCTYPE html><html><head><title>{}</title></head><body>{}</body></html>",
        html_escape(title),
        body
    )
}

/// A one-line message page (save confirmations, error bodies).
pub fn message_page(title: &str, detail: &str) -> String {
    shell(
        title,
        &format!(
            "<h1>{}</h1><p>{}</p>",
            html_escape(title),
            html_escape(detail)
        ),
    )
}

/// An `?OpenView` page: the column titles and one table row per entry,
/// with next/previous paging links and each row linked to its document.
pub fn view_page(
    db: &str,
    view: &str,
    columns: &[String],
    rows: &[Row],
    start: usize,
    count: usize,
    total: usize,
) -> String {
    let mut b = String::new();
    b.push_str(&format!(
        "<h1>{} — {}</h1><p>{} documents, showing from {}</p>",
        html_escape(db),
        html_escape(view),
        total,
        start
    ));
    b.push_str("<table border=\"1\"><tr>");
    for c in columns {
        b.push_str(&format!("<th>{}</th>", html_escape(c)));
    }
    b.push_str("</tr>");
    for row in rows {
        b.push_str("<tr>");
        for (i, cell) in row.cells.iter().enumerate() {
            let indent = if i == 0 {
                "&nbsp;&nbsp;".repeat(row.response_level as usize)
            } else {
                String::new()
            };
            if i == 0 {
                b.push_str(&format!(
                    "<td>{}<a href=\"/{}.nsf/{}/{}?OpenDocument\">{}</a></td>",
                    indent,
                    html_escape(db),
                    html_escape(view),
                    row.unid,
                    html_escape(cell)
                ));
            } else {
                b.push_str(&format!("<td>{}</td>", html_escape(cell)));
            }
        }
        b.push_str("</tr>");
    }
    b.push_str("</table>");
    let next = start + count;
    if next <= total {
        b.push_str(&format!(
            "<p><a href=\"/{}.nsf/{}?OpenView&amp;Start={}&amp;Count={}\">Next</a></p>",
            html_escape(db),
            html_escape(view),
            next,
            count
        ));
    }
    shell(&format!("{view} - {db}"), &b)
}

/// A `?ReadViewEntries` payload: the Domino JSON shape
/// (`@toplevelentries`, then one `viewentry` per row with its
/// `@position`, `@unid`, and named `entrydata` cells).
pub fn view_entries_json(
    columns: &[String],
    rows: &[Row],
    start: usize,
    count: usize,
    total: usize,
) -> String {
    let mut b = String::new();
    b.push_str(&format!(
        "{{\"@toplevelentries\":{total},\"@start\":{start},\"@count\":{count},\"viewentry\":["
    ));
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            b.push(',');
        }
        b.push_str(&format!(
            "{{\"@position\":\"{}\",\"@unid\":\"{}\",\"@responselevel\":{},\"entrydata\":[",
            row.position, row.unid, row.response_level
        ));
        for (j, cell) in row.cells.iter().enumerate() {
            if j > 0 {
                b.push(',');
            }
            let name = columns.get(j).map(String::as_str).unwrap_or("");
            b.push_str(&format!(
                "{{\"@name\":\"{}\",\"text\":\"{}\"}}",
                json_escape(name),
                json_escape(cell)
            ));
        }
        b.push_str("]}");
    }
    b.push_str("]}");
    b
}

/// Items hidden from rendered documents (system/internal fields).
fn hidden_item(name: &str) -> bool {
    name.starts_with('$')
}

/// An `?OpenDocument` page: every visible item as a definition list.
pub fn document_page(db: &str, note: &Note) -> String {
    let mut b = String::new();
    let title = note
        .get_text("Subject")
        .unwrap_or_else(|| note.unid().to_string());
    b.push_str(&format!("<h1>{}</h1><dl>", html_escape(&title)));
    for item in note.items() {
        if hidden_item(&item.name) {
            continue;
        }
        b.push_str(&format!(
            "<dt>{}</dt><dd>{}</dd>",
            html_escape(&item.name),
            html_escape(&item.value.to_text())
        ));
    }
    b.push_str("</dl>");
    b.push_str(&format!(
        "<p><a href=\"/{}.nsf/{}?EditDocument\">Edit</a></p>",
        html_escape(db),
        note.unid()
    ));
    shell(&title, &b)
}

/// An `?EditDocument` page: a form whose inputs post the document's
/// visible items back to `?SaveDocument`.
pub fn edit_page(db: &str, note: &Note) -> String {
    let mut b = String::new();
    b.push_str(&format!(
        "<form method=\"post\" action=\"/{}.nsf/{}?SaveDocument\">",
        html_escape(db),
        note.unid()
    ));
    for item in note.items() {
        if hidden_item(&item.name) {
            continue;
        }
        b.push_str(&format!(
            "<label>{}<input name=\"{}\" value=\"{}\"></label><br>",
            html_escape(&item.name),
            html_escape(&item.name),
            html_escape(&item.value.to_text())
        ));
    }
    b.push_str("<input type=\"submit\" value=\"Save\"></form>");
    shell("Edit", &b)
}

/// A `?SearchView` result page: scored hits linked to their documents.
pub fn search_page(db: &str, view: &str, query: &str, hits: &[(Unid, f32, String)]) -> String {
    let mut b = String::new();
    b.push_str(&format!(
        "<h1>Search {} for \u{201c}{}\u{201d}</h1><p>{} hits</p><ol>",
        html_escape(view),
        html_escape(query),
        hits.len()
    ));
    for (unid, score, title) in hits {
        b.push_str(&format!(
            "<li><a href=\"/{}.nsf/{}?OpenDocument\">{}</a> ({score:.3})</li>",
            html_escape(db),
            unid,
            html_escape(title)
        ));
    }
    b.push_str("</ol>");
    shell("Search", &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_types::Value;

    #[test]
    fn escaping_neutralizes_markup_and_quotes() {
        assert_eq!(
            html_escape("<b a=\"x\">&'"),
            "&lt;b a=&quot;x&quot;&gt;&amp;&#39;"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn view_page_links_rows_and_pages() {
        let rows = vec![Row {
            position: 1,
            unid: Unid(0xFEED),
            response_level: 0,
            cells: vec!["hello <script>".into(), "ann".into()],
        }];
        let html = view_page(
            "disc",
            "topics",
            &["Subject".into(), "From".into()],
            &rows,
            1,
            1,
            2,
        );
        assert!(html.contains("hello &lt;script&gt;"));
        assert!(html.contains(&format!("{}?OpenDocument", Unid(0xFEED))));
        // More rows remain: a Next link to Start=2.
        assert!(html.contains("Start=2"));
    }

    #[test]
    fn json_payload_is_shaped_like_domino() {
        let rows = vec![Row {
            position: 3,
            unid: Unid(7),
            response_level: 1,
            cells: vec!["x \"y\"".into()],
        }];
        let json = view_entries_json(&["Subject".into()], &rows, 3, 1, 9);
        assert!(json.starts_with("{\"@toplevelentries\":9,"));
        assert!(json.contains("\"@position\":\"3\""));
        assert!(json.contains("\"@responselevel\":1"));
        assert!(json.contains("\"text\":\"x \\\"y\\\"\""));
    }

    #[test]
    fn document_pages_hide_system_items() {
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text("plan"));
        n.set("$Secret", Value::text("internal"));
        let html = document_page("d", &n);
        assert!(html.contains("plan"));
        assert!(!html.contains("internal"));
        let form = edit_page("d", &n);
        assert!(form.contains("?SaveDocument"));
        assert!(form.contains("name=\"Subject\""));
    }
}
