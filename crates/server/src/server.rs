//! The request executor: authentication, ACL enforcement, command
//! dispatch, the worker-pool front door, and the background agent
//! manager ("amgr") driver.
//!
//! One [`DominoServer`] hosts any number of registered databases. Every
//! request runs the same pipeline a Domino HTTP worker runs:
//!
//! 1. parse the URL command (`400` on anything malformed),
//! 2. authenticate the claimed identity against the user registry
//!    (`401` on a bad name/password; no header means `Anonymous`),
//! 3. resolve the database (`404`),
//! 4. execute under a [`Session`] so the ACL, `$Readers`, and
//!    protected-item rules all apply — denials map to `401` for
//!    anonymous callers (the browser should ask for credentials) and
//!    `403` for authenticated ones,
//! 5. render, consulting the command cache for view pages.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use domino_core::{AgentScheduler, AgentTickReport, Database, Note, Session};
use domino_ftindex::FtIndex;
use domino_obs as obs;
use domino_security::acl::EffectiveAccess;
use domino_security::{can_read_document, Directory};
use domino_types::{Clock, DominoError, Result, Value};
use domino_views::{stored_designs, View, ViewDesign};
use parking_lot::Mutex;

use crate::cache::{CacheKey, CachedPage, CommandCache, PageKind};
use crate::http::{Credentials, Request, Response, Status};
use crate::pool::WorkerPool;
use crate::render::{self, Row};
use crate::url::{self, UrlCommand};

/// The identity of requests without credentials.
pub const ANONYMOUS: &str = "Anonymous";

struct Metrics {
    served: &'static obs::Counter,
    micros: &'static obs::Histogram,
    ok: &'static obs::Counter,
    denied: &'static obs::Counter,
    client_err: &'static obs::Counter,
    server_err: &'static obs::Counter,
    agent_runs: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        served: obs::counter("Http.Request.Served"),
        micros: obs::histogram("Http.Request.Micros"),
        ok: obs::counter("Http.Request.Ok"),
        denied: obs::counter("Http.Request.Denied"),
        client_err: obs::counter("Http.Request.ClientError"),
        server_err: obs::counter("Http.Request.Error"),
        agent_runs: obs::counter("Http.Amgr.AgentRuns"),
    })
}

/// Sizing knobs for the HTTP task (see OPERATIONS.md §"The HTTP task").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads serving requests (Domino: `HTTP.NumberOfWorkers`).
    pub workers: usize,
    /// Requests allowed to wait in the queue before load-shedding 503s.
    pub queue_bound: usize,
    /// Rendered view pages the command cache holds (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_bound: 64,
            cache_capacity: 256,
        }
    }
}

/// One view attached at registration: its column titles plus the live
/// maintained index.
struct SiteView {
    name: String,
    columns: Vec<String>,
    view: View,
}

impl SiteView {
    fn attach(db: &Arc<Database>, design: ViewDesign) -> Result<SiteView> {
        Ok(SiteView {
            name: design.name.clone(),
            columns: design.columns.iter().map(|c| c.title.clone()).collect(),
            view: View::attach(db, design)?,
        })
    }
}

/// One registered database: the notes, its live views, its full-text
/// index, and its agent-manager state.
struct Site {
    name: String,
    db: Arc<Database>,
    views: Mutex<HashMap<String, Arc<SiteView>>>,
    ft: FtIndex,
    amgr: Mutex<AgentScheduler>,
}

impl Site {
    fn view(&self, name: &str) -> Option<Arc<SiteView>> {
        self.views.lock().get(&name.to_lowercase()).cloned()
    }
}

struct Inner {
    sites: Mutex<HashMap<String, Arc<Site>>>,
    users: Mutex<HashMap<String, String>>,
    directory: Mutex<Directory>,
    cache: CommandCache,
}

/// Strip a `.nsf` suffix and lowercase: the canonical database key.
fn normalize_db(path: &str) -> String {
    let lower = path.to_lowercase();
    lower
        .strip_suffix(".nsf")
        .unwrap_or(&lower)
        .trim_matches('/')
        .to_string()
}

/// Digest of everything the reader-field check consumes for a user: ACL
/// level, sorted roles, sorted alias set (which includes the user's own
/// name). Two users get the same class only if no `$Readers` list could
/// distinguish them. (`DefaultHasher` is deterministic per process.)
fn access_class(access: &EffectiveAccess, names: &[String]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    access.level.hash(&mut h);
    let mut roles: Vec<&str> = access.roles.iter().map(String::as_str).collect();
    roles.sort_unstable();
    roles.hash(&mut h);
    names.hash(&mut h);
    h.finish()
}

/// Map an execution error to a Domino status. Access denials become 401
/// for anonymous callers (authenticate and retry) and 403 for named ones.
fn error_response(anonymous: bool, e: &DominoError) -> Response {
    let status = match e {
        DominoError::AccessDenied(_) => {
            if anonymous {
                Status::Unauthorized
            } else {
                Status::Forbidden
            }
        }
        DominoError::NotFound(_) => Status::NotFound,
        DominoError::InvalidArgument(_)
        | DominoError::FormulaParse(_)
        | DominoError::FormulaEval(_) => Status::BadRequest,
        DominoError::UpdateConflict(_) => Status::Conflict,
        DominoError::Unavailable(_) => Status::Unavailable,
        _ => Status::ServerError,
    };
    Response::error(status, &e.to_string())
}

/// The Domino HTTP task. Cheap to clone (all clones share one server).
#[derive(Clone)]
pub struct DominoServer {
    inner: Arc<Inner>,
    // Outside `Inner` on purpose: queued jobs hold `Arc<Inner>`, so if the
    // pool lived inside `Inner` the last job could drop `Inner` *on a
    // worker thread* and the pool's Drop would join its own thread.
    pool: Arc<WorkerPool>,
}

impl DominoServer {
    /// Start the task: worker threads come up immediately.
    pub fn new(config: ServerConfig) -> DominoServer {
        DominoServer {
            inner: Arc::new(Inner {
                sites: Mutex::new(HashMap::new()),
                users: Mutex::new(HashMap::new()),
                directory: Mutex::new(Directory::new()),
                cache: CommandCache::new(config.cache_capacity),
            }),
            pool: Arc::new(WorkerPool::new(config.workers, config.queue_bound)),
        }
    }

    /// Serve a database at `/{path}.nsf/...`. All stored view designs are
    /// attached (built and kept current), the full-text index is built,
    /// and an agent scheduler is created for [`DominoServer::amgr_tick`].
    pub fn register_database(&self, path: &str, db: &Arc<Database>) -> Result<()> {
        let name = normalize_db(path);
        if name.is_empty() {
            return Err(DominoError::InvalidArgument(
                "database path must be non-empty".into(),
            ));
        }
        let mut views = HashMap::new();
        for design in stored_designs(db)? {
            let key = design.name.to_lowercase();
            views.insert(key, Arc::new(SiteView::attach(db, design)?));
        }
        let site = Site {
            name: name.clone(),
            db: db.clone(),
            views: Mutex::new(views),
            ft: FtIndex::attach(db)?,
            amgr: Mutex::new(AgentScheduler::new(db.clone(), "HTTP Amgr")),
        };
        self.inner.sites.lock().insert(name, Arc::new(site));
        Ok(())
    }

    /// Attach an additional (unstored) view design to a registered
    /// database.
    pub fn add_view(&self, db_path: &str, design: ViewDesign) -> Result<()> {
        let site = self
            .inner
            .site(&normalize_db(db_path))
            .ok_or_else(|| DominoError::NotFound(format!("no database {db_path:?}")))?;
        let sv = SiteView::attach(&site.db, design)?;
        site.views
            .lock()
            .insert(sv.name.to_lowercase(), Arc::new(sv));
        Ok(())
    }

    /// Register a user for basic authentication.
    pub fn register_user(&self, name: &str, password: &str) {
        self.inner
            .users
            .lock()
            .insert(name.to_lowercase(), password.to_string());
    }

    /// Install the group directory used for ACL evaluation.
    pub fn set_directory(&self, dir: Directory) {
        *self.inner.directory.lock() = dir;
    }

    /// Execute a request synchronously on the calling thread (bypasses
    /// the worker pool — used by tests and by the workers themselves).
    pub fn handle(&self, req: &Request) -> Response {
        self.inner.handle(req)
    }

    /// Enqueue a request on the worker pool; the response arrives on the
    /// returned channel. A full queue answers `503` immediately.
    pub fn submit(&self, req: Request) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        let inner = self.inner.clone();
        let tx_job = tx.clone();
        let accepted = self.pool.try_execute(move || {
            let _ = tx_job.send(inner.handle(&req));
        });
        if !accepted {
            m().served.inc();
            m().server_err.inc();
            let _ = tx.send(Response::error(
                Status::Unavailable,
                "request queue is full — retry later",
            ));
        }
        rx
    }

    /// Enqueue a request and block for its response.
    pub fn serve(&self, req: Request) -> Response {
        self.submit(req)
            .recv()
            .unwrap_or_else(|_| Response::error(Status::ServerError, "worker dropped the request"))
    }

    /// Requests waiting in the pool queue right now.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Block until every request accepted so far has finished executing
    /// (see [`WorkerPool::drain`]). The listener's graceful-shutdown
    /// path calls this after its last connection closes, so accepted
    /// work is never abandoned mid-drain.
    pub fn drain(&self) {
        self.pool.drain();
    }

    /// Rendered pages currently in the command cache.
    pub fn cached_pages(&self) -> usize {
        self.inner.cache.len()
    }

    /// Run one agent-manager pass over every registered database: due
    /// [`Scheduled`](domino_core::AgentTrigger::Scheduled) agents and —
    /// when the change sequence moved —
    /// [`OnUpdate`](domino_core::AgentTrigger::OnUpdate) agents run, at
    /// each database's current logical time.
    pub fn amgr_tick(&self) -> Result<Vec<(String, AgentTickReport)>> {
        self.inner.amgr_tick()
    }

    /// Drive [`DominoServer::amgr_tick`] from a background thread every
    /// `every`. The thread holds only a weak reference: dropping the last
    /// server clone ends it, as does dropping (or stopping) the handle.
    pub fn start_amgr(&self, every: Duration) -> AmgrHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let weak = Arc::downgrade(&self.inner);
        let flag = stop.clone();
        let join = std::thread::Builder::new()
            .name("http-amgr".into())
            .spawn(move || {
                let task = obs::register_task("http-amgr", "Agent manager");
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(every);
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    match weak.upgrade() {
                        Some(inner) => {
                            let _ = inner.amgr_tick();
                            task.beat();
                        }
                        None => break,
                    }
                }
            })
            .expect("spawn http-amgr");
        AmgrHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle on the background agent-manager thread; stops it when dropped.
pub struct AmgrHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl AmgrHandle {
    /// Stop the amgr thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for AmgrHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn site(&self, name: &str) -> Option<Arc<Site>> {
        self.sites.lock().get(name).cloned()
    }

    fn amgr_tick(&self) -> Result<Vec<(String, AgentTickReport)>> {
        let _span = obs::span!("Http.Amgr.Tick");
        let sites: Vec<Arc<Site>> = self.sites.lock().values().cloned().collect();
        let mut out = Vec::new();
        for site in sites {
            let now = site.db.clock().peek().0;
            let report = site.amgr.lock().tick(now)?;
            m().agent_runs.add(report.runs.len() as u64);
            out.push((site.name.clone(), report));
        }
        Ok(out)
    }

    fn handle(&self, req: &Request) -> Response {
        let _span = obs::span!("Http.Request");
        let started = Instant::now();
        m().served.inc();
        let resp = self.dispatch(req);
        let micros = started.elapsed().as_micros() as u64;
        m().micros.record_micros(started.elapsed());
        match resp.status {
            Status::Ok => m().ok.inc(),
            Status::Unauthorized | Status::Forbidden => m().denied.inc(),
            Status::BadRequest | Status::NotFound | Status::Conflict => m().client_err.inc(),
            Status::ServerError | Status::Unavailable => m().server_err.inc(),
        }
        let user = match &req.credentials {
            Credentials::Anonymous => "Anonymous".to_string(),
            Credentials::Basic { user, .. } => user.clone(),
        };
        // The domlog.nsf record: one event per request, whatever the
        // outcome. The logger task turns these into HttpRequest documents.
        obs::emit(
            obs::Event::new(obs::EventKind::Http, obs::Severity::Info, "Http.Request")
                .with("method", req.method.as_str())
                .with("command", req.target.clone())
                .with("status", u64::from(resp.status.code()))
                .with("micros", micros)
                .with("user", user.clone()),
        );
        if matches!(resp.status, Status::Unauthorized | Status::Forbidden) {
            obs::emit(
                obs::Event::new(
                    obs::EventKind::Security,
                    obs::Severity::Warning,
                    "Http.Denied",
                )
                .with("status", u64::from(resp.status.code()))
                .with("command", req.target.clone())
                .with("user", user),
            );
        }
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        let cmd = match url::parse(&req.target) {
            Ok(c) => c,
            Err(e) => return Response::error(Status::BadRequest, &e.to_string()),
        };
        let anonymous = req.credentials == Credentials::Anonymous;
        let user = match self.authenticate(&req.credentials) {
            Ok(u) => u,
            Err(resp) => return resp,
        };
        let site = match self.site(cmd.db()) {
            Some(s) => s,
            None => {
                return Response::error(
                    Status::NotFound,
                    &format!("no database {:?} on this server", cmd.db()),
                )
            }
        };
        match self.execute(&site, &user, &cmd, req) {
            Ok(resp) => resp,
            Err(e) => error_response(anonymous, &e),
        }
    }

    fn authenticate(&self, cred: &Credentials) -> std::result::Result<String, Response> {
        match cred {
            Credentials::Anonymous => Ok(ANONYMOUS.to_string()),
            Credentials::Basic { user, password } => {
                let users = self.users.lock();
                match users.get(&user.to_lowercase()) {
                    Some(stored) if stored == password => Ok(user.clone()),
                    _ => Err(Response::error(
                        Status::Unauthorized,
                        "name and password do not match any registered user",
                    )),
                }
            }
        }
    }

    /// Effective ACL access plus the alias set used by reader-field
    /// checks (the session's own-author rule included: the user's plain
    /// name is always present). The ACL is read from the caller's pinned
    /// snapshot so the access decision and the page rows describe the
    /// same database state.
    fn access_of(
        &self,
        snap: &domino_core::Snapshot,
        user: &str,
    ) -> Result<(EffectiveAccess, Vec<String>)> {
        let dir = self.directory.lock().clone();
        let access = snap.acl()?.effective(&dir, user);
        let mut names = dir.names_of(user);
        names.push(user.to_lowercase());
        names.sort_unstable();
        names.dedup();
        Ok((access, names))
    }

    fn session(&self, site: &Site, user: &str) -> Session {
        Session::new(site.db.clone(), user, self.directory.lock().clone())
    }

    fn execute(
        &self,
        site: &Site,
        user: &str,
        cmd: &UrlCommand,
        req: &Request,
    ) -> Result<Response> {
        match cmd {
            UrlCommand::OpenView {
                view, start, count, ..
            } => self.view_page(site, user, view, *start, *count, PageKind::Html),
            UrlCommand::ReadViewEntries {
                view, start, count, ..
            } => self.view_page(site, user, view, *start, *count, PageKind::Json),
            UrlCommand::OpenDocument { unid, .. } => {
                let note = self.session(site, user).open_by_unid(*unid)?;
                Ok(Response::html(render::document_page(&site.name, &note)))
            }
            UrlCommand::EditDocument { unid, .. } => {
                let note = self.session(site, user).open_by_unid(*unid)?;
                Ok(Response::html(render::edit_page(&site.name, &note)))
            }
            UrlCommand::SaveDocument { unid, .. } => {
                let fields = url::parse_form(&req.body)?;
                if fields.is_empty() {
                    return Err(DominoError::InvalidArgument(
                        "SaveDocument body carries no fields".into(),
                    ));
                }
                let session = self.session(site, user);
                let mut note = session.open_by_unid(*unid)?;
                for (k, v) in fields {
                    note.set(&k, Value::text(v));
                }
                session.save(&mut note)?;
                Ok(Response::html(render::message_page(
                    "Document saved",
                    &note.unid().to_string(),
                )))
            }
            UrlCommand::CreateDocument { form, .. } => {
                let mut note = Note::document(form);
                for (k, v) in url::parse_form(&req.body)? {
                    if !k.eq_ignore_ascii_case("form") {
                        note.set(&k, Value::text(v));
                    }
                }
                self.session(site, user).save(&mut note)?;
                Ok(Response::html(render::message_page(
                    "Document created",
                    &note.unid().to_string(),
                )))
            }
            UrlCommand::DeleteDocument { unid, .. } => {
                let id = site
                    .db
                    .id_of_unid(*unid)?
                    .ok_or_else(|| DominoError::NotFound(format!("no document {unid}")))?;
                self.session(site, user).delete(id)?;
                Ok(Response::html(render::message_page(
                    "Document deleted",
                    &unid.to_string(),
                )))
            }
            UrlCommand::SearchView {
                view, query, count, ..
            } => self.search_view(site, user, view, query, *count),
        }
    }

    /// Render (or serve from cache) one `?OpenView`/`?ReadViewEntries`
    /// window. The whole read runs against a pinned snapshot and a single
    /// consistent view page ([`domino_views::ViewPage`]) — no writer lock
    /// is ever taken. The finished page is cached under the requester's
    /// access class, keyed by the `(view version, snapshot seq)` pair it
    /// was rendered from, so a hit is byte-identical by construction and
    /// any concurrent commit or index mutation expires it.
    fn view_page(
        &self,
        site: &Site,
        user: &str,
        view_name: &str,
        start: usize,
        count: usize,
        kind: PageKind,
    ) -> Result<Response> {
        let snap = site.db.snapshot();
        let (access, names) = self.access_of(&snap, user)?;
        if !access.level.can_read() {
            return Err(DominoError::AccessDenied(format!(
                "{user} may not open database {}",
                site.name
            )));
        }
        let key = CacheKey {
            db: site.name.clone(),
            view: view_name.to_lowercase(),
            start,
            count,
            kind,
            access_class: access_class(&access, &names),
        };
        let sv = site
            .view(view_name)
            .ok_or_else(|| DominoError::NotFound(format!("no view {view_name:?}")))?;
        // One shared-access read: rows, total, and version from the same
        // guard, so they are mutually consistent (satellite: no writer
        // lock, shared view access only).
        let page = sv.view.page(0, start - 1, count);
        if let Some(hit) = self.cache.lookup(&key, page.version, snap.seq()) {
            return Ok(Response {
                status: Status::Ok,
                content_type: hit.content_type,
                body: hit.body,
                from_cache: true,
            });
        }
        let _span = obs::span!("Http.View.Render");
        let total = page.total;
        let mut rows = Vec::new();
        for (i, entry) in page.rows.iter().enumerate() {
            // Reader fields are enforced per row: the view index itself is
            // not access-partitioned. Rows read from the snapshot, so a
            // commit between the index read and here cannot tear the page.
            let note = match snap.open_arc(entry.note_id) {
                Ok(n) => n,
                Err(_) => continue, // not visible at this snapshot
            };
            if !can_read_document(&access, &names, &note.readers()) {
                continue;
            }
            rows.push(Row {
                position: start + i,
                unid: entry.unid,
                response_level: entry.response_level,
                cells: entry.values.iter().map(|v| v.to_text()).collect(),
            });
        }
        let (body, content_type) = match kind {
            PageKind::Html => (
                render::view_page(
                    &site.name,
                    &sv.name,
                    &sv.columns,
                    &rows,
                    start,
                    count,
                    total,
                ),
                "text/html",
            ),
            PageKind::Json => (
                render::view_entries_json(&sv.columns, &rows, start, count, total),
                "application/json",
            ),
        };
        self.cache.insert(
            key,
            CachedPage {
                view_version: page.version,
                snapshot_seq: snap.seq(),
                body: body.clone(),
                content_type,
            },
        );
        Ok(Response {
            status: Status::Ok,
            content_type,
            body,
            from_cache: false,
        })
    }

    /// `?SearchView`: full-text hits restricted to documents that appear
    /// in the named view and that the user may read. Not cached (Domino
    /// doesn't command-cache search results either).
    fn search_view(
        &self,
        site: &Site,
        user: &str,
        view_name: &str,
        query: &str,
        count: usize,
    ) -> Result<Response> {
        let snap = site.db.snapshot();
        let (access, names) = self.access_of(&snap, user)?;
        if !access.level.can_read() {
            return Err(DominoError::AccessDenied(format!(
                "{user} may not search database {}",
                site.name
            )));
        }
        let sv = site
            .view(view_name)
            .ok_or_else(|| DominoError::NotFound(format!("no view {view_name:?}")))?;
        let _span = obs::span!("Http.Search");
        let mut hits = Vec::new();
        for hit in site.ft.search(query)? {
            if hits.len() >= count {
                break;
            }
            if sv.view.position_of(hit.unid).is_none() {
                continue;
            }
            let note = match snap.open_by_unid(hit.unid) {
                Ok(n) => n,
                Err(_) => continue,
            };
            if !can_read_document(&access, &names, &note.readers()) {
                continue;
            }
            let title = note
                .get_text("Subject")
                .unwrap_or_else(|| hit.unid.to_string());
            hits.push((hit.unid, hit.score, title));
        }
        Ok(Response::html(render::search_page(
            &site.name, &sv.name, query, &hits,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::{AgentDesign, DbConfig};
    use domino_security::{AccessLevel, Acl, AclEntry};
    use domino_types::{LogicalClock, ReplicaId};
    use domino_views::design::ColumnSpec;

    fn discussion() -> (DominoServer, Arc<Database>) {
        let db = Arc::new(
            Database::open_in_memory(
                DbConfig::new("Discussion", ReplicaId(1), ReplicaId(9)),
                LogicalClock::new(),
            )
            .unwrap(),
        );
        let mut acl = Acl::new(AccessLevel::Reader); // Anonymous may read
        acl.set(
            "alice",
            AclEntry::new(AccessLevel::Editor).with_role("Admin"),
        );
        acl.set("bob", AclEntry::new(AccessLevel::Author));
        acl.set("rita", AclEntry::new(AccessLevel::Reader));
        db.set_acl(&acl).unwrap();
        for i in 0..8 {
            let mut n = Note::document("Topic");
            n.set("Subject", Value::text(format!("topic {i:02}")));
            n.set("Body", Value::text(format!("body text number {i}")));
            db.save(&mut n).unwrap();
        }
        let server = DominoServer::new(ServerConfig {
            workers: 2,
            queue_bound: 16,
            cache_capacity: 32,
        });
        server.register_database("disc", &db).unwrap();
        let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#).unwrap();
        design.columns = vec![
            ColumnSpec::new("Subject", "Subject")
                .unwrap()
                .sorted(domino_views::SortDir::Ascending),
            ColumnSpec::new("From", "From").unwrap(),
        ];
        server.add_view("disc", design).unwrap();
        server.register_user("alice", "pw-a");
        server.register_user("bob", "pw-b");
        server.register_user("rita", "pw-r");
        (server, db)
    }

    #[test]
    fn open_view_renders_then_caches_then_invalidates() {
        let (server, db) = discussion();
        let req = Request::get("/disc.nsf/topics?OpenView&Count=5").as_user("alice", "pw-a");
        let first = server.handle(&req);
        assert_eq!(first.status, Status::Ok);
        assert!(!first.from_cache);
        assert!(first.body.contains("topic 00"));
        let second = server.handle(&req);
        assert!(second.from_cache);
        assert_eq!(second.body, first.body);
        // A write expires every cached page of the database.
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text("topic 99"));
        db.save(&mut n).unwrap();
        let third = server.handle(&req);
        assert!(!third.from_cache);
    }

    #[test]
    fn read_view_entries_is_json_and_paged() {
        let (server, _db) = discussion();
        let req = Request::get("/disc.nsf/topics?ReadViewEntries&Start=3&Count=2")
            .as_user("alice", "pw-a");
        let resp = server.handle(&req);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content_type, "application/json");
        assert!(resp.body.contains("\"@toplevelentries\":8"));
        assert!(resp.body.contains("topic 02"));
        assert!(resp.body.contains("topic 03"));
        assert!(!resp.body.contains("topic 04"));
    }

    #[test]
    fn document_lifecycle_over_urls() {
        let (server, _db) = discussion();
        // Create...
        let create = Request::post("/disc.nsf/Topic?CreateDocument", "Subject=fresh+topic")
            .as_user("bob", "pw-b");
        let resp = server.handle(&create);
        assert_eq!(resp.status, Status::Ok);
        // ...find it via the view...
        let page = server
            .handle(&Request::get("/disc.nsf/topics?OpenView&Count=30").as_user("alice", "pw-a"));
        assert!(page.body.contains("fresh topic"));
        let unid = page
            .body
            .split("/disc.nsf/topics/")
            .nth(1)
            .and_then(|s| s.split('?').next())
            .unwrap()
            .to_string();
        // ...open, edit, save...
        let open =
            server.handle(&Request::get(&format!("/disc.nsf/{unid}?OpenDocument")).anonymous());
        assert_eq!(open.status, Status::Ok);
        let save = Request::post(
            &format!("/disc.nsf/{unid}?SaveDocument"),
            "Subject=renamed+topic",
        )
        .as_user("alice", "pw-a");
        assert_eq!(server.handle(&save).status, Status::Ok);
        let reopened =
            server.handle(&Request::get(&format!("/disc.nsf/{unid}?OpenDocument")).anonymous());
        assert!(reopened.body.contains("renamed topic"));
        // ...and delete.
        let del = server.handle(
            &Request::get(&format!("/disc.nsf/{unid}?DeleteDocument")).as_user("alice", "pw-a"),
        );
        assert_eq!(del.status, Status::Ok);
        let gone =
            server.handle(&Request::get(&format!("/disc.nsf/{unid}?OpenDocument")).anonymous());
        assert_eq!(gone.status, Status::NotFound);
    }

    #[test]
    fn status_mapping_unknowns_and_auth() {
        let (server, _db) = discussion();
        // Unknown database / view / document.
        assert_eq!(
            server.handle(&Request::get("/other.nsf/v?OpenView")).status,
            Status::NotFound
        );
        assert_eq!(
            server
                .handle(&Request::get("/disc.nsf/nosuch?OpenView"))
                .status,
            Status::NotFound
        );
        // Malformed command.
        assert_eq!(
            server
                .handle(&Request::get("/disc.nsf/topics?Florp"))
                .status,
            Status::BadRequest
        );
        // Wrong password is 401 even before touching the database.
        assert_eq!(
            server
                .handle(&Request::get("/disc.nsf/topics?OpenView").as_user("alice", "wrong"))
                .status,
            Status::Unauthorized
        );
        // Anonymous writes are 401 (please log in), named reader writes 403.
        let anon_create = Request::post("/disc.nsf/Topic?CreateDocument", "Subject=x");
        assert_eq!(server.handle(&anon_create).status, Status::Unauthorized);
        let rita_create =
            Request::post("/disc.nsf/Topic?CreateDocument", "Subject=x").as_user("rita", "pw-r");
        assert_eq!(server.handle(&rita_create).status, Status::Forbidden);
    }

    #[test]
    fn search_view_scopes_and_scores() {
        let (server, db) = discussion();
        let mut memo = Note::document("Memo"); // not in the topics view
        memo.set("Subject", Value::text("body text number 3"));
        db.save(&mut memo).unwrap();
        let resp = server.handle(
            &Request::get("/disc.nsf/topics?SearchView&Query=%22body+text+number+3%22")
                .as_user("alice", "pw-a"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("topic 03"));
        assert!(!resp.body.contains(&memo.unid().to_string()));
    }

    #[test]
    fn amgr_runs_on_update_agents_after_requests_write() {
        let (server, db) = discussion();
        domino_core::save_agent(
            &db,
            &AgentDesign::new(
                "stamp",
                r#"SELECT Form = "Topic" & !@IsAvailable(Stamped); FIELD Stamped := "yes""#,
            )
            .unwrap()
            .on_update(),
        )
        .unwrap();
        // Re-register so the scheduler baseline predates our write.
        server.register_database("disc", &db).unwrap();
        let create = Request::post("/disc.nsf/Topic?CreateDocument", "Subject=agent+bait")
            .as_user("alice", "pw-a");
        assert_eq!(server.handle(&create).status, Status::Ok);
        let reports = server.amgr_tick().unwrap();
        let (_, tick) = reports.iter().find(|(n, _)| n == "disc").unwrap();
        assert_eq!(tick.runs.len(), 1);
        assert!(tick.runs[0].1.modified >= 1);
        // Quiescent now.
        let again = server.amgr_tick().unwrap();
        assert!(!again.iter().any(|(_, t)| t.fired()));
    }

    #[test]
    fn pool_front_door_serves_and_sheds() {
        let (server, _db) = discussion();
        let resp = server
            .serve(Request::get("/disc.nsf/topics?OpenView&Count=3").as_user("alice", "pw-a"));
        assert_eq!(resp.status, Status::Ok);
        // Flood a tiny server: some requests must shed with 503.
        let tiny = DominoServer::new(ServerConfig {
            workers: 1,
            queue_bound: 2,
            cache_capacity: 0,
        });
        let rxs: Vec<_> = (0..50)
            .map(|_| tiny.submit(Request::get("/disc.nsf/topics?OpenView")))
            .collect();
        let sheds = rxs
            .into_iter()
            .filter(|rx| rx.recv().unwrap().status == Status::Unavailable)
            .count();
        assert!(sheds > 0, "flooding a queue of 2 must shed");
    }
}
